//! Seeded randomness shared by the labeling schemes.
//!
//! The sketch-based scheme of Section 3.2 distributes two random seeds in
//! its labels: `S_ID`, which determines the unique edge identifiers of
//! Lemma 3.8, and `S_h`, which determines the pairwise-independent hash
//! functions that sample edges into sketch levels (Fact A.2). Decoders
//! recompute everything from those seeds — the defining trick of the whole
//! construction — so this crate provides deterministic, splittable seeded
//! primitives:
//!
//! * [`Seed`]: a 64-bit seed with cheap `derive` splitting;
//! * [`prf`]: a SplitMix64-based keyed PRF;
//! * [`pairwise::PairwiseHash`]: a pairwise-independent hash family over the
//!   Mersenne prime `2^61 - 1`;
//! * [`uid`]: unique edge identifiers with the XOR-validity test of
//!   Lemma 3.10 (substitution S1 in DESIGN.md).
//!
//! Why determinism is load-bearing here — and the analyzer rule (FTL004)
//! that enforces it — is covered in `docs/static-analysis.md`; the crate
//! map is in `README.md`.

#![forbid(unsafe_code)]

pub mod det_hash;
pub mod pairwise;
pub mod prf;
pub mod uid;

pub use det_hash::{DetBuildHasher, DetHashMap, DetHashSet};
pub use pairwise::PairwiseHash;
pub use prf::{splitmix64, Seed};
pub use uid::{EdgeUid, UidSpace};
