//! Deterministic hashing for label and store collections.
//!
//! `std`'s default `HashMap`/`HashSet` hasher is randomly keyed per
//! process, so iteration order — and therefore anything derived from it
//! (sidecar placement order, shard diagnostics, debug dumps) — varies run
//! to run. Label and store code is required to be reproducible end to end
//! (the whole construction re-derives randomness from explicit [`Seed`]s),
//! so collections there use [`DetHashMap`]/[`DetHashSet`] instead: the
//! same SplitMix64 mixing the shard router and fault-set hashing already
//! rely on, with a fixed key.
//!
//! This is enforced two ways: rule `FTL004` of `ftl-analyzer` flags
//! default-hasher collections in label/store code, and `clippy.toml`
//! disallows the bare types workspace-wide (blessed uses carry an
//! `allow`).
//!
//! Determinism, not DoS resistance: keys here are internal ids, never
//! attacker-controlled strings, so a keyed-but-fixed hasher is the right
//! trade.
//!
//! [`Seed`]: crate::Seed

// The one blessed spelling of std's hash collections in label/store code:
// this module wraps them behind a deterministic hasher.
#![allow(clippy::disallowed_types)]

use crate::splitmix64;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// A `HashMap` with the deterministic SplitMix64 hasher.
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// A `HashSet` with the deterministic SplitMix64 hasher.
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

/// `BuildHasher` producing [`DetHasher`]s with a fixed key — every process,
/// every run, the same hash function.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DetBuildHasher;

impl BuildHasher for DetBuildHasher {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        // An arbitrary non-zero key (π's fractional bits) so the all-zero
        // input does not hash to the SplitMix64 fixed trajectory of 0.
        DetHasher {
            state: 0x243F_6A88_85A3_08D3,
        }
    }
}

/// A streaming SplitMix64 absorber: each written word is mixed into the
/// running state, matching the canonical-fault-hash construction.
#[derive(Debug, Clone, Copy)]
pub struct DetHasher {
    state: u64,
}

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Absorb 8 bytes at a time, then the (length-tagged) tail, so
        // distinct byte strings with shared prefixes stay distinct.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.state = splitmix64(self.state ^ u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            let tagged = u64::from_le_bytes(w) ^ ((rem.len() as u64) << 56);
            self.state = splitmix64(self.state ^ tagged);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.state = splitmix64(self.state ^ i);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    fn write_u8(&mut self, i: u8) {
        self.write_u64(i as u64);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        DetBuildHasher.hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"label"), hash_of(&"label"));
        let a = DetBuildHasher.build_hasher().finish();
        let b = <DetBuildHasher as Default>::default()
            .build_hasher()
            .finish();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_inputs_spread() {
        let outs: DetHashSet<u64> = (0..10_000u64).map(|i| hash_of(&i)).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn shared_prefixes_stay_distinct() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(&[0u8; 7][..]), hash_of(&[0u8; 8][..]));
    }

    #[test]
    fn map_iteration_order_is_stable() {
        let build = |n: u64| {
            let mut m = DetHashMap::default();
            for i in 0..n {
                m.insert(i * 0x9E37_79B9, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(500), build(500));
    }
}
