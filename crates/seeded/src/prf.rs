//! Splittable seeds and a SplitMix64-based keyed PRF.

/// A 64-bit random seed.
///
/// Seeds are value types that can be `derive`d into independent-looking
/// sub-seeds: the labeling schemes hand one master seed to a labeling run
/// and derive per-purpose seeds (`S_ID`, `S_h`, one per sketch copy, ...)
/// with domain-separation tags.
///
/// ```
/// use ftl_seeded::Seed;
/// let s = Seed::new(42);
/// assert_ne!(s.derive(0), s.derive(1));
/// assert_eq!(s.derive(7), s.derive(7)); // deterministic
/// ```
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Seed(u64);

impl Seed {
    /// Wraps a raw 64-bit seed value.
    pub fn new(value: u64) -> Self {
        Seed(value)
    }

    /// Raw value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Derives a sub-seed for the given domain-separation tag.
    pub fn derive(self, tag: u64) -> Seed {
        Seed(mix2(self.0, tag ^ 0xA076_1D64_78BD_642F))
    }

    /// PRF evaluation on one word.
    pub fn prf1(self, x: u64) -> u64 {
        mix2(self.0, x)
    }

    /// PRF evaluation on two words.
    pub fn prf2(self, x: u64, y: u64) -> u64 {
        mix2(mix2(self.0, x), y)
    }

    /// An infinite word stream keyed by this seed (counter mode); handy for
    /// filling random bit vectors deterministically.
    pub fn stream(self) -> impl FnMut() -> u64 {
        let key = self.0;
        let mut counter = 0u64;
        move || {
            counter += 1;
            mix2(key, counter)
        }
    }
}

/// SplitMix64 finalizer — the workspace's one canonical mixing primitive
/// (the engine's shard router and fault-set hashing reuse it rather than
/// carrying their own constants).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a key and one input word through two SplitMix rounds.
#[inline]
fn mix2(key: u64, x: u64) -> u64 {
    splitmix64(splitmix64(key ^ x.rotate_left(32)).wrapping_add(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let s = Seed::new(99);
        assert_eq!(s.prf1(5), s.prf1(5));
        assert_eq!(s.prf2(1, 2), s.prf2(1, 2));
        assert_eq!(s.derive(3), s.derive(3));
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        let s = Seed::new(1);
        let outs: HashSet<u64> = (0..10_000).map(|i| s.prf1(i)).collect();
        assert_eq!(outs.len(), 10_000, "no collisions expected at this scale");
    }

    #[test]
    fn prf2_is_order_sensitive() {
        let s = Seed::new(7);
        assert_ne!(s.prf2(1, 2), s.prf2(2, 1));
    }

    #[test]
    fn derive_separates_domains() {
        let s = Seed::new(0);
        let tags: HashSet<u64> = (0..1000).map(|t| s.derive(t).value()).collect();
        assert_eq!(tags.len(), 1000);
        // derived seeds give different streams
        assert_ne!(s.derive(0).prf1(1), s.derive(1).prf1(1));
    }

    #[test]
    fn stream_produces_spread_words() {
        let mut st = Seed::new(5).stream();
        let words: Vec<u64> = (0..64).map(|_| st()).collect();
        let total_ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        // Expect roughly half the bits set: 64*64/2 = 2048, allow wide slack.
        assert!(total_ones > 1500 && total_ones < 2600, "{total_ones}");
    }

    #[test]
    fn different_keys_different_streams() {
        let mut a = Seed::new(1).stream();
        let mut b = Seed::new(2).stream();
        assert_ne!(a(), b());
    }
}
