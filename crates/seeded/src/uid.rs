//! Unique edge identifiers (Lemma 3.8) and the XOR-validity test
//! (Lemma 3.10).
//!
//! The paper draws `O(log n)`-bit identifiers from an ε-bias space so that
//! the XOR of two or more identifiers is almost never itself a valid
//! identifier. We substitute a keyed 64-bit PRF (DESIGN.md S1): the
//! verification interface is identical — given the seed `S_ID` and the
//! claimed endpoint ids, recompute `UID(e)` and compare — and the failure
//! probability (2⁻⁶⁴ per check) dominates the paper's `1/n^{10}` target.

use crate::prf::Seed;

/// A unique edge identifier: 64 pseudorandom bits determined by the seed and
/// the (unordered) endpoint pair.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct EdgeUid(pub u64);

/// The identifier space `I` of Lemma 3.8, determined by the seed `S_ID`.
///
/// ```
/// use ftl_seeded::{Seed, UidSpace};
/// let space = UidSpace::new(Seed::new(1));
/// let uid = space.uid(3, 7, 0);
/// assert_eq!(uid, space.uid(7, 3, 0)); // endpoint order does not matter
/// assert!(space.verify(3, 7, 0, uid));
/// assert!(!space.verify(3, 8, 0, uid));
/// ```
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct UidSpace {
    seed: Seed,
}

impl UidSpace {
    /// Creates the space from the seed `S_ID`.
    pub fn new(seed: Seed) -> Self {
        UidSpace { seed }
    }

    /// The seed, for storage inside labels.
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// `UID(e)` for the edge with endpoint ids `(u, v)` and multi-edge
    /// discriminator `copy` (0 for simple graphs; parallel edges get
    /// distinct copies so their UIDs differ).
    pub fn uid(&self, u: u32, v: u32, copy: u32) -> EdgeUid {
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        EdgeUid(self.seed.prf2(((lo as u64) << 32) | hi as u64, copy as u64))
    }

    /// Lemma 3.10's validity test: does `claimed` equal the UID of the edge
    /// `(u, v, copy)` under this seed?
    pub fn verify(&self, u: u32, v: u32, copy: u32, claimed: EdgeUid) -> bool {
        self.uid(u, v, copy) == claimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn symmetric_in_endpoints() {
        let s = UidSpace::new(Seed::new(11));
        assert_eq!(s.uid(1, 2, 0), s.uid(2, 1, 0));
        assert_ne!(s.uid(1, 2, 0), s.uid(1, 2, 1));
        assert_ne!(s.uid(1, 2, 0), s.uid(1, 3, 0));
    }

    #[test]
    fn verify_accepts_only_the_right_edge() {
        let s = UidSpace::new(Seed::new(5));
        let uid = s.uid(10, 20, 0);
        assert!(s.verify(10, 20, 0, uid));
        assert!(s.verify(20, 10, 0, uid));
        assert!(!s.verify(10, 21, 0, uid));
        assert!(!s.verify(10, 20, 1, uid));
    }

    #[test]
    fn xor_of_two_uids_is_invalid() {
        // The core property of Lemma 3.8: XORs of >= 2 identifiers do not
        // verify as any edge's identifier.
        let s = UidSpace::new(Seed::new(123));
        let n = 40u32;
        let uids: Vec<((u32, u32), EdgeUid)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| ((u, v), ())))
            .map(|((u, v), _)| ((u, v), s.uid(u, v, 0)))
            .collect();
        for i in 0..50 {
            for j in (i + 1)..50 {
                let x = EdgeUid(uids[i].1 .0 ^ uids[j].1 .0);
                // The XOR should not verify as ANY edge of the graph.
                for &((u, v), _) in uids.iter().take(80) {
                    assert!(!s.verify(u, v, 0, x));
                }
            }
        }
    }

    #[test]
    fn uids_are_distinct_at_scale() {
        let s = UidSpace::new(Seed::new(7));
        let mut seen = HashSet::new();
        for u in 0..200u32 {
            for v in (u + 1)..200u32 {
                assert!(seen.insert(s.uid(u, v, 0)), "collision at ({u},{v})");
            }
        }
    }

    #[test]
    fn different_seeds_different_spaces() {
        let a = UidSpace::new(Seed::new(1));
        let b = UidSpace::new(Seed::new(2));
        assert_ne!(a.uid(1, 2, 0), b.uid(1, 2, 0));
    }
}
