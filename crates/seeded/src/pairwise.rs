//! Pairwise-independent hash functions (Definition A.1 / Fact A.2).
//!
//! The sketch scheme samples each edge into level `j` of sketch unit `i`
//! with probability `2^{-j}` using a pairwise-independent hash `h_i`:
//! `E_{i,j} = { e : h_i(e) ∈ [0, 2^{log m - j}) }` (Section 3.2.1). Pairwise
//! independence suffices for the recovery guarantee (Lemma 3.9, citing
//! \[GKKT15\] Lemma 5.2).

use crate::prf::Seed;

/// The Mersenne prime `2^61 - 1`.
const P: u128 = (1u128 << 61) - 1;

/// A function drawn from the pairwise-independent family
/// `h(x) = ((a·x + b) mod p) mod 2^out_bits`, `p = 2^61 - 1`.
///
/// `a` is non-zero mod `p`; both coefficients are derived deterministically
/// from a [`Seed`], so a decoder holding the seed reproduces the exact
/// sampling of the labeler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl PairwiseHash {
    /// Draws a hash with `out_bits`-bit outputs from the family, keyed by
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is 0 or exceeds 61.
    pub fn from_seed(seed: Seed, out_bits: u32) -> Self {
        assert!((1..=61).contains(&out_bits), "out_bits must be in 1..=61");
        let a = (seed.prf1(0x61) % (P as u64 - 1)) + 1; // non-zero mod p
        let b = seed.prf1(0x62) % P as u64;
        PairwiseHash { a, b, out_bits }
    }

    /// Number of output bits (outputs lie in `[0, 2^out_bits)`).
    pub fn out_bits(&self) -> u32 {
        self.out_bits
    }

    /// Evaluates the hash.
    pub fn eval(&self, x: u64) -> u64 {
        let v = (self.a as u128 * (x as u128 % P) + self.b as u128) % P;
        (v as u64) & ((1u64 << self.out_bits) - 1)
    }

    /// The *sampling level* of `x`: the largest `j >= 0` with
    /// `eval(x) < 2^{out_bits - j}`, i.e. `x ∈ E_j` for all `j <= level(x)`.
    ///
    /// Membership `x ∈ E_j` (sampled with probability `2^{-j}`) is then just
    /// `j <= level(x)`.
    pub fn level(&self, x: u64) -> u32 {
        let h = self.eval(x);
        if h == 0 {
            self.out_bits
        } else {
            // largest j with h < 2^{out_bits - j}  <=>  bitlen(h) <= out_bits - j
            let bitlen = 64 - h.leading_zeros();
            self.out_bits - bitlen
        }
    }

    /// Whether `x` is sampled at level `j` (`x ∈ E_j`).
    pub fn in_level(&self, x: u64, j: u32) -> bool {
        j <= self.level(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let h1 = PairwiseHash::from_seed(Seed::new(3), 16);
        let h2 = PairwiseHash::from_seed(Seed::new(3), 16);
        assert_eq!(h1, h2);
        assert_eq!(h1.eval(12345), h2.eval(12345));
    }

    #[test]
    fn outputs_in_range() {
        let h = PairwiseHash::from_seed(Seed::new(9), 10);
        for x in 0..1000u64 {
            assert!(h.eval(x) < (1 << 10));
        }
    }

    #[test]
    fn level_consistent_with_eval() {
        let h = PairwiseHash::from_seed(Seed::new(1), 12);
        for x in 0..2000u64 {
            let l = h.level(x);
            let v = h.eval(x);
            assert!(v < (1u64 << (12 - l)), "x={x} l={l} v={v}");
            if l < 12 {
                assert!(v >= (1u64 << (12 - l - 1)), "level must be maximal");
            }
            assert!(h.in_level(x, 0));
            assert!(h.in_level(x, l));
            if l < 12 {
                assert!(!h.in_level(x, l + 1));
            }
        }
    }

    #[test]
    fn level_distribution_is_roughly_geometric() {
        let h = PairwiseHash::from_seed(Seed::new(77), 20);
        let n = 100_000u64;
        let mut at_least_1 = 0usize;
        let mut at_least_3 = 0usize;
        for x in 0..n {
            let l = h.level(x);
            if l >= 1 {
                at_least_1 += 1;
            }
            if l >= 3 {
                at_least_3 += 1;
            }
        }
        let f1 = at_least_1 as f64 / n as f64; // expect ~1/2
        let f3 = at_least_3 as f64 / n as f64; // expect ~1/8
        assert!((f1 - 0.5).abs() < 0.05, "P[level>=1] = {f1}");
        assert!((f3 - 0.125).abs() < 0.03, "P[level>=3] = {f3}");
    }

    #[test]
    fn pairwise_empirical_independence_smoke() {
        // For a few fixed pairs (x, y), the joint distribution of one output
        // bit over random seeds should be near uniform on {0,1}^2.
        let trials = 2000;
        let mut counts = [0usize; 4];
        for s in 0..trials {
            let h = PairwiseHash::from_seed(Seed::new(s as u64), 8);
            let bx = (h.eval(10) & 1) as usize;
            let by = (h.eval(20) & 1) as usize;
            counts[(bx << 1) | by] += 1;
        }
        for &c in &counts {
            let f = c as f64 / trials as f64;
            assert!((f - 0.25).abs() < 0.08, "joint cell frequency {f}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_out_bits_rejected() {
        PairwiseHash::from_seed(Seed::new(0), 0);
    }

    #[test]
    #[should_panic]
    fn too_many_out_bits_rejected() {
        PairwiseHash::from_seed(Seed::new(0), 62);
    }
}
