//! Minimal fork-join data parallelism for the construction sweeps.
//!
//! The labeling and routing schemes spend their preprocessing time in
//! embarrassingly parallel per-vertex / per-edge / per-tree sweeps. This
//! crate provides the one primitive they need — an order-preserving indexed
//! parallel map — implemented with `std::thread::scope` so the workspace
//! stays dependency-free (the build environment has no crates registry, so
//! rayon itself is unavailable).
//!
//! # The `parallel` feature
//!
//! The `parallel` feature (**default on**, forwarded by every consuming
//! crate as its own `parallel` feature) chooses the implementation:
//!
//! * enabled — work is split into contiguous chunks across
//!   `std::thread::available_parallelism()` scoped threads;
//! * disabled (`--no-default-features`) — the same API degrades to a plain
//!   sequential loop, for deterministic single-threaded profiling or
//!   platforms without threads.
//!
//! Results are bit-identical either way: every closure is pure in its index
//! and chunk results are spliced back in order.
//!
//! `README.md` at the repo root shows where the fork-join sweeps sit in
//! the build pipeline; threaded failure modes are in `docs/robustness.md`.

#![forbid(unsafe_code)]

/// Default minimum sweep size before threads are spawned. Each
/// `std::thread::scope` worker costs tens of µs to spawn (there is no
/// pool), so fine-grained sweeps — items of tens to hundreds of ns, like
/// label assembly — only win well into the thousands of items. Call sites
/// with heavier items pick a lower threshold via
/// [`par_map_indexed_with_min`] or [`par_map_indexed_coarse`].
pub const MIN_PARALLEL_LEN: usize = 4096;

#[cfg(feature = "parallel")]
static FORCE_SERIAL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Runtime escape hatch: forces every sweep onto the calling thread even
/// when the `parallel` feature is compiled in. Used by the benchmark
/// harness to measure serial-vs-parallel construction from one binary, and
/// handy under profilers.
pub fn force_serial(on: bool) {
    #[cfg(feature = "parallel")]
    FORCE_SERIAL.store(on, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "parallel"))]
    let _ = on;
}

/// Order-preserving parallel map over `0..n`: returns
/// `vec![f(0), f(1), .., f(n-1)]`.
///
/// `f` must be pure in its index argument — chunks execute concurrently in
/// unspecified relative order. Sweeps shorter than [`MIN_PARALLEL_LEN`]
/// run serially; for coarse-grained items (milliseconds each) use
/// [`par_map_indexed_coarse`], which parallelizes from 2 items up.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_with_min(n, MIN_PARALLEL_LEN, f)
}

/// [`par_map_indexed`] for coarse-grained items: parallelizes whenever
/// there are at least two items, so per-item work that dwarfs thread spawn
/// cost (e.g. building a whole cover tree's routing material per item)
/// uses all cores even for short work lists.
pub fn par_map_indexed_coarse<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_with_min(n, 2, f)
}

/// [`par_map_indexed`] with an explicit parallelization threshold: the
/// sweep stays serial below `min_len` items. Pick roughly
/// `(threads × spawn cost) / per-item cost`; see [`MIN_PARALLEL_LEN`].
pub fn par_map_indexed_with_min<U, F>(n: usize, min_len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        if n >= min_len.max(2)
            && threads > 1
            && !FORCE_SERIAL.load(std::sync::atomic::Ordering::Relaxed)
        {
            return par_map_chunked(n, threads, &f);
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = min_len;
    (0..n).map(f).collect()
}

/// Chunked parallel for-each over a mutable slice of `n_items` equal-stride
/// items: `data.len()` must be a multiple of `n_items`, and item `i`
/// occupies `data[i * stride .. (i + 1) * stride]`. The slice is split into
/// contiguous per-thread chunks **on item boundaries** and `f(first_item,
/// chunk)` runs once per chunk, where `chunk` covers items `first_item ..
/// first_item + chunk.len() / stride`.
///
/// This is the arena-sweep primitive: a labeling pass that accumulates into
/// one big allocation (e.g. the per-vertex sketch bank) hands each thread a
/// disjoint window of it, with any per-chunk scratch allocated once per
/// chunk instead of once per item. Sweeps below `min_items` run serially on
/// the calling thread; `f` must depend only on `first_item` and the chunk
/// contents, so the serial and parallel paths are bit-identical.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `n_items` (for `n_items >
/// 0`); re-raises any worker panic with its original payload.
pub fn par_for_each_chunk_mut<T, F>(data: &mut [T], n_items: usize, min_items: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if n_items == 0 {
        return;
    }
    assert_eq!(data.len() % n_items, 0, "data not item-aligned");
    let stride = data.len() / n_items;
    if stride == 0 {
        // Zero-width items: nothing to split on; run in place so the
        // serial and parallel paths invoke `f` identically.
        f(0, data);
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        if n_items >= min_items.max(2)
            && threads > 1
            && !FORCE_SERIAL.load(std::sync::atomic::Ordering::Relaxed)
        {
            let per_chunk = n_items.div_ceil(threads.min(n_items));
            let f = &f; // shared by reference: F: Sync makes &F Send
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut rest = data;
                let mut first = 0usize;
                while !rest.is_empty() {
                    let take = (per_chunk * stride).min(rest.len());
                    let (chunk, tail) = rest.split_at_mut(take);
                    let start = first;
                    handles.push(scope.spawn(move || f(start, chunk)));
                    first += take / stride;
                    rest = tail;
                }
                for h in handles {
                    if let Err(payload) = h.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
            return;
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = min_items;
    f(0, data);
}

/// Order-preserving parallel map over a slice.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(feature = "parallel")]
fn par_map_chunked<U, F>(n: usize, threads: usize, f: &F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let chunk = n.div_ceil(threads.min(n));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n.div_ceil(chunk))
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            // Re-raise worker panics with their original payload so an
            // assertion message reads the same whether the sweep took the
            // serial or the parallel path.
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_small_and_large() {
        for n in [0, 1, MIN_PARALLEL_LEN - 1, MIN_PARALLEL_LEN, 1000] {
            let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
            assert_eq!(par_map_indexed(n, |i| i * i), expect, "n = {n}");
        }
    }

    #[test]
    fn coarse_map_matches_sequential_below_min_len() {
        for n in [0usize, 1, 2, 3, MIN_PARALLEL_LEN] {
            let expect: Vec<usize> = (0..n).map(|i| i + 7).collect();
            assert_eq!(par_map_indexed_coarse(n, |i| i + 7), expect, "n = {n}");
        }
    }

    #[test]
    fn worker_panic_keeps_its_message() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(1000, |i| {
                assert!(i != 900, "original assertion message");
                i
            })
        })
        .expect_err("sweep must panic");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("original assertion message"),
            "payload was replaced: {msg:?}"
        );
    }

    #[test]
    fn chunked_mut_sweep_touches_every_item_once() {
        // 100 items of stride 7; each chunk writes item indices into its
        // window — every slot must end up holding its own item index.
        for (n, min) in [(100usize, 2), (100, 1000), (1, 2), (0, 2)] {
            let stride = 7;
            let mut data = vec![usize::MAX; n * stride];
            par_for_each_chunk_mut(&mut data, n, min, |first, chunk| {
                for (k, item) in chunk.chunks_exact_mut(stride).enumerate() {
                    for slot in item.iter_mut() {
                        *slot = first + k;
                    }
                }
            });
            let expect: Vec<usize> = (0..n)
                .flat_map(|i| std::iter::repeat_n(i, stride))
                .collect();
            assert_eq!(data, expect, "n = {n}, min = {min}");
        }
    }

    #[test]
    #[should_panic(expected = "not item-aligned")]
    fn chunked_mut_rejects_misaligned_data() {
        let mut data = vec![0u8; 10];
        par_for_each_chunk_mut(&mut data, 3, 2, |_, _| {});
    }

    #[test]
    fn slice_map_preserves_order() {
        let items: Vec<String> = (0..500).map(|i| format!("x{i}")).collect();
        let lens = par_map(&items, |s| s.len());
        let expect: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(lens, expect);
    }

    #[test]
    fn heavy_closure_results_spliced_in_order() {
        let out = par_map_indexed(300, |i| {
            // Unequal per-item work to exercise chunk imbalance.
            (0..(i % 7) * 100).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
        });
        let expect: Vec<u64> = (0..300)
            .map(|i| {
                (0..(i % 7) * 100).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
            })
            .collect();
        assert_eq!(out, expect);
    }
}
