//! Fault-tolerant compact routing with **unknown** faults
//! (Section 5.2, Theorems 5.5 and 5.8).
//!
//! Preprocessing: for every distance scale `i` and every tree `T_{i,j}` of
//! the scale's tree cover, build
//!
//! * a [`TreeRouting`] (heavy-light interval routing with Γ blocks),
//! * `f + 1` independent sketch-scheme copies on `G_{i,j}` sharing one
//!   `S_ID` seed (so extended identifiers coincide across copies, footnote
//!   7) but with fresh `S_h` sampling seeds, their cells carrying the
//!   serialized tree-routing labels as aux payloads (Eq. (5)).
//!
//! Routing: phases over scales; in phase `i` the source tries the home tree
//! of the *destination* (`G_{i, i*(t)}`). Each phase runs at most `|F| + 1`
//! trial iterations: decode a succinct path using the iteration's sketch
//! copy and the faults discovered so far, walk it, and on touching an
//! unknown faulty edge fetch its routing label (own table, or a Γ-block
//! round trip — Claim 5.7), append it to the header, and retreat to `s`.
//! Stretch: `32k(|F|+1)²·dist_{G\F}(s,t)` (Claim 5.4).

use crate::network::{Cursor, RoutingOutcome};
use crate::tree_routing::{LabelCodec, NextHop, TreeRouting};
use ftl_graph::shortest_path::distance_avoiding;
use ftl_graph::traversal::forbidden_mask;
use ftl_graph::{EdgeId, Graph, VertexId};
use ftl_seeded::Seed;
use ftl_sketch::{
    PathSegment, SketchEdgeLabel, SketchParams, SketchScheme, SketchVertexLabel, SuccinctPath,
    VertexAux,
};
use ftl_tree_cover::TreeCover;
use std::collections::HashSet;

/// Parameters of the routing scheme.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct RoutingParams {
    /// Stretch parameter `k`.
    pub k: u32,
    /// Fault budget `f` (number of sketch copies is `f + 1`).
    pub f: usize,
    /// Sketch units per labeling copy (`None` = 16; experiments lower it).
    pub units: Option<usize>,
}

impl RoutingParams {
    /// Default parameters.
    pub fn new(k: u32, f: usize) -> Self {
        RoutingParams { k, f, units: None }
    }

    /// Overrides the sketch-unit count.
    pub fn with_units(self, units: usize) -> Self {
        RoutingParams {
            units: Some(units),
            ..self
        }
    }
}

/// Everything attached to one cover tree `T_{i,j}`.
pub(crate) struct RTree {
    pub(crate) routing: TreeRouting,
    pub(crate) codec: LabelCodec,
    /// `f + 1` sketch copies, shared `S_ID`.
    pub(crate) copies: Vec<SketchScheme>,
}

/// One distance scale.
pub(crate) struct RScale {
    pub(crate) radius: u64,
    pub(crate) cover: TreeCover,
    pub(crate) trees: Vec<RTree>,
}

/// The routing label `L_route(t)` of Eq. (8): per scale, the home-tree index
/// `i*(t)` and the connectivity vertex label in that tree (whose aux payload
/// is the serialized tree-routing label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteLabel {
    /// One `(home tree index, vertex label)` entry per distance scale
    /// (every vertex has a home tree at every scale — covers are built over
    /// the whole graph).
    pub per_scale: Vec<(usize, SketchVertexLabel)>,
}

impl RouteLabel {
    /// Label size in bits.
    pub fn bits(&self) -> usize {
        self.per_scale
            .iter()
            .map(|(_, l)| 32 + 32 + 64 + l.aux.len())
            .sum()
    }
}

/// The fault-tolerant compact routing scheme (Theorem 5.8).
pub struct FtRoutingScheme {
    params: RoutingParams,
    pub(crate) scales: Vec<RScale>,
}

impl FtRoutingScheme {
    /// Preprocesses `graph`: builds covers, tree routings and `f + 1` sketch
    /// copies per cover tree.
    pub fn new(graph: &Graph, params: RoutingParams, seed: Seed) -> Self {
        let num_scales = graph.num_distance_scales() as usize;
        let mut scales = Vec::with_capacity(num_scales);
        for i in 0..num_scales {
            let radius = 1u64 << i.min(62);
            let heavy: Vec<bool> = graph.edges().iter().map(|e| e.weight() > radius).collect();
            let cover = TreeCover::build(graph, &heavy, radius, params.k);
            // Per-source preprocessing: every cover tree builds its routing
            // tables and `f + 1` sketch copies independently, so the sweep
            // runs one tree per core (`parallel` feature; see `ftl-par`).
            // Coarse variant: each item is milliseconds of work, so
            // parallelize even when the cover has only a handful of trees.
            let trees: Vec<RTree> = ftl_par::par_map_indexed_coarse(cover.trees.len(), |j| {
                let ct = &cover.trees[j];
                let local = ct.sub.graph();
                let routing = TreeRouting::new(local, &ct.tree, params.f);
                let codec = routing.codec();
                let aux = VertexAux {
                    bits: local
                        .vertices()
                        .map(|v| codec.encode(routing.label(v)))
                        .collect(),
                };
                let mut sp = SketchParams::for_graph(local)
                    .with_aux_bits(codec.bits())
                    .with_units(params.units.unwrap_or(16));
                if let Some(u) = params.units {
                    sp = sp.with_units(u);
                }
                let tree_seed = seed.derive(((i as u64) << 24) | j as u64);
                let sid = tree_seed.derive(0x1D);
                let copies: Vec<SketchScheme> = (0..=params.f)
                    .map(|c| {
                        SketchScheme::label_with_tree(
                            local,
                            &ct.tree,
                            &sp,
                            sid,
                            tree_seed.derive(0x100 + c as u64),
                            Some(&aux),
                        )
                        .expect("cover tree spans its cluster")
                    })
                    .collect();
                RTree {
                    routing,
                    codec,
                    copies,
                }
            });
            scales.push(RScale {
                radius,
                cover,
                trees,
            });
        }
        FtRoutingScheme { params, scales }
    }

    /// Scheme parameters.
    pub fn params(&self) -> RoutingParams {
        self.params
    }

    /// Number of distance scales.
    pub fn num_scales(&self) -> usize {
        self.scales.len()
    }

    /// The covering radius `2^i` of scale `i`.
    pub fn scale_radius(&self, i: usize) -> u64 {
        self.scales[i].radius
    }

    /// The routing label of `t` (Eq. (8)).
    pub fn route_label(&self, t: VertexId) -> RouteLabel {
        let per_scale = self
            .scales
            .iter()
            .map(|sc| {
                let j = sc.cover.home[t.index()];
                let lt = sc.cover.trees[j]
                    .sub
                    .to_local_vertex(t)
                    .expect("home tree contains t");
                (j, sc.trees[j].copies[0].vertex_label(lt))
            })
            .collect();
        RouteLabel { per_scale }
    }

    /// The worst-case stretch bound `32k(f+1)²` of Theorem 5.8.
    pub fn stretch_bound(&self, num_faults: usize) -> u64 {
        32 * self.params.k as u64 * (num_faults as u64 + 1).pow(2)
    }

    /// Size in bits of `v`'s routing table (Eq. (9) as modified by
    /// Claim 5.7): per tree containing `v` — the tree-routing table, one
    /// connectivity vertex label, and the `f+1`-copy labels of the tree
    /// edges whose Γ block contains `v`.
    pub fn table_bits(&self, v: VertexId) -> usize {
        let mut bits = 0usize;
        for sc in &self.scales {
            for (j, ct) in sc.cover.trees.iter().enumerate() {
                let Some(lv) = ct.sub.to_local_vertex(v) else {
                    continue;
                };
                let rt = &sc.trees[j];
                bits += rt.routing.table_bits();
                bits += rt.copies[0].vertex_label_bits();
                for e in rt.routing.edges_stored_by(lv) {
                    for copy in &rt.copies {
                        bits += copy.edge_label(e).bits();
                    }
                }
            }
        }
        bits
    }

    /// Largest routing table across all vertices, in bits.
    pub fn max_table_bits(&self, graph: &Graph) -> usize {
        graph
            .vertices()
            .map(|v| self.table_bits(v))
            .max()
            .unwrap_or(0)
    }

    /// Total table space across all vertices, in bits.
    pub fn total_table_bits(&self, graph: &Graph) -> usize {
        graph.vertices().map(|v| self.table_bits(v)).sum()
    }

    /// Routes a message from `s` to the holder of `label(t)` while the fault
    /// set is unknown (discovered on contact). Implements the phase /
    /// iteration algorithm of Section 5.2.
    pub fn route(
        &self,
        graph: &Graph,
        s: VertexId,
        t: VertexId,
        faults: &HashSet<EdgeId>,
    ) -> RoutingOutcome {
        let fault_vec: Vec<EdgeId> = faults.iter().copied().collect();
        let mask = forbidden_mask(graph, &fault_vec);
        let optimal = distance_avoiding(graph, s, t, &mask);
        let mut out = RoutingOutcome {
            delivered: false,
            weight: 0,
            hops: 0,
            optimal,
            phases: 0,
            iterations: 0,
            faults_discovered: 0,
            max_header_bits: 0,
        };
        if s == t {
            out.delivered = true;
            return out;
        }
        let t_label = self.route_label(t);
        let mut cursor = Cursor::new(graph, faults, s);
        let mut discovered_global: HashSet<EdgeId> = HashSet::new();
        for (i, sc) in self.scales.iter().enumerate() {
            // Phase i uses the destination's home tree G_{i, i*(t)}.
            let (j, local_t_label) = t_label.per_scale[i].clone();
            let ct = &sc.cover.trees[j];
            let Some(local_s) = ct.sub.to_local_vertex(s) else {
                continue; // s not in T_i: next phase
            };
            let Some(_) = ct.sub.to_local_vertex(t) else {
                continue;
            };
            out.phases += 1;
            let rt = &sc.trees[j];
            // Known faults of this phase: (local edge, per-copy labels).
            let mut known: Vec<(EdgeId, Vec<SketchEdgeLabel>)> = Vec::new();
            let s_label = rt.copies[0].vertex_label(local_s);
            'iterations: for ell in 0..=self.params.f {
                out.iterations += 1;
                let copy = ell.min(rt.copies.len() - 1);
                let fl: Vec<SketchEdgeLabel> =
                    known.iter().map(|(_, ls)| ls[copy].clone()).collect();
                let decoded = ftl_sketch::decode(&s_label, &local_t_label, &fl);
                if !decoded.connected {
                    break 'iterations; // next phase
                }
                let path = decoded.path.expect("connected carries a path");
                // Header: path description + the f+1-copy labels of every
                // known fault + bookkeeping indices.
                let header_bits = succinct_path_bits(&path)
                    + known
                        .iter()
                        .map(|(_, ls)| ls.iter().map(SketchEdgeLabel::bits).sum::<usize>())
                        .sum::<usize>()
                    + 96;
                out.max_header_bits = out.max_header_bits.max(header_bits);
                match walk_path(&mut cursor, ct, rt, local_s, &path) {
                    WalkResult::Arrived => {
                        out.delivered = true;
                        out.weight = cursor.weight;
                        out.hops = cursor.hops;
                        out.faults_discovered = discovered_global.len();
                        return out;
                    }
                    WalkResult::FaultDiscovered { local_edge, labels } => {
                        let host = ct.sub.to_host_edge(local_edge);
                        discovered_global.insert(host);
                        if !known.iter().any(|(e, _)| *e == local_edge) {
                            known.push((local_edge, labels));
                        }
                        // Message already retreated to s inside walk_path.
                        debug_assert_eq!(cursor.at, s);
                        continue 'iterations;
                    }
                    WalkResult::Stuck => {
                        // Could not fetch a fault's label (more faults than
                        // the scheme's budget); abort.
                        out.weight = cursor.weight;
                        out.hops = cursor.hops;
                        out.faults_discovered = discovered_global.len();
                        return out;
                    }
                }
            }
        }
        out.weight = cursor.weight;
        out.hops = cursor.hops;
        out.faults_discovered = discovered_global.len();
        out
    }
}

/// Bits of a succinct path description inside a header.
fn succinct_path_bits(path: &SuccinctPath) -> usize {
    path.segments
        .iter()
        .map(|seg| match seg {
            PathSegment::RecoveryEdge { eid, .. } => eid.to_bits().len(),
            PathSegment::TreePath { from, to } => 2 * (32 + 64) + from.aux.len() + to.aux.len(),
        })
        .sum()
}

/// Result of walking one succinct path attempt.
enum WalkResult {
    Arrived,
    FaultDiscovered {
        local_edge: EdgeId,
        labels: Vec<SketchEdgeLabel>,
    },
    Stuck,
}

/// Walks the succinct path from `local_s`, charging the cursor. On touching
/// a faulty edge, fetches its labels (own table or Γ round trip), retreats
/// to the start, and reports the discovery.
fn walk_path(
    cursor: &mut Cursor<'_>,
    ct: &ftl_tree_cover::CoverTree,
    rt: &RTree,
    local_s: VertexId,
    path: &SuccinctPath,
) -> WalkResult {
    let sub = &ct.sub;
    let local = sub.graph();
    let start_host = cursor.at;
    let mut cur = local_s;
    let mut trail: Vec<EdgeId> = Vec::new(); // host edges, forward order
    let cross =
        |cursor: &mut Cursor<'_>, trail: &mut Vec<EdgeId>, cur: &mut VertexId, le: EdgeId| {
            let he = sub.to_host_edge(le);
            cursor.cross(he);
            trail.push(he);
            *cur = local.edge(le).other(*cur);
        };
    for seg in &path.segments {
        match seg {
            PathSegment::RecoveryEdge { eid, from, to } => {
                debug_assert_eq!(from.id, cur.raw());
                let port = if eid.lo == from.id {
                    eid.port_lo
                } else {
                    eid.port_hi
                };
                let nb = local
                    .port(cur, port as usize)
                    .expect("recovery edge port valid");
                let he = sub.to_host_edge(nb.edge);
                if cursor.probe(he) {
                    // Non-tree fault: its label is its EID, already in the
                    // header; all copies share it (same S_ID).
                    let labels = rt.copies.iter().map(|c| c.edge_label(nb.edge)).collect();
                    cursor.retreat(&trail, start_host);
                    return WalkResult::FaultDiscovered {
                        local_edge: nb.edge,
                        labels,
                    };
                }
                cross(cursor, &mut trail, &mut cur, nb.edge);
                debug_assert_eq!(cur.raw(), to.id);
            }
            PathSegment::TreePath { from, to } => {
                debug_assert_eq!(from.id, cur.raw());
                let target = rt.codec.decode(&to.aux);
                loop {
                    let table = rt.routing.table(cur);
                    let Some((hop, gamma_ports)) = TreeRouting::next_hop_with_gamma(table, &target)
                    else {
                        return WalkResult::Stuck;
                    };
                    let NextHop::Port(p) = hop else {
                        break; // arrived at segment end
                    };
                    let nb = local.port(cur, p as usize).expect("tree port valid");
                    let he = sub.to_host_edge(nb.edge);
                    if cursor.probe(he) {
                        // Tree fault. Fetch its label: own table if cur is a
                        // Γ member (always true when moving up to the
                        // parent), otherwise a Γ-block round trip.
                        let has_it = rt.routing.gamma_members(nb.edge).contains(&cur);
                        if !has_it {
                            let mut fetched = false;
                            for gp in &gamma_ports {
                                let gnb = local.port(cur, *gp as usize).expect("gamma port");
                                if gnb.edge == nb.edge {
                                    continue; // that's the faulty edge itself
                                }
                                let ghe = sub.to_host_edge(gnb.edge);
                                if cursor.probe(ghe) {
                                    continue; // this Γ member is unreachable
                                }
                                cursor.round_trip(ghe);
                                fetched = true;
                                break;
                            }
                            if !fetched {
                                return WalkResult::Stuck;
                            }
                        }
                        let labels = rt.copies.iter().map(|c| c.edge_label(nb.edge)).collect();
                        cursor.retreat(&trail, start_host);
                        return WalkResult::FaultDiscovered {
                            local_edge: nb.edge,
                            labels,
                        };
                    }
                    cross(cursor, &mut trail, &mut cur, nb.edge);
                }
                debug_assert_eq!(cur.raw(), to.id);
            }
        }
    }
    WalkResult::Arrived
}

/// Shared helper for the forbidden-set variant: walk a path that is
/// guaranteed fault-free.
pub(crate) fn walk_clean_path(
    cursor: &mut Cursor<'_>,
    ct: &ftl_tree_cover::CoverTree,
    rt: &RTree,
    local_s: VertexId,
    path: &SuccinctPath,
) -> bool {
    matches!(
        walk_path(cursor, ct, rt, local_s, path),
        WalkResult::Arrived
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_fault_set(g: &Graph, f: usize, rng: &mut StdRng) -> HashSet<EdgeId> {
        let mut faults = HashSet::new();
        while faults.len() < f.min(g.num_edges()) {
            faults.insert(EdgeId::new(rng.gen_range(0..g.num_edges())));
        }
        faults
    }

    fn check_ft_routing(g: &Graph, k: u32, f: usize, trials: usize, seed: u64) {
        let scheme = FtRoutingScheme::new(g, RoutingParams::new(k, f), Seed::new(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for trial in 0..trials {
            let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let faults = random_fault_set(g, f, &mut rng);
            let out = scheme.route(g, s, t, &faults);
            match out.optimal {
                None => assert!(!out.delivered, "trial {trial}: delivered across a cut"),
                Some(opt) => {
                    assert!(
                        out.delivered,
                        "trial {trial}: undelivered s={s:?} t={t:?} faults={faults:?}"
                    );
                    let bound = scheme.stretch_bound(faults.len());
                    assert!(
                        out.weight <= bound * opt.max(1),
                        "trial {trial}: stretch {} > {bound} x {opt}",
                        out.weight
                    );
                }
            }
        }
    }

    #[test]
    fn grid_ft_routing() {
        let g = generators::grid(4, 4);
        check_ft_routing(&g, 2, 2, 20, 21);
    }

    #[test]
    fn cycle_ft_routing() {
        let g = generators::cycle(12);
        check_ft_routing(&g, 2, 1, 20, 22);
    }

    #[test]
    fn random_graph_ft_routing() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::connected_random(20, 0.12, 1, &mut rng);
        check_ft_routing(&g, 2, 2, 15, 23);
    }

    #[test]
    fn weighted_graph_ft_routing() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::random_weighted_grid(3, 4, 4, &mut rng);
        check_ft_routing(&g, 2, 1, 15, 24);
    }

    #[test]
    fn star_high_degree_gamma_path() {
        // High-degree root: Γ blocks are non-trivial, and failing tree edges
        // forces label fetches through siblings.
        let g = generators::star(14);
        check_ft_routing(&g, 2, 2, 20, 25);
    }

    #[test]
    fn zero_faults_cheap_delivery() {
        let g = generators::grid(3, 3);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(5));
        let out = scheme.route(&g, VertexId::new(0), VertexId::new(8), &HashSet::new());
        assert!(out.delivered);
        assert_eq!(out.faults_discovered, 0);
        assert!(out.iterations >= 1);
        assert!(out.stretch().unwrap() <= scheme.stretch_bound(0) as f64);
    }

    #[test]
    fn discovery_counts_reported() {
        // Path graph: failing the middle edge with s,t on opposite sides is
        // a genuine cut; on the same side routing succeeds.
        let g = generators::path(8);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(6));
        let faults: HashSet<EdgeId> = [EdgeId::new(3)].into_iter().collect();
        let cut = scheme.route(&g, VertexId::new(0), VertexId::new(7), &faults);
        assert!(!cut.delivered);
        let same_side = scheme.route(&g, VertexId::new(0), VertexId::new(3), &faults);
        assert!(same_side.delivered);
    }

    #[test]
    fn label_and_table_accounting() {
        let g = generators::grid(4, 4);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(7));
        let label = scheme.route_label(VertexId::new(5));
        assert!(label.bits() > 0);
        assert_eq!(label.per_scale.len(), scheme.num_scales());
        let max_bits = scheme.max_table_bits(&g);
        let total_bits = scheme.total_table_bits(&g);
        assert!(max_bits > 0);
        assert!(total_bits >= max_bits);
        assert!(total_bits <= max_bits * g.num_vertices());
    }

    #[test]
    fn header_bits_grow_with_discoveries() {
        let g = generators::cycle(10);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 2), Seed::new(8));
        let clean = scheme.route(&g, VertexId::new(0), VertexId::new(5), &HashSet::new());
        // Put a fault right on the tree path between 0 and 5.
        let faults: HashSet<EdgeId> = [EdgeId::new(2)].into_iter().collect();
        let dirty = scheme.route(&g, VertexId::new(0), VertexId::new(5), &faults);
        assert!(dirty.delivered);
        if dirty.faults_discovered > 0 {
            assert!(dirty.max_header_bits > clean.max_header_bits);
        }
    }

    #[test]
    fn adversarial_bridge_faults() {
        // Two triangles and a bridge; fail one triangle edge + test routing
        // across the bridge.
        let mut b = ftl_graph::GraphBuilder::new(6);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(1, 2);
        b.add_unit_edge(2, 0);
        b.add_unit_edge(3, 4);
        b.add_unit_edge(4, 5);
        b.add_unit_edge(5, 3);
        let bridge = b.add_unit_edge(0, 3);
        let g = b.build();
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 2), Seed::new(9));
        let faults: HashSet<EdgeId> = [EdgeId::new(0)].into_iter().collect();
        let out = scheme.route(&g, VertexId::new(1), VertexId::new(4), &faults);
        assert!(out.delivered);
        let faults: HashSet<EdgeId> = [bridge].into_iter().collect();
        let out = scheme.route(&g, VertexId::new(1), VertexId::new(4), &faults);
        assert!(!out.delivered);
    }
}
