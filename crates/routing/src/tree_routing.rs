//! Interval routing on trees with heavy-light decomposition (Fact 5.1,
//! \[TZ01\]) and the Γ-block extension (Claim 5.6).
//!
//! Every vertex `v` gets a **table**: its DFS interval, the port to its
//! parent, and the interval + port of its (unique) heavy child. Every vertex
//! gets a **label**: its DFS interval plus one entry per *light* edge on the
//! root→v path (there are at most `⌈log₂ n⌉`), each carrying the source
//! vertex's DFS number and the port to take. A vertex `u` on the root→t path
//! computes the next hop from its table and `t`'s label in O(1).
//!
//! The Γ extension: each tree edge `e = (u, v)` (with `v` the child) is
//! assigned a block `Γ_T(e)` of `f+1 .. 2f+1` children of `u` (consecutive
//! siblings of `v`) that store `e`'s connectivity labels; tables and labels
//! additionally carry the ports from `u` to the Γ members so a router at `u`
//! can fetch a discovered faulty edge's label from a surviving neighbor
//! (Claim 5.6). For `deg(u, T) <= f+1` the block is just `{u, v}`.

use ftl_gf2::BitVec;
use ftl_graph::{EdgeId, Graph, SpanningTree, VertexId};

/// Routing decision at a vertex.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum NextHop {
    /// The current vertex is the destination.
    Arrived,
    /// Forward through this port.
    Port(u32),
}

/// A light-edge entry on the root→v path: "at the vertex with DFS number
/// `src_pre`, take `port`"; `gamma_ports` are the ports from that vertex to
/// the Γ-block members of the edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LightEntry {
    /// DFS number of the edge's source (parent-side) vertex.
    pub src_pre: u32,
    /// Port from the source vertex along the edge.
    pub port: u32,
    /// Ports from the source vertex to the Γ-block members of this edge.
    pub gamma_ports: Vec<u32>,
}

/// The tree-routing label `L_T(v)` (Fact 5.1 / Claim 5.6): `O(f·log² n)`
/// bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLabel {
    /// DFS entry time of `v`.
    pub pre: u32,
    /// DFS exit time of `v`.
    pub post: u32,
    /// Light edges on the root→v path, root side first.
    pub lights: Vec<LightEntry>,
}

/// The tree-routing table `R_T(v)`: `O(f·log n)` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTable {
    /// DFS entry time of `v`.
    pub pre: u32,
    /// DFS exit time of `v`.
    pub post: u32,
    /// Port to the parent (`None` at the root).
    pub parent_port: Option<u32>,
    /// Heavy child interval, port, and Γ ports (`None` at leaves).
    pub heavy: Option<HeavyEntry>,
}

/// Table entry for the unique heavy child edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyEntry {
    /// DFS entry time of the heavy child.
    pub pre: u32,
    /// DFS exit time of the heavy child.
    pub post: u32,
    /// Port to the heavy child.
    pub port: u32,
    /// Ports to the Γ-block members of the heavy edge.
    pub gamma_ports: Vec<u32>,
}

/// The tree-routing scheme of one rooted spanning tree.
#[derive(Debug, Clone)]
pub struct TreeRouting {
    labels: Vec<TreeLabel>,
    tables: Vec<TreeTable>,
    /// For every tree edge (by graph edge id): the Γ-block members.
    gamma: Vec<Vec<VertexId>>,
    f: usize,
    max_lights: usize,
}

impl TreeRouting {
    /// Builds labels and tables for `tree` inside `graph`, with Γ blocks
    /// sized for `f` faults.
    ///
    /// # Panics
    ///
    /// Panics if the tree does not span the graph.
    pub fn new(graph: &Graph, tree: &SpanningTree, f: usize) -> Self {
        let n = graph.num_vertices();
        assert_eq!(tree.num_tree_vertices(), n, "tree must span the graph");
        // Subtree sizes for heavy-child selection.
        let mut size = vec![1usize; n];
        for &v in tree.preorder().iter().rev() {
            if let Some((p, _)) = tree.parent(v) {
                size[p.index()] += size[v.index()];
            }
        }
        let heavy_child: Vec<Option<VertexId>> = (0..n)
            .map(|i| {
                tree.children(VertexId::new(i))
                    .iter()
                    .copied()
                    .max_by_key(|c| (size[c.index()], std::cmp::Reverse(c.index())))
            })
            .collect();
        // Γ blocks: children of u in consecutive blocks of f+1 (last block
        // absorbs the remainder, size <= 2f+1). For deg(u,T) <= f+1 the
        // block is {u, v} itself (both endpoints store the label).
        let mut gamma: Vec<Vec<VertexId>> = vec![Vec::new(); graph.num_edges()];
        for u in graph.vertices() {
            if !tree.contains(u) {
                continue;
            }
            let children = tree.children(u);
            let block_size = f + 1;
            let small = children.len() <= block_size;
            let num_full_blocks = if small {
                0
            } else {
                children.len() / block_size
            };
            for (ci, &c) in children.iter().enumerate() {
                let (_, e) = tree.parent(c).expect("child has parent edge");
                if small {
                    gamma[e.index()] = vec![u, c];
                } else {
                    let mut b = ci / block_size;
                    if b >= num_full_blocks {
                        b = num_full_blocks - 1; // last block absorbs remainder
                    }
                    let start = b * block_size;
                    let end = if b == num_full_blocks - 1 {
                        children.len()
                    } else {
                        start + block_size
                    };
                    gamma[e.index()] = children[start..end].to_vec();
                    // The child itself always stores its parent edge's label.
                    if !gamma[e.index()].contains(&c) {
                        gamma[e.index()].push(c);
                    }
                }
            }
        }
        // Port of the tree edge from parent u to child c.
        let port_to_child = |u: VertexId, c: VertexId| -> u32 {
            let (_, e) = tree.parent(c).expect("child");
            graph.port_of_edge(u, e).expect("edge at parent") as u32
        };
        let gamma_ports_of = |u: VertexId, c: VertexId| -> Vec<u32> {
            let (_, e) = tree.parent(c).expect("child");
            gamma[e.index()]
                .iter()
                .filter(|&&w| w != u)
                .map(|&w| {
                    let (_, ew) = tree.parent(w).expect("gamma member is a child of u");
                    graph.port_of_edge(u, ew).expect("edge at parent") as u32
                })
                .collect()
        };
        // Tables — independent per vertex, built in parallel (`parallel`
        // feature; see `ftl-par`).
        let tables: Vec<TreeTable> = ftl_par::par_map_indexed_with_min(n, 512, |i| {
            let v = VertexId::new(i);
            let parent_port = tree
                .parent(v)
                .map(|(_, e)| graph.port_of_edge(v, e).expect("edge at child") as u32);
            let heavy = heavy_child[i].map(|h| HeavyEntry {
                pre: tree.pre(h),
                post: tree.post(h),
                port: port_to_child(v, h),
                gamma_ports: gamma_ports_of(v, h),
            });
            TreeTable {
                pre: tree.pre(v),
                post: tree.post(v),
                parent_port,
                heavy,
            }
        });
        // Labels: walk from root down, carrying the light entries.
        let mut labels: Vec<Option<TreeLabel>> = vec![None; n];
        let root = tree.root();
        labels[root.index()] = Some(TreeLabel {
            pre: tree.pre(root),
            post: tree.post(root),
            lights: Vec::new(),
        });
        for &v in tree.preorder() {
            let me = labels[v.index()]
                .clone()
                .expect("preorder fills parents first");
            for &c in tree.children(v) {
                let mut lights = me.lights.clone();
                if heavy_child[v.index()] != Some(c) {
                    lights.push(LightEntry {
                        src_pre: tree.pre(v),
                        port: port_to_child(v, c),
                        gamma_ports: gamma_ports_of(v, c),
                    });
                }
                labels[c.index()] = Some(TreeLabel {
                    pre: tree.pre(c),
                    post: tree.post(c),
                    lights,
                });
            }
        }
        let labels: Vec<TreeLabel> = labels
            .into_iter()
            .map(|l| l.expect("tree spans the graph"))
            .collect();
        let max_lights = labels.iter().map(|l| l.lights.len()).max().unwrap_or(0);
        TreeRouting {
            labels,
            tables,
            gamma,
            f,
            max_lights,
        }
    }

    /// The label `L_T(v)`.
    pub fn label(&self, v: VertexId) -> &TreeLabel {
        &self.labels[v.index()]
    }

    /// The table `R_T(v)`.
    pub fn table(&self, v: VertexId) -> &TreeTable {
        &self.tables[v.index()]
    }

    /// Γ-block members of a tree edge.
    pub fn gamma_members(&self, e: EdgeId) -> &[VertexId] {
        &self.gamma[e.index()]
    }

    /// All tree edges whose Γ block contains `v` (whose labels `v` must
    /// store).
    pub fn edges_stored_by(&self, v: VertexId) -> Vec<EdgeId> {
        self.gamma
            .iter()
            .enumerate()
            .filter(|(_, g)| g.contains(&v))
            .map(|(i, _)| EdgeId::new(i))
            .collect()
    }

    /// Fault budget the Γ blocks were sized for.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The next hop from the vertex owning `table` toward the vertex owning
    /// `target` (Fact 5.1: O(1) given the light entries).
    ///
    /// Returns `None` if the label and table are inconsistent (never happens
    /// for labels/tables of the same tree).
    pub fn next_hop(table: &TreeTable, target: &TreeLabel) -> Option<NextHop> {
        Self::next_hop_with_gamma(table, target).map(|(h, _)| h)
    }

    /// Like [`TreeRouting::next_hop`], additionally returning the Γ ports of
    /// the chosen downward edge (Claim 5.6); the Γ list is empty for upward
    /// (parent) hops, where the mover itself stores the edge label.
    pub fn next_hop_with_gamma(
        table: &TreeTable,
        target: &TreeLabel,
    ) -> Option<(NextHop, Vec<u32>)> {
        if table.pre == target.pre {
            return Some((NextHop::Arrived, Vec::new()));
        }
        let in_my_subtree = table.pre <= target.pre && target.post <= table.post;
        if !in_my_subtree {
            return table.parent_port.map(|p| (NextHop::Port(p), Vec::new()));
        }
        if let Some(h) = &table.heavy {
            if h.pre <= target.pre && target.post <= h.post {
                return Some((NextHop::Port(h.port), h.gamma_ports.clone()));
            }
        }
        // Otherwise the next edge is light and appears in the target label.
        target
            .lights
            .iter()
            .find(|l| l.src_pre == table.pre)
            .map(|l| (NextHop::Port(l.port), l.gamma_ports.clone()))
    }

    /// Maximum number of light entries on any label (`<= ⌈log₂ n⌉`).
    pub fn max_lights(&self) -> usize {
        self.max_lights
    }

    /// A codec able to (de)serialize every label of this tree into a
    /// fixed-width bit string (for embedding into sketch cells).
    pub fn codec(&self) -> LabelCodec {
        LabelCodec {
            max_lights: self.max_lights,
            gamma_cap: 2 * self.f + 1,
        }
    }

    /// Bits of the largest label under this tree's codec.
    pub fn label_bits(&self) -> usize {
        self.codec().bits()
    }

    /// Bits of a table: interval + parent port + heavy entry with Γ ports.
    pub fn table_bits(&self) -> usize {
        64 + 33 + 1 + 96 + (2 * self.f + 1) * 32
    }
}

/// Fixed-width serialization of [`TreeLabel`]s, so they can ride inside
/// XOR-composable sketch cells (Eq. (5) puts `L_T(u)`, `L_T(v)` in the
/// extended edge identifiers).
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct LabelCodec {
    /// Maximum number of light entries across the tree.
    pub max_lights: usize,
    /// Maximum Γ-block size (`2f + 1`).
    pub gamma_cap: usize,
}

impl LabelCodec {
    /// Serialized width in bits.
    pub fn bits(&self) -> usize {
        // pre + post + light count + entries (src_pre, port, gamma count,
        // gamma ports).
        64 + 16 + self.max_lights * (64 + 16 + self.gamma_cap * 32)
    }

    /// Serializes a label.
    ///
    /// # Panics
    ///
    /// Panics if the label exceeds the codec's capacity.
    pub fn encode(&self, label: &TreeLabel) -> BitVec {
        assert!(label.lights.len() <= self.max_lights, "too many lights");
        let mut v = BitVec::zeros(self.bits());
        let mut pos = 0usize;
        let put = |v: &mut BitVec, pos: &mut usize, word: u64, bits: usize| {
            for i in 0..bits {
                if (word >> i) & 1 == 1 {
                    v.set(*pos + i, true);
                }
            }
            *pos += bits;
        };
        put(&mut v, &mut pos, label.pre as u64, 32);
        put(&mut v, &mut pos, label.post as u64, 32);
        put(&mut v, &mut pos, label.lights.len() as u64, 16);
        for l in &label.lights {
            assert!(l.gamma_ports.len() <= self.gamma_cap, "gamma overflow");
            put(&mut v, &mut pos, l.src_pre as u64, 32);
            put(&mut v, &mut pos, l.port as u64, 32);
            put(&mut v, &mut pos, l.gamma_ports.len() as u64, 16);
            for &g in &l.gamma_ports {
                put(&mut v, &mut pos, g as u64, 32);
            }
            pos += (self.gamma_cap - l.gamma_ports.len()) * 32;
        }
        v
    }

    /// Deserializes a label.
    ///
    /// # Panics
    ///
    /// Panics if the bit string has the wrong width.
    pub fn decode(&self, bits: &BitVec) -> TreeLabel {
        assert_eq!(bits.len(), self.bits(), "codec width mismatch");
        let mut pos = 0usize;
        let get = |pos: &mut usize, n: usize| -> u64 {
            let mut w = 0u64;
            for i in 0..n {
                if bits.get(*pos + i) {
                    w |= 1 << i;
                }
            }
            *pos += n;
            w
        };
        let pre = get(&mut pos, 32) as u32;
        let post = get(&mut pos, 32) as u32;
        let count = get(&mut pos, 16) as usize;
        let mut lights = Vec::with_capacity(count);
        for _ in 0..count.min(self.max_lights) {
            let src_pre = get(&mut pos, 32) as u32;
            let port = get(&mut pos, 32) as u32;
            let gcount = get(&mut pos, 16) as usize;
            let mut gamma_ports = Vec::with_capacity(gcount);
            for _ in 0..gcount.min(self.gamma_cap) {
                gamma_ports.push(get(&mut pos, 32) as u32);
            }
            pos += (self.gamma_cap - gamma_ports.len()) * 32;
            lights.push(LightEntry {
                src_pre,
                port,
                gamma_ports,
            });
        }
        TreeLabel { pre, post, lights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Routes hop-by-hop from s to t using only tables and the target label;
    /// asserts arrival and returns the traversed edges.
    fn simulate(g: &Graph, tr: &TreeRouting, s: VertexId, t: VertexId) -> Vec<EdgeId> {
        let target = tr.label(t).clone();
        let mut cur = s;
        let mut edges = Vec::new();
        for _ in 0..2 * g.num_vertices() + 2 {
            match TreeRouting::next_hop(tr.table(cur), &target).expect("consistent") {
                NextHop::Arrived => return edges,
                NextHop::Port(p) => {
                    let nb = g.port(cur, p as usize).expect("valid port");
                    edges.push(nb.edge);
                    cur = nb.vertex;
                }
            }
        }
        panic!("routing loop between {s:?} and {t:?}");
    }

    fn check_all_pairs(g: &Graph, f: usize) {
        let tree = SpanningTree::bfs_tree(g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(g, &tree, f);
        for a in 0..g.num_vertices() {
            for b in 0..g.num_vertices() {
                let (s, t) = (VertexId::new(a), VertexId::new(b));
                let edges = simulate(g, &tr, s, t);
                // The route must be exactly the tree path (optimal in T).
                assert_eq!(edges, tree.tree_path(s, t), "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn path_tree_routing() {
        check_all_pairs(&generators::path(8), 1);
    }

    #[test]
    fn star_tree_routing() {
        check_all_pairs(&generators::star(9), 2);
    }

    #[test]
    fn grid_bfs_tree_routing() {
        check_all_pairs(&generators::grid(4, 4), 1);
    }

    #[test]
    fn random_trees_routing() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = generators::random_tree(40, &mut rng);
            check_all_pairs(&g, 2);
        }
    }

    #[test]
    fn caterpillar_with_high_degree() {
        check_all_pairs(&generators::caterpillar(5, 6), 2);
    }

    #[test]
    fn labels_have_logarithmically_many_lights() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::random_tree(256, &mut rng);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, 1);
        // Heavy-light: at most log2(256) = 8 light edges on any root path.
        assert!(tr.max_lights() <= 8, "max lights {}", tr.max_lights());
    }

    #[test]
    fn gamma_blocks_cover_every_tree_edge() {
        let g = generators::star(20); // root with 19 children
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let f = 3;
        let tr = TreeRouting::new(&g, &tree, f);
        for (id, _) in g.edge_ids() {
            let members = tr.gamma_members(id);
            // Child endpoint always stores its parent edge.
            let child = g.edge(id).other(VertexId::new(0));
            assert!(members.contains(&child), "{id:?}");
            // Block size in [f+1, 2f+2] (child appended to its block).
            assert!(members.len() > f, "{id:?}: {}", members.len());
            assert!(members.len() <= 2 * f + 2, "{id:?}: {}", members.len());
        }
    }

    #[test]
    fn gamma_small_degree_is_both_endpoints() {
        let g = generators::path(5);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, 2);
        for (id, e) in g.edge_ids() {
            let m = tr.gamma_members(id);
            assert!(m.contains(&e.u()) && m.contains(&e.v()));
        }
    }

    #[test]
    fn gamma_ports_reach_gamma_members() {
        let g = generators::star(16);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, 2);
        let root = VertexId::new(0);
        for leaf in 1..16 {
            let t = VertexId::new(leaf);
            let (hop, gports) =
                TreeRouting::next_hop_with_gamma(tr.table(root), tr.label(t)).unwrap();
            let NextHop::Port(p) = hop else {
                panic!("must forward")
            };
            let edge = g.port(root, p as usize).unwrap().edge;
            let members = tr.gamma_members(edge);
            // Every advertised gamma port leads to a member.
            for gp in gports {
                let w = g.port(root, gp as usize).unwrap().vertex;
                assert!(members.contains(&w), "port {gp} -> {w:?}");
            }
        }
    }

    #[test]
    fn edges_stored_by_is_inverse_of_gamma() {
        let g = generators::caterpillar(4, 5);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, 1);
        for v in g.vertices() {
            for e in tr.edges_stored_by(v) {
                assert!(tr.gamma_members(e).contains(&v));
            }
        }
    }

    #[test]
    fn codec_roundtrip() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = generators::random_tree(64, &mut rng);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, 2);
        let codec = tr.codec();
        for v in g.vertices() {
            let l = tr.label(v);
            let bits = codec.encode(l);
            assert_eq!(bits.len(), codec.bits());
            assert_eq!(&codec.decode(&bits), l);
        }
    }

    #[test]
    fn codec_width_uniform() {
        let g = generators::grid(3, 5);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, 1);
        let codec = tr.codec();
        let widths: std::collections::HashSet<usize> = g
            .vertices()
            .map(|v| codec.encode(tr.label(v)).len())
            .collect();
        assert_eq!(widths.len(), 1);
    }

    #[test]
    fn single_vertex_tree() {
        let g = ftl_graph::GraphBuilder::new(1).build();
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, 1);
        let hop = TreeRouting::next_hop(tr.table(VertexId::new(0)), tr.label(VertexId::new(0)));
        assert_eq!(hop, Some(NextHop::Arrived));
    }
}
