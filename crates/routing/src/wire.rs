//! Wire-format codec for the fault-tolerant routing label `L_route(t)`
//! (Eq. (8)); see [`ftl_labels::wire`] for the record layout.

use crate::ft_routing::RouteLabel;
use ftl_labels::wire::{LabelKind, WireError, WireLabel, WireReader, WireWriter};
use ftl_sketch::SketchVertexLabel;

impl WireLabel for RouteLabel {
    const KIND: LabelKind = LabelKind::Route;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_word(self.per_scale.len() as u64, 32);
        for (home, label) in &self.per_scale {
            w.write_word(*home as u64, 32);
            label.encode_payload(w);
        }
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        let scales = r.read_word(32)? as usize;
        let mut per_scale = Vec::new();
        for _ in 0..scales {
            let home = r.read_word(32)? as usize;
            per_scale.push((home, SketchVertexLabel::decode_payload(r)?));
        }
        Ok(RouteLabel { per_scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_routing::{FtRoutingScheme, RoutingParams};
    use ftl_graph::{generators, VertexId};
    use ftl_seeded::Seed;

    #[test]
    fn route_labels_roundtrip() {
        let g = generators::grid(3, 3);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(11));
        for v in 0..g.num_vertices() {
            let l = scheme.route_label(VertexId::new(v));
            let back = RouteLabel::from_wire(&l.to_wire()).unwrap();
            assert_eq!(back, l);
        }
    }

    #[test]
    fn truncated_route_label_rejected() {
        let g = generators::path(4);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(2));
        let bytes = scheme.route_label(VertexId::new(1)).to_wire();
        assert!(RouteLabel::from_wire(&bytes[..bytes.len() - 2]).is_err());
    }
}
