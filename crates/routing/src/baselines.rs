//! Baselines for Table 1.
//!
//! * [`route_full_information`] — an executable upper-envelope baseline:
//!   every vertex stores the entire graph and adaptively recomputes shortest
//!   paths around the faults it has learned about. Space is Θ(m log n) bits
//!   per vertex; the stretch is what adaptive full knowledge buys you.
//! * [`Table1Row`] / [`analytic_rows`] — the prior-work rows of Table 1
//!   (\[Raj12\], \[CLPR12\], \[Che11\]) evaluated analytically at the experiment's
//!   parameters (substitution S3 in DESIGN.md: those systems have no public
//!   implementations; the table compares formulas, so we evaluate the
//!   formulas).

use crate::network::{Cursor, RoutingOutcome};
use ftl_graph::shortest_path::{dijkstra, distance_avoiding};
use ftl_graph::traversal::forbidden_mask;
use ftl_graph::{EdgeId, Graph, VertexId};
use std::collections::HashSet;

/// Full-information adaptive routing: at every vertex, recompute the
/// shortest path to `t` avoiding all faults *learned so far* (faults are
/// learned by standing at an endpoint); follow it; repeat on discovery.
pub fn route_full_information(
    graph: &Graph,
    s: VertexId,
    t: VertexId,
    faults: &HashSet<EdgeId>,
) -> RoutingOutcome {
    let fault_vec: Vec<EdgeId> = faults.iter().copied().collect();
    let mask = forbidden_mask(graph, &fault_vec);
    let optimal = distance_avoiding(graph, s, t, &mask);
    let mut out = RoutingOutcome {
        delivered: false,
        weight: 0,
        hops: 0,
        optimal,
        phases: 0,
        iterations: 0,
        faults_discovered: 0,
        max_header_bits: 64, // (s, t) ids only
    };
    if s == t {
        out.delivered = true;
        return out;
    }
    let mut cursor = Cursor::new(graph, faults, s);
    let mut known = vec![false; graph.num_edges()];
    // Learn faults incident to the current position for free (link-layer
    // visibility), as is standard for adaptive baselines.
    let learn_local = |at: VertexId, known: &mut Vec<bool>, discovered: &mut usize| {
        for nb in graph.neighbors(at) {
            if faults.contains(&nb.edge) && !known[nb.edge.index()] {
                known[nb.edge.index()] = true;
                *discovered += 1;
            }
        }
    };
    learn_local(s, &mut known, &mut out.faults_discovered);
    // Each discovery triggers at most one recomputation; |F| + 1 attempts.
    for _ in 0..=faults.len() {
        out.iterations += 1;
        let dij = dijkstra(graph, cursor.at, &known);
        let Some(path) = dij.path_to(t) else {
            return out; // disconnected from t given current knowledge
        };
        let mut interrupted = false;
        for e in path {
            if cursor.probe(e) {
                known[e.index()] = true;
                out.faults_discovered += 1;
                interrupted = true;
                break;
            }
            cursor.cross(e);
            learn_local(cursor.at, &mut known, &mut out.faults_discovered);
            if cursor.at == t {
                out.weight = cursor.weight;
                out.hops = cursor.hops;
                out.delivered = true;
                return out;
            }
        }
        out.weight = cursor.weight;
        out.hops = cursor.hops;
        if !interrupted {
            break;
        }
    }
    out
}

/// Bits per vertex for the full-information baseline: the entire edge list.
pub fn full_information_table_bits(graph: &Graph) -> usize {
    graph.num_edges() * (2 * 32 + 64)
}

/// An analytic Table-1 row: scheme name, stretch, per-vertex or total table
/// bits (whichever the original paper bounds).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Scheme name as in Table 1.
    pub name: &'static str,
    /// Supported number of faults (`usize::MAX` = any `f`).
    pub max_faults: usize,
    /// Evaluated stretch bound for the given `(k, f)`.
    pub stretch: f64,
    /// Evaluated table size in bits.
    pub table_bits: f64,
    /// Whether `table_bits` is per-vertex (`true`) or total (`false`).
    pub per_vertex: bool,
}

/// Evaluates the prior-work rows of Table 1 at concrete parameters.
///
/// `n` = vertices, `k` = stretch parameter, `f` = faults, `max_deg` =
/// maximum degree, `w` = maximum edge weight.
pub fn analytic_rows(n: usize, k: u32, f: usize, max_deg: usize, w: u64) -> Vec<Table1Row> {
    let nf = n as f64;
    let kf = k as f64;
    let ff = f as f64;
    let lg = nf.log2().max(1.0);
    let lgnw = (nf * w as f64).log2().max(1.0);
    let n1k = nf.powf(1.0 / kf);
    vec![
        Table1Row {
            name: "Rajan [Raj12]",
            max_faults: 1,
            stretch: kf * kf,
            table_bits: (kf * max_deg as f64 + n1k) * lg,
            per_vertex: true,
        },
        Table1Row {
            name: "Chechik et al. [CLPR12]",
            max_faults: 2,
            stretch: kf,
            table_bits: nf.powf(1.0 + 1.0 / kf) * lgnw * lg,
            per_vertex: false,
        },
        Table1Row {
            name: "Chechik [Che11] (total)",
            max_faults: usize::MAX,
            stretch: ff * ff * (ff + lg * lg) * kf,
            table_bits: nf.powf(1.0 + 1.0 / kf) * lgnw * lg,
            per_vertex: false,
        },
        Table1Row {
            name: "Chechik [Che11] (per vertex)",
            max_faults: usize::MAX,
            stretch: ff * ff * (ff + lg * lg) * kf,
            table_bits: max_deg as f64 * n1k * lgnw * lg,
            per_vertex: true,
        },
        Table1Row {
            name: "This paper (per vertex)",
            max_faults: usize::MAX,
            stretch: ff * ff * kf,
            table_bits: ff.powi(3) * n1k * lgnw * lg,
            per_vertex: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn full_info_delivers_when_connected() {
        let g = generators::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = VertexId::new(rng.gen_range(0..16));
            let t = VertexId::new(rng.gen_range(0..16));
            let mut faults = HashSet::new();
            while faults.len() < 3 {
                faults.insert(EdgeId::new(rng.gen_range(0..g.num_edges())));
            }
            let out = route_full_information(&g, s, t, &faults);
            match out.optimal {
                Some(_) => assert!(out.delivered),
                None => assert!(!out.delivered),
            }
            if let (true, Some(opt)) = (out.delivered, out.optimal) {
                assert!(out.weight >= opt);
                // Full information with |F| faults costs at most
                // (2|F|+1) * opt-ish on these graphs; sanity-bound loosely.
                assert!(out.weight <= (4 * faults.len() as u64 + 4) * opt.max(1));
            }
        }
    }

    #[test]
    fn full_info_zero_faults_is_optimal() {
        let g = generators::grid(3, 5);
        let out = route_full_information(&g, VertexId::new(0), VertexId::new(14), &HashSet::new());
        assert!(out.delivered);
        assert_eq!(Some(out.weight), out.optimal);
        assert_eq!(out.stretch(), Some(1.0));
    }

    #[test]
    fn gadget_forces_backtracking() {
        let (g, s, t, last) = generators::lower_bound_gadget(2, 6);
        // Fail all but the last path's final edge.
        let faults: HashSet<EdgeId> = last[..2].iter().copied().collect();
        let out = route_full_information(&g, s, t, &faults);
        assert!(out.delivered);
        // It must have paid for at least one wrong path + return.
        assert!(out.weight > out.optimal.unwrap());
    }

    #[test]
    fn analytic_rows_shape() {
        let rows = analytic_rows(1000, 3, 4, 50, 8);
        assert_eq!(rows.len(), 5);
        let ours = rows.last().unwrap();
        let che11 = &rows[3];
        // Our stretch beats Che11's for the same f, k.
        assert!(ours.stretch < che11.stretch);
        // Our per-vertex table is independent of max degree; Che11's grows.
        let rows_hi_deg = analytic_rows(1000, 3, 4, 500, 8);
        assert_eq!(rows_hi_deg.last().unwrap().table_bits, ours.table_bits);
        assert!(rows_hi_deg[3].table_bits > che11.table_bits);
    }

    #[test]
    fn table_bits_positive() {
        let g = generators::grid(3, 3);
        assert!(full_information_table_bits(&g) > 0);
    }
}
