//! The Ω(f) stretch lower bound (Theorem 1.6, Figure 4).
//!
//! The gadget: `f + 1` internally disjoint `s`–`t` paths of length `L`; the
//! adversary fails the *last* edge of every path except one, chosen
//! uniformly at random. Any routing scheme oblivious to the faults must, in
//! expectation, fully traverse Ω(f) dead-end paths before finding the
//! surviving one — an expected stretch of Ω(f·L) / L = Ω(f) *regardless of
//! table size*.
//!
//! The experiment drives an idealized oblivious router (full topology
//! knowledge, tries paths in an arbitrary fixed order, which is without
//! loss of generality against a uniformly random survivor) and measures the
//! expected traversed length, reproducing the `Ω(fL)` calculation in the
//! proof of Theorem 1.6.

use ftl_graph::{EdgeId, Graph, VertexId};
use rand::Rng;
use std::collections::HashSet;

/// One trial outcome on the gadget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GadgetTrial {
    /// Total traversed length until delivery.
    pub traversed: u64,
    /// The optimal path length `L`.
    pub optimal: u64,
}

/// Runs the adversarial experiment: fail all but one uniformly random final
/// edge, route with the fixed-order oblivious strategy, and return the
/// traversal cost.
///
/// The strategy models *any* deterministic scheme (and, by symmetry, any
/// randomized one in expectation): walk path `p`; on discovering the dead
/// end at its final edge, walk back and try the next path.
pub fn run_gadget_trial(
    graph: &Graph,
    s: VertexId,
    t: VertexId,
    last_edges: &[EdgeId],
    len: u64,
    rng: &mut impl Rng,
) -> GadgetTrial {
    let paths = last_edges.len();
    let survivor = rng.gen_range(0..paths);
    let faults: HashSet<EdgeId> = last_edges
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != survivor)
        .map(|(_, &e)| e)
        .collect();
    let _ = (graph, s, t); // topology is implicit in the path lengths
    let mut traversed = 0u64;
    for p in 0..paths {
        if p == survivor {
            traversed += len;
            break;
        }
        // Walk to the dead end (len - 1 edges), discover the fault at the
        // final edge's near endpoint, walk back.
        traversed += 2 * (len - 1);
        let _ = &faults;
    }
    GadgetTrial {
        traversed,
        optimal: len,
    }
}

/// Expected traversal cost over `trials` random survivors.
pub fn expected_gadget_stretch(
    graph: &Graph,
    s: VertexId,
    t: VertexId,
    last_edges: &[EdgeId],
    len: u64,
    trials: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut total = 0.0;
    for _ in 0..trials {
        let tr = run_gadget_trial(graph, s, t, last_edges, len, rng);
        total += tr.traversed as f64 / tr.optimal as f64;
    }
    total / trials as f64
}

/// The closed-form expectation from the proof of Theorem 1.6: trying paths
/// in order against a uniform survivor costs
/// `Σ_{i=0}^{paths-1} P(survivor = i) · (i·2(L−1) + L)`.
pub fn closed_form_expected_stretch(paths: usize, len: u64) -> f64 {
    let l = len as f64;
    let mut exp = 0.0;
    for i in 0..paths {
        exp += (i as f64 * 2.0 * (l - 1.0) + l) / paths as f64;
    }
    exp / l
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expectation_matches_closed_form() {
        let f = 4;
        let len = 10u64;
        let (g, s, t, last) = generators::lower_bound_gadget(f, len as usize);
        let mut rng = StdRng::seed_from_u64(7);
        let emp = expected_gadget_stretch(&g, s, t, &last, len, 20_000, &mut rng);
        let cf = closed_form_expected_stretch(f + 1, len);
        assert!((emp - cf).abs() / cf < 0.05, "empirical {emp} vs {cf}");
    }

    #[test]
    fn stretch_grows_linearly_in_f() {
        let len = 16u64;
        let mut prev = 0.0;
        for f in [1usize, 2, 4, 8, 16] {
            let cf = closed_form_expected_stretch(f + 1, len);
            assert!(cf > prev, "stretch must grow with f");
            prev = cf;
            // Ω(f): at least f/2 for this gadget shape.
            assert!(cf >= f as f64 / 2.0, "f={f}: {cf}");
        }
    }

    #[test]
    fn single_path_no_overhead() {
        assert_eq!(closed_form_expected_stretch(1, 10), 1.0);
        let (g, s, t, last) = generators::lower_bound_gadget(0, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let tr = run_gadget_trial(&g, s, t, &last, 5, &mut rng);
        assert_eq!(tr.traversed, 5);
    }
}
