//! Message-level routing simulation plumbing: traversal accounting, fault
//! discovery on contact, header-size tracking.

use ftl_graph::{EdgeId, Graph, VertexId};
use std::collections::HashSet;

/// Outcome of routing one message.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingOutcome {
    /// Whether the message reached its destination.
    pub delivered: bool,
    /// Total weight of all traversed edges (including reversals and
    /// Γ-block detours).
    pub weight: u64,
    /// Total number of edge traversals.
    pub hops: usize,
    /// `dist_{G\F}(s, t)` (ground truth), if finite.
    pub optimal: Option<u64>,
    /// Distance-scale phases entered.
    pub phases: usize,
    /// Trial iterations across all phases (re-sends after discovering a
    /// fault).
    pub iterations: usize,
    /// Number of distinct faulty edges discovered en route.
    pub faults_discovered: usize,
    /// Largest message header observed, in bits.
    pub max_header_bits: usize,
}

impl RoutingOutcome {
    /// Multiplicative stretch `weight / optimal` (`None` when undelivered or
    /// when `s = t`).
    pub fn stretch(&self) -> Option<f64> {
        match (self.delivered, self.optimal) {
            (true, Some(opt)) if opt > 0 => Some(self.weight as f64 / opt as f64),
            (true, Some(0)) => Some(1.0),
            _ => None,
        }
    }
}

/// A moving message cursor over the **host** graph: every traversal is
/// charged, faulty edges refuse to be crossed, and the set of faults touched
/// (i.e. discovered by arriving at an endpoint) is tracked.
#[derive(Debug)]
pub struct Cursor<'a> {
    graph: &'a Graph,
    faults: &'a HashSet<EdgeId>,
    /// Current position.
    pub at: VertexId,
    /// Accumulated traversal weight.
    pub weight: u64,
    /// Accumulated hop count.
    pub hops: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at `s`.
    pub fn new(graph: &'a Graph, faults: &'a HashSet<EdgeId>, s: VertexId) -> Self {
        Cursor {
            graph,
            faults,
            at: s,
            weight: 0,
            hops: 0,
        }
    }

    /// Whether `e` is faulty; callable only because the cursor is *at* one
    /// of `e`'s endpoints (the discovery model of Section 2).
    ///
    /// # Panics
    ///
    /// Panics if the cursor is not at an endpoint of `e`.
    pub fn probe(&self, e: EdgeId) -> bool {
        assert!(
            self.graph.edge(e).is_incident_to(self.at),
            "probing an edge from afar"
        );
        self.faults.contains(&e)
    }

    /// Crosses edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is faulty or not incident to the current position —
    /// routing logic must `probe` first.
    pub fn cross(&mut self, e: EdgeId) {
        assert!(!self.faults.contains(&e), "crossing a faulty edge");
        let edge = self.graph.edge(e);
        self.at = edge.other(self.at);
        self.weight += edge.weight();
        self.hops += 1;
    }

    /// Round trip to a neighbor and back (the Γ-block label fetch of
    /// Claim 5.7): charges `2·w(e)` without moving.
    ///
    /// # Panics
    ///
    /// Panics if `e` is faulty or not incident.
    pub fn round_trip(&mut self, e: EdgeId) {
        assert!(!self.faults.contains(&e), "round trip over a faulty edge");
        let edge = self.graph.edge(e);
        assert!(edge.is_incident_to(self.at), "round trip from afar");
        self.weight += 2 * edge.weight();
        self.hops += 2;
    }

    /// Retreats along a recorded path (edge ids in forward order), charging
    /// every edge again; used when an attempt aborts and the message returns
    /// to the source.
    pub fn retreat(&mut self, forward_path: &[EdgeId], back_to: VertexId) {
        for &e in forward_path.iter().rev() {
            let edge = self.graph.edge(e);
            self.weight += edge.weight();
            self.hops += 1;
        }
        self.at = back_to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;

    #[test]
    fn cursor_crosses_and_charges() {
        let g = generators::path(4);
        let faults = HashSet::new();
        let mut c = Cursor::new(&g, &faults, VertexId::new(0));
        c.cross(EdgeId::new(0));
        c.cross(EdgeId::new(1));
        assert_eq!(c.at, VertexId::new(2));
        assert_eq!(c.weight, 2);
        assert_eq!(c.hops, 2);
    }

    #[test]
    fn probe_detects_faults_at_endpoint() {
        let g = generators::path(3);
        let faults: HashSet<EdgeId> = [EdgeId::new(1)].into_iter().collect();
        let c = Cursor::new(&g, &faults, VertexId::new(1));
        assert!(!c.probe(EdgeId::new(0)));
        assert!(c.probe(EdgeId::new(1)));
    }

    #[test]
    #[should_panic]
    fn probe_from_afar_panics() {
        let g = generators::path(4);
        let faults = HashSet::new();
        let c = Cursor::new(&g, &faults, VertexId::new(0));
        c.probe(EdgeId::new(2));
    }

    #[test]
    #[should_panic]
    fn crossing_fault_panics() {
        let g = generators::path(3);
        let faults: HashSet<EdgeId> = [EdgeId::new(0)].into_iter().collect();
        let mut c = Cursor::new(&g, &faults, VertexId::new(0));
        c.cross(EdgeId::new(0));
    }

    #[test]
    fn round_trip_charges_double() {
        let mut b = ftl_graph::GraphBuilder::new(2);
        b.add_edge(0, 1, 5);
        let g = b.build();
        let faults = HashSet::new();
        let mut c = Cursor::new(&g, &faults, VertexId::new(0));
        c.round_trip(EdgeId::new(0));
        assert_eq!(c.at, VertexId::new(0));
        assert_eq!(c.weight, 10);
        assert_eq!(c.hops, 2);
    }

    #[test]
    fn retreat_returns_and_charges() {
        let g = generators::path(4);
        let faults = HashSet::new();
        let mut c = Cursor::new(&g, &faults, VertexId::new(0));
        c.cross(EdgeId::new(0));
        c.cross(EdgeId::new(1));
        c.retreat(&[EdgeId::new(0), EdgeId::new(1)], VertexId::new(0));
        assert_eq!(c.at, VertexId::new(0));
        assert_eq!(c.weight, 4);
        assert_eq!(c.hops, 4);
    }

    #[test]
    fn stretch_computation() {
        let o = RoutingOutcome {
            delivered: true,
            weight: 10,
            hops: 10,
            optimal: Some(5),
            phases: 1,
            iterations: 1,
            faults_discovered: 0,
            max_header_bits: 0,
        };
        assert_eq!(o.stretch(), Some(2.0));
        let und = RoutingOutcome {
            delivered: false,
            optimal: None,
            ..o.clone()
        };
        assert_eq!(und.stretch(), None);
    }
}
