//! Forbidden-set routing: the faulty edges are **known** to the source
//! (Section 5.1, Theorem 5.3).
//!
//! The source holds the routing labels of the faults, scans the distance
//! scales upward through *its own* home trees (as in the Section 4 distance
//! decoder), finds the first scale where `s` and `t` are connected in
//! `G_{i,i*(s)} \ F`, extracts the succinct path, and routes straight along
//! it — no trial-and-error, stretch `(8k−2)(|F|+1)`.

use crate::ft_routing::{walk_clean_path, FtRoutingScheme};
use crate::network::{Cursor, RoutingOutcome};
use ftl_graph::shortest_path::distance_avoiding;
use ftl_graph::traversal::forbidden_mask;
use ftl_graph::{EdgeId, Graph, VertexId};
use ftl_sketch::SketchEdgeLabel;
use std::collections::HashSet;

impl FtRoutingScheme {
    /// The worst-case forbidden-set stretch `(8k−2)(f+1)` of Theorem 5.3.
    pub fn forbidden_set_stretch_bound(&self, num_faults: usize) -> u64 {
        (8 * self.params().k as u64 - 2) * (num_faults as u64 + 1)
    }

    /// Routes from `s` to `t` with the fault set known to `s` upfront
    /// (Theorem 5.3).
    pub fn route_forbidden_set(
        &self,
        graph: &Graph,
        s: VertexId,
        t: VertexId,
        faults: &HashSet<EdgeId>,
    ) -> RoutingOutcome {
        let fault_vec: Vec<EdgeId> = faults.iter().copied().collect();
        let mask = forbidden_mask(graph, &fault_vec);
        let optimal = distance_avoiding(graph, s, t, &mask);
        let mut out = RoutingOutcome {
            delivered: false,
            weight: 0,
            hops: 0,
            optimal,
            phases: 0,
            iterations: 0,
            faults_discovered: 0,
            max_header_bits: 0,
        };
        if s == t {
            out.delivered = true;
            return out;
        }
        let mut cursor = Cursor::new(graph, faults, s);
        for sc in &self.scales {
            // Forbidden-set mode scans the SOURCE's home trees (Section 4).
            let j = sc.cover.home[s.index()];
            let ct = &sc.cover.trees[j];
            let Some(local_t) = ct.sub.to_local_vertex(t) else {
                continue;
            };
            let local_s = ct.sub.to_local_vertex(s).expect("s in home tree");
            out.phases += 1;
            let rt = &sc.trees[j];
            // F_i = F ∩ G_{i,j}, with the first-copy labels (the source was
            // handed DistLabel(e) for every forbidden edge).
            let fl: Vec<SketchEdgeLabel> = fault_vec
                .iter()
                .filter_map(|&e| ct.sub.to_local_edge(e))
                .map(|le| rt.copies[0].edge_label(le))
                .collect();
            let s_label = rt.copies[0].vertex_label(local_s);
            let t_label = rt.copies[0].vertex_label(local_t);
            let decoded = ftl_sketch::decode(&s_label, &t_label, &fl);
            if !decoded.connected {
                continue;
            }
            out.iterations += 1;
            let path = decoded.path.expect("connected carries a path");
            out.max_header_bits = out.max_header_bits.max(
                path.segments.len() * 256 + fl.iter().map(SketchEdgeLabel::bits).sum::<usize>(),
            );
            // The path avoids every known fault, so the walk cannot hit one.
            if walk_clean_path(&mut cursor, ct, rt, local_s, &path) {
                out.delivered = true;
                out.weight = cursor.weight;
                out.hops = cursor.hops;
                return out;
            } else {
                // Decoder failure (probabilistic); try the next scale.
                continue;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_routing::RoutingParams;
    use ftl_graph::generators;
    use ftl_seeded::Seed;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_fault_set(g: &Graph, f: usize, rng: &mut StdRng) -> HashSet<EdgeId> {
        let mut faults = HashSet::new();
        while faults.len() < f.min(g.num_edges()) {
            faults.insert(EdgeId::new(rng.gen_range(0..g.num_edges())));
        }
        faults
    }

    fn check_scheme(g: &Graph, k: u32, f: usize, trials: usize, seed: u64) {
        let scheme = FtRoutingScheme::new(g, RoutingParams::new(k, f), Seed::new(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFFFF);
        for _ in 0..trials {
            let s = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let t = VertexId::new(rng.gen_range(0..g.num_vertices()));
            let faults = random_fault_set(g, f, &mut rng);
            let out = scheme.route_forbidden_set(g, s, t, &faults);
            match out.optimal {
                None => assert!(!out.delivered, "must not deliver across a cut"),
                Some(opt) => {
                    assert!(out.delivered, "s={s:?} t={t:?} faults={faults:?}");
                    let bound = scheme.forbidden_set_stretch_bound(faults.len());
                    assert!(
                        out.weight <= bound * opt.max(1),
                        "stretch: weight {} > {bound} * {opt}",
                        out.weight
                    );
                }
            }
        }
    }

    #[test]
    fn grid_forbidden_set_routing() {
        let g = generators::grid(4, 4);
        check_scheme(&g, 2, 2, 25, 11);
    }

    #[test]
    fn cycle_forbidden_set_routing() {
        let g = generators::cycle(12);
        check_scheme(&g, 2, 1, 25, 12);
    }

    #[test]
    fn weighted_graph_forbidden_set_routing() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::random_weighted_grid(3, 4, 4, &mut rng);
        check_scheme(&g, 2, 2, 20, 13);
    }

    #[test]
    fn random_graph_forbidden_set_routing() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::connected_random(24, 0.1, 1, &mut rng);
        check_scheme(&g, 3, 2, 20, 14);
    }

    #[test]
    fn no_faults_direct_delivery() {
        let g = generators::grid(3, 3);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(3));
        let out =
            scheme.route_forbidden_set(&g, VertexId::new(0), VertexId::new(8), &HashSet::new());
        assert!(out.delivered);
        assert!(out.stretch().unwrap() <= scheme.forbidden_set_stretch_bound(0) as f64);
    }

    #[test]
    fn self_route_is_free() {
        let g = generators::path(4);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, 1), Seed::new(4));
        let out =
            scheme.route_forbidden_set(&g, VertexId::new(2), VertexId::new(2), &HashSet::new());
        assert!(out.delivered);
        assert_eq!(out.weight, 0);
    }
}
