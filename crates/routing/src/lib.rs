//! Compact **forbidden-set** and **fault-tolerant routing** schemes
//! (Section 5; Theorems 5.3, 5.5, 5.8 and the lower bound Theorem 1.6).
//!
//! * [`tree_routing`] — interval routing on trees with heavy-light
//!   decomposition (\[TZ01\], Fact 5.1), extended with the Γ-block port
//!   information of Claim 5.6 that load-balances edge-label storage.
//! * [`forbidden_set`] — routing when the faulty edges are known to the
//!   source (Theorem 5.3): stretch `(8k−2)(|F|+1)`.
//! * [`ft_routing`] — routing when faults are *unknown* and discovered on
//!   contact (Theorems 5.5/5.8): phases over distance scales × at most
//!   `|F|+1` trial iterations per phase, `f+1` independent sketch copies,
//!   stretch `32k(|F|+1)²`, per-vertex tables `Õ(f³·n^{1/k})`.
//! * [`baselines`] — the executable full-information baseline and analytic
//!   evaluators for the prior-work rows of Table 1.
//! * [`lower_bound`] — the Ω(f) stretch lower-bound gadget experiment
//!   (Theorem 1.6 / Figure 4).
//!
//! All routing here is **simulated at message granularity**: a cursor moves
//! across real graph edges, faulty edges are discovered only upon reaching
//! an endpoint, every traversed edge weight is charged (including reversals
//! and Γ-block detours), and header sizes are accounted in bits.
//!
//! One deliberate modeling choice (documented in DESIGN.md): port numbers
//! are local to each cover-tree cluster (the induced subgraph's adjacency
//! order) rather than global. This is a port *renaming* per cluster and
//! changes no size bound by more than the `O(log n)` bits ports already
//! cost.
//!
//! # Features
//!
//! * `parallel` (default) — preprocess cover trees (routing tables plus
//!   `f + 1` sketch copies each) one tree per core via [`ftl_par`]; disable
//!   (`--no-default-features`) for a strictly single-threaded build.
//!   Results are identical either way.
//!
//! See `README.md` at the repo root for the crate map and for which
//! experiments (`EXPERIMENTS.md`) exercise the routing schemes.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod forbidden_set;
pub mod ft_routing;
pub mod lower_bound;
pub mod network;
pub mod tree_routing;
pub mod wire;

pub use ft_routing::{FtRoutingScheme, RoutingParams};
pub use network::RoutingOutcome;
pub use tree_routing::{LabelCodec, NextHop, TreeRouting};
