//! Property tests: wire round-trip (`encode → decode ≡ original`) for the
//! fault-tolerant routing label.

use ftl_gf2::BitVec;
use ftl_labels::{AncestryLabel, WireLabel};
use ftl_routing::ft_routing::RouteLabel;
use ftl_sketch::SketchVertexLabel;
use proptest::prelude::*;

proptest! {
    #[test]
    fn route_label_roundtrip(
        scales in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(),
             proptest::collection::vec(any::<bool>(), 0..25)),
            0..6,
        ),
    ) {
        let l = RouteLabel {
            per_scale: scales
                .iter()
                .map(|(home, id, pre, post, aux)| {
                    (
                        *home as usize,
                        SketchVertexLabel {
                            id: *id,
                            anc: AncestryLabel { pre: *pre, post: *post },
                            aux: BitVec::from_bits(aux),
                        },
                    )
                })
                .collect(),
        };
        let back = RouteLabel::from_wire(&l.to_wire()).unwrap();
        prop_assert_eq!(back, l);
    }

    /// Single-bit header corruption is always rejected.
    #[test]
    fn corrupted_header_rejected(id in any::<u32>(), bit in 0usize..64) {
        let l = RouteLabel {
            per_scale: vec![(0, SketchVertexLabel {
                id,
                anc: AncestryLabel { pre: 0, post: 1 },
                aux: BitVec::zeros(3),
            })],
        };
        let mut bytes = l.to_wire();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(RouteLabel::from_wire(&bytes).is_err());
    }
}
