//! Property tests: wire round-trip (`encode → decode ≡ original`) for the
//! fault-tolerant routing label.

use ftl_gf2::BitVec;
use ftl_labels::{AncestryLabel, WireLabel};
use ftl_routing::ft_routing::RouteLabel;
use ftl_sketch::SketchVertexLabel;
use proptest::prelude::*;

proptest! {
    #[test]
    fn route_label_roundtrip(
        scales in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(),
             proptest::collection::vec(any::<bool>(), 0..25)),
            0..6,
        ),
    ) {
        let l = RouteLabel {
            per_scale: scales
                .iter()
                .map(|(home, id, pre, post, aux)| {
                    (
                        *home as usize,
                        SketchVertexLabel {
                            id: *id,
                            anc: AncestryLabel { pre: *pre, post: *post },
                            aux: BitVec::from_bits(aux),
                        },
                    )
                })
                .collect(),
        };
        let back = RouteLabel::from_wire(&l.to_wire()).unwrap();
        prop_assert_eq!(back, l);
    }

    /// Single-bit header corruption is always rejected.
    #[test]
    fn corrupted_header_rejected(id in any::<u32>(), bit in 0usize..64) {
        let l = RouteLabel {
            per_scale: vec![(0, SketchVertexLabel {
                id,
                anc: AncestryLabel { pre: 0, post: 1 },
                aux: BitVec::zeros(3),
            })],
        };
        let mut bytes = l.to_wire();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(RouteLabel::from_wire(&bytes).is_err());
    }

    /// Truncation anywhere, an inflated declared bit-length, and arbitrary
    /// multi-byte corruption are all survived: decoding errs or returns a
    /// label, and never panics.
    #[test]
    fn corruption_battery_never_panics(
        id in any::<u32>(),
        cut in 0usize..64,
        extra in 1u32..100_000,
        hits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..12),
    ) {
        let l = RouteLabel {
            per_scale: vec![(1, SketchVertexLabel {
                id,
                anc: AncestryLabel { pre: 3, post: 4 },
                aux: BitVec::zeros(5),
            })],
        };
        let bytes = l.to_wire();
        prop_assert!(RouteLabel::from_wire(&bytes[..cut.min(bytes.len() - 1)]).is_err());
        let mut lying = bytes.clone();
        let declared = u32::from_le_bytes([lying[4], lying[5], lying[6], lying[7]]);
        lying[4..8].copy_from_slice(&declared.saturating_add(extra).to_le_bytes());
        prop_assert!(RouteLabel::from_wire(&lying).is_err());
        let mut smeared = bytes;
        for &(pos, val) in &hits {
            let i = pos as usize % smeared.len();
            smeared[i] = val;
        }
        let _ = RouteLabel::from_wire(&smeared);
    }
}
