//! Property-based tests for the routing schemes.

use ftl_graph::{EdgeId, Graph, GraphBuilder, SpanningTree, VertexId};
use ftl_routing::baselines::route_full_information;
use ftl_routing::{FtRoutingScheme, NextHop, RoutingParams, TreeRouting};
use ftl_seeded::Seed;
use proptest::prelude::*;
use std::collections::HashSet;

fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (
        2usize..max_n,
        proptest::collection::vec((0usize..32, 0usize..32), 0..40),
    )
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            for i in 1..n {
                b.add_unit_edge(i / 2, i);
            }
            for (u, v) in extra {
                if u % n != v % n {
                    b.add_unit_edge(u % n, v % n);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tree routing always delivers along the exact tree path.
    #[test]
    fn tree_routing_always_delivers(g in graph_strategy(32), f in 0usize..4,
                                    a in 0usize..32, b in 0usize..32) {
        let n = g.num_vertices();
        let (s, t) = (VertexId::new(a % n), VertexId::new(b % n));
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, f);
        let target = tr.label(t).clone();
        let mut cur = s;
        let mut traversed = Vec::new();
        for _ in 0..2 * n + 2 {
            match TreeRouting::next_hop(tr.table(cur), &target).unwrap() {
                NextHop::Arrived => break,
                NextHop::Port(p) => {
                    let nb = g.port(cur, p as usize).unwrap();
                    traversed.push(nb.edge);
                    cur = nb.vertex;
                }
            }
        }
        prop_assert_eq!(cur, t);
        prop_assert_eq!(traversed, tree.tree_path(s, t));
    }

    /// Γ blocks always contain the child endpoint and at least f+1 members
    /// at high-degree vertices.
    #[test]
    fn gamma_block_invariants(g in graph_strategy(32), f in 0usize..4) {
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let tr = TreeRouting::new(&g, &tree, f);
        for (id, _) in g.edge_ids() {
            if !tree.is_tree_edge(id) {
                continue;
            }
            let e = g.edge(id);
            let child = if tree.parent(e.u()).map(|(p, _)| p) == Some(e.v()) {
                e.u()
            } else {
                e.v()
            };
            let parent = e.other(child);
            let members = tr.gamma_members(id);
            prop_assert!(members.contains(&child));
            if tree.children(parent).len() > f + 1 {
                prop_assert!(members.len() > f);
            } else {
                prop_assert!(members.contains(&parent));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end FT routing (unknown faults): delivery iff connected, and
    /// the Theorem 5.8 stretch bound holds.
    #[test]
    fn ft_routing_delivery_and_stretch(
        g in graph_strategy(16),
        fpicks in proptest::collection::vec(0usize..500, 0..3),
        a in 0usize..16,
        b in 0usize..16,
        seed in any::<u64>(),
    ) {
        let n = g.num_vertices();
        let (s, t) = (VertexId::new(a % n), VertexId::new(b % n));
        let mut faults = HashSet::new();
        for p in &fpicks {
            faults.insert(EdgeId::new(p % g.num_edges()));
        }
        let f = faults.len().max(1);
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, f), Seed::new(seed));
        let out = scheme.route(&g, s, t, &faults);
        match out.optimal {
            None => prop_assert!(!out.delivered),
            Some(opt) => {
                prop_assert!(out.delivered);
                prop_assert!(out.weight <= scheme.stretch_bound(faults.len()) * opt.max(1));
                // The full-information baseline is never worse than the
                // compact scheme's bound either (sanity of the simulator).
                let base = route_full_information(&g, s, t, &faults);
                prop_assert!(base.delivered);
                prop_assert!(base.weight >= opt);
            }
        }
    }
}
