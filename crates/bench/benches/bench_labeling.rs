//! Criterion: labeling time of both connectivity schemes (Theorems 3.6/3.7
//! claim near-linear O~(m) labeling time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftl_cycle_space::CycleSpaceScheme;
use ftl_graph::generators;
use ftl_seeded::Seed;
use ftl_sketch::{SketchParams, SketchScheme};

fn bench_labeling(c: &mut Criterion) {
    let mut rng = ftl_bench::rng(1);
    let mut group = c.benchmark_group("labeling");
    for n in [64usize, 256, 1024] {
        let g = generators::connected_random(n, 8.0 / n as f64, 1, &mut rng);
        group.bench_with_input(BenchmarkId::new("cycle_space_f16", n), &g, |b, g| {
            b.iter(|| CycleSpaceScheme::label(g, 16, Seed::new(1)).unwrap())
        });
        let params = SketchParams::for_graph(&g).with_units(8);
        group.bench_with_input(BenchmarkId::new("sketch_u8", n), &g, |b, g| {
            b.iter(|| SketchScheme::label(g, &params, Seed::new(1)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_labeling
}
criterion_main!(benches);
