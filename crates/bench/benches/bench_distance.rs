//! Criterion: FT approximate distance queries (Theorem 1.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftl_core::distance::{DistanceLabeling, DistanceParams};
use ftl_graph::generators;
use ftl_seeded::Seed;

fn bench_distance(c: &mut Criterion) {
    let mut rng = ftl_bench::rng(3);
    let g = generators::random_weighted_grid(6, 6, 8, &mut rng);
    let mut group = c.benchmark_group("distance_query");
    for k in [2u32, 3] {
        let dl = DistanceLabeling::new(&g, DistanceParams::new(k), Seed::new(4));
        for f in [1usize, 3] {
            let faults = ftl_bench::sample_faults(&g, f, &mut rng);
            let s = ftl_bench::sample_vertex(&g, &mut rng);
            let t = ftl_bench::sample_vertex(&g, &mut rng);
            group.bench_function(BenchmarkId::new(format!("k{k}"), f), |b| {
                b.iter(|| dl.query(s, t, &faults))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_distance
}
criterion_main!(benches);
