//! Criterion: substrate microbenchmarks — component tree (Claim 3.14),
//! GF(2) solving (Lemma 3.5), sketch recovery (Lemma 3.13), tree covers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftl_gf2::BitVec;
use ftl_graph::{generators, SpanningTree, VertexId};
use ftl_labels::{AncestryLabel, ComponentTree, FaultTreeEdge};
use ftl_tree_cover::TreeCover;

fn bench_substrates(c: &mut Criterion) {
    let mut rng = ftl_bench::rng(5);
    // Component tree build.
    let g = generators::random_tree(4096, &mut rng);
    let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
    let labels: Vec<AncestryLabel> = (0..4096)
        .map(|i| AncestryLabel::of(&tree, VertexId::new(i)))
        .collect();
    let mut group = c.benchmark_group("substrates");
    for f in [16usize, 256] {
        let faults = ftl_bench::sample_faults(&g, f, &mut rng);
        let fte: Vec<FaultTreeEdge> = faults
            .iter()
            .map(|&e| {
                let ed = g.edge(e);
                FaultTreeEdge::from_endpoints(labels[ed.u().index()], labels[ed.v().index()])
                    .unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("component_tree", f), &fte, |b, fte| {
            b.iter(|| ComponentTree::new(fte, tree.max_time()))
        });
    }
    // GF(2) solve.
    for f in [16usize, 64] {
        let dim = f + 40;
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cols: Vec<BitVec> = (0..f)
            .map(|_| {
                let mut v = BitVec::zeros(dim);
                v.randomize(&mut next);
                v
            })
            .collect();
        let mut tgt = BitVec::zeros(dim);
        tgt.randomize(&mut next);
        group.bench_with_input(BenchmarkId::new("gf2_solve", f), &cols, |b, cols| {
            b.iter(|| ftl_gf2::solve(cols, &tgt))
        });
    }
    // Tree cover construction.
    let grid = generators::grid(8, 8);
    for k in [2u32, 3] {
        group.bench_with_input(BenchmarkId::new("tree_cover_k", k), &grid, |b, g| {
            b.iter(|| TreeCover::build(g, &[], 2, k))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_substrates
}
criterion_main!(benches);
