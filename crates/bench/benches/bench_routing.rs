//! Criterion: end-to-end FT routing (Theorem 5.8) and the forbidden-set
//! variant (Theorem 5.3) on a grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftl_graph::generators;
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;
use std::collections::HashSet;

fn bench_routing(c: &mut Criterion) {
    let mut rng = ftl_bench::rng(4);
    let g = generators::grid(5, 5);
    let mut group = c.benchmark_group("routing");
    for f in [1usize, 2] {
        let scheme = FtRoutingScheme::new(&g, RoutingParams::new(2, f), Seed::new(5));
        let faults: HashSet<_> = ftl_bench::sample_faults(&g, f, &mut rng)
            .into_iter()
            .collect();
        let s = ftl_bench::sample_vertex(&g, &mut rng);
        let t = ftl_bench::sample_vertex(&g, &mut rng);
        group.bench_function(BenchmarkId::new("ft_unknown_faults", f), |b| {
            b.iter(|| scheme.route(&g, s, t, &faults))
        });
        group.bench_function(BenchmarkId::new("forbidden_set", f), |b| {
            b.iter(|| scheme.route_forbidden_set(&g, s, t, &faults))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing
}
criterion_main!(benches);
