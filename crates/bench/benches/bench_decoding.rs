//! Criterion: decode time of both schemes as a function of f
//! (Thm 3.6: poly(f, log n); Thm 3.7: O~(f)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftl_cycle_space::CycleSpaceScheme;
use ftl_graph::generators;
use ftl_seeded::Seed;
use ftl_sketch::{SketchParams, SketchScheme};

fn bench_decoding(c: &mut Criterion) {
    let mut rng = ftl_bench::rng(2);
    let g = generators::connected_random(512, 8.0 / 512.0, 1, &mut rng);
    let cs = CycleSpaceScheme::label(&g, 64, Seed::new(3)).unwrap();
    let sk = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(3)).unwrap();
    let mut group = c.benchmark_group("decoding");
    for f in [4usize, 16, 64] {
        let faults = ftl_bench::sample_faults(&g, f, &mut rng);
        let s = ftl_bench::sample_vertex(&g, &mut rng);
        let t = ftl_bench::sample_vertex(&g, &mut rng);
        let csf: Vec<_> = faults.iter().map(|&e| cs.edge_label(e)).collect();
        let (csa, csb) = (cs.vertex_label(s), cs.vertex_label(t));
        group.bench_with_input(BenchmarkId::new("cycle_space", f), &csf, |b, fl| {
            b.iter(|| ftl_cycle_space::decode(&csa, &csb, fl))
        });
        let skf: Vec<_> = faults.iter().map(|&e| sk.edge_label(e)).collect();
        let (ska, skb) = (sk.vertex_label(s), sk.vertex_label(t));
        group.bench_with_input(BenchmarkId::new("sketch", f), &skf, |b, fl| {
            b.iter(|| ftl_sketch::decode(&ska, &skb, fl))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_decoding
}
criterion_main!(benches);
