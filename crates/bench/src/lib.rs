//! Shared plumbing for the experiment harness: workload construction, fault
//! sampling, and markdown table emission.
//!
//! Each experiment of `EXPERIMENTS.md` (E1–E11) is a binary in `src/bin/`;
//! run e.g. `cargo run -p ftl-bench --bin table1 --release`.
//!
//! The repo-level view of what these binaries measure — and the
//! PR-by-PR trajectory of their headline numbers — lives in `README.md`
//! (benchmark table) and the committed `BENCH_pr*.json` reports.

#![forbid(unsafe_code)]

use ftl_graph::{generators, EdgeId, Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named workload graph.
pub struct Workload {
    /// Short name used in result tables.
    pub name: String,
    /// The graph.
    pub graph: Graph,
}

/// The standard graph suite used across experiments.
pub fn standard_suite(rng: &mut StdRng) -> Vec<Workload> {
    vec![
        Workload {
            name: "grid-8x8".into(),
            graph: generators::grid(8, 8),
        },
        Workload {
            name: "er-64".into(),
            graph: generators::connected_random(64, 0.05, 1, rng),
        },
        Workload {
            name: "wgrid-6x6".into(),
            graph: generators::random_weighted_grid(6, 6, 8, rng),
        },
        Workload {
            name: "cycle-64".into(),
            graph: generators::cycle(64),
        },
    ]
}

/// The 1k-node scale suite (PR 5): the DRFE-R-style topologies at the
/// sizes its scalability tables use — a 32×32 grid, a sparse
/// Erdős–Rényi graph, and a Barabási–Albert preferential-attachment
/// graph, all on 1024 vertices.
pub fn scale_suite(rng: &mut StdRng) -> Vec<Workload> {
    vec![
        Workload {
            name: "grid-32x32".into(),
            graph: generators::grid(32, 32),
        },
        Workload {
            name: "er-1024".into(),
            graph: generators::connected_random(1024, 8.0 / 1024.0, 1, rng),
        },
        Workload {
            name: "ba-1024".into(),
            graph: generators::barabasi_albert(1024, 3, rng),
        },
    ]
}

/// Samples `f` distinct random faulty edges.
///
/// Distinctness is tracked through a `HashSet`, so sampling is expected
/// `O(f)` rather than the `O(f·n)` of a linear rescan per draw.
pub fn sample_faults(g: &Graph, f: usize, rng: &mut StdRng) -> Vec<EdgeId> {
    let want = f.min(g.num_edges());
    let mut seen = std::collections::HashSet::with_capacity(want);
    let mut faults = Vec::with_capacity(want);
    while faults.len() < want {
        let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
        if seen.insert(e) {
            faults.push(e);
        }
    }
    faults
}

/// Samples a random vertex.
pub fn sample_vertex(g: &Graph, rng: &mut StdRng) -> VertexId {
    VertexId::new(rng.gen_range(0..g.num_vertices()))
}

/// Deterministic experiment RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Prints a markdown table: header row then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float compactly.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats bits as KiB when large.
pub fn fmt_bits(bits: usize) -> String {
    if bits >= 8 * 1024 {
        format!("{:.1} KiB", bits as f64 / 8.0 / 1024.0)
    } else {
        format!("{bits} b")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_nonempty_and_connected() {
        let mut r = rng(1);
        for w in standard_suite(&mut r) {
            assert!(ftl_graph::traversal::is_connected(&w.graph), "{}", w.name);
        }
    }

    #[test]
    fn scale_suite_is_1k_and_connected() {
        let mut r = rng(1);
        for w in scale_suite(&mut r) {
            assert_eq!(w.graph.num_vertices(), 1024, "{}", w.name);
            assert!(ftl_graph::traversal::is_connected(&w.graph), "{}", w.name);
        }
    }

    #[test]
    fn fault_sampling_distinct() {
        let mut r = rng(2);
        let g = generators::grid(4, 4);
        let f = sample_faults(&g, 5, &mut r);
        let set: std::collections::HashSet<_> = f.iter().collect();
        assert_eq!(set.len(), f.len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert!(fmt_bits(100).ends_with(" b"));
        assert!(fmt_bits(100_000).ends_with(" KiB"));
    }
}
