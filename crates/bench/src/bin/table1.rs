//! E1 / Table 1: FT routing scheme comparison — our FT scheme (Thm 5.8),
//! our forbidden-set scheme (Thm 5.3), the executable full-information
//! baseline, and the analytic rows of the prior schemes.

use ftl_graph::generators;
use ftl_routing::baselines::{analytic_rows, full_information_table_bits, route_full_information};
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;

fn main() {
    let mut rng = ftl_bench::rng(0xE1);
    let g = generators::connected_random(60, 0.06, 1, &mut rng);
    let (k, f) = (2u32, 2usize);
    println!(
        "workload: er-60 (n = {}, m = {}, max deg = {}), k = {k}, f = {f}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    let scheme = FtRoutingScheme::new(&g, RoutingParams::new(k, f), Seed::new(2024));

    // Measured rows.
    let trials = 40;
    let mut ours = (0usize, 0.0f64, 0.0f64); // delivered, sum, worst
    let mut forb = (0usize, 0.0f64, 0.0f64);
    let mut base = (0usize, 0.0f64, 0.0f64);
    for _ in 0..trials {
        let faults: std::collections::HashSet<_> = ftl_bench::sample_faults(&g, f, &mut rng)
            .into_iter()
            .collect();
        let s = ftl_bench::sample_vertex(&g, &mut rng);
        let t = ftl_bench::sample_vertex(&g, &mut rng);
        for (out, acc) in [
            (scheme.route(&g, s, t, &faults), &mut ours),
            (scheme.route_forbidden_set(&g, s, t, &faults), &mut forb),
            (route_full_information(&g, s, t, &faults), &mut base),
        ] {
            if let Some(st) = out.stretch() {
                acc.0 += 1;
                acc.1 += st;
                acc.2 = acc.2.max(st);
            }
        }
    }
    let mut rows = vec![
        vec![
            "This paper, FT (Thm 5.8) [measured]".to_string(),
            format!("{:.2} mean / {:.2} worst", ours.1 / ours.0 as f64, ours.2),
            format!(
                "{} per vertex",
                ftl_bench::fmt_bits(scheme.max_table_bits(&g))
            ),
        ],
        vec![
            "This paper, forbidden-set (Thm 5.3) [measured]".to_string(),
            format!("{:.2} mean / {:.2} worst", forb.1 / forb.0 as f64, forb.2),
            format!(
                "{} per vertex",
                ftl_bench::fmt_bits(scheme.max_table_bits(&g))
            ),
        ],
        vec![
            "Full information [measured baseline]".to_string(),
            format!("{:.2} mean / {:.2} worst", base.1 / base.0 as f64, base.2),
            format!(
                "{} per vertex",
                ftl_bench::fmt_bits(full_information_table_bits(&g))
            ),
        ],
    ];
    for r in analytic_rows(g.num_vertices(), k, f, g.max_degree(), g.max_weight()) {
        rows.push(vec![
            format!("{} [analytic formula]", r.name),
            format!("O({:.0})", r.stretch),
            format!(
                "O({:.0}) bits {}",
                r.table_bits,
                if r.per_vertex { "per vertex" } else { "total" }
            ),
        ]);
    }
    ftl_bench::print_table(
        "E1 / Table 1: FT routing comparison",
        &["scheme", "stretch", "table size"],
        &rows,
    );
    println!("\nShape to check against the paper's Table 1: our per-vertex tables do not");
    println!("scale with deg(v) (unlike [Che11] per-vertex), and our stretch bound");
    println!("O(|F|^2 k) beats [Che11]'s O(|F|^2(|F| + log^2 n)k).");
}
