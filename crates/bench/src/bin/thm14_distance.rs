//! E8 / Theorem 1.4: FT approximate distance labels — measured stretch vs
//! the (8k-2)(|F|+1) guarantee, and label-size scaling in k.

use ftl_core::distance::{DistanceLabeling, DistanceParams};
use ftl_graph::generators;
use ftl_graph::shortest_path::distance_avoiding;
use ftl_graph::traversal::forbidden_mask;
use ftl_seeded::Seed;

fn main() {
    let mut rng = ftl_bench::rng(0xE8);
    let g = generators::random_weighted_grid(6, 6, 8, &mut rng);
    let mut rows = Vec::new();
    for k in [1u32, 2, 3, 4] {
        let dl = DistanceLabeling::new(&g, DistanceParams::new(k), Seed::new(k as u64));
        for f in [0usize, 1, 2, 3] {
            let trials = 150;
            let mut worst: f64 = 1.0;
            let mut sum = 0.0;
            let mut cnt = 0usize;
            let mut mism = 0usize;
            for _ in 0..trials {
                let faults = ftl_bench::sample_faults(&g, f, &mut rng);
                let s = ftl_bench::sample_vertex(&g, &mut rng);
                let t = ftl_bench::sample_vertex(&g, &mut rng);
                let est = dl.query(s, t, &faults);
                let truth = distance_avoiding(&g, s, t, &forbidden_mask(&g, &faults));
                match (est, truth) {
                    (Some(e), Some(d)) if d > 0 => {
                        let r = e.distance as f64 / d as f64;
                        worst = worst.max(r);
                        sum += r;
                        cnt += 1;
                    }
                    (Some(_), Some(_)) | (None, None) => {}
                    _ => mism += 1,
                }
            }
            rows.push(vec![
                k.to_string(),
                f.to_string(),
                ftl_bench::f2(sum / cnt.max(1) as f64),
                ftl_bench::f2(worst),
                dl.stretch_bound(f).to_string(),
                ftl_bench::fmt_bits(dl.max_vertex_label_bits(&g)),
                mism.to_string(),
            ]);
        }
    }
    ftl_bench::print_table(
        "E8 / Theorem 1.4: distance labels on wgrid-6x6 (paper bound (8k-2)(|F|+1))",
        &[
            "k",
            "f",
            "mean stretch",
            "worst stretch",
            "paper bound",
            "max vertex label",
            "mismatches",
        ],
        &rows,
    );
}
