//! PR 5 benchmark: the zero-decode serving path, the multi-worker engine,
//! and the 1k-node scale-up — written to `BENCH_pr5.json` at the repo
//! root.
//!
//! Sections:
//!
//! 1. **Labeling scale-up** — `SketchScheme::label` / `CycleSpaceScheme::
//!    label` wall times on the 1k-node suite (plus er-4096). The PR 4
//!    baseline for sketch labeling at n = 1024 on the 1-core bench
//!    container was ~15 ms; the JSON records the measured speedup against
//!    it.
//! 2. **Zero-decode serving** — the PR 4 steady-traffic scenario run
//!    twice on identical traffic: once with the decoded sidecar disabled
//!    (the PR 4 wire-decoding path) and once enabled. The ratio is the
//!    tentpole number.
//! 3. **Batched vs naive** on the n ≥ 1024 workloads (cache disabled, so
//!    it isolates elimination amortisation).
//! 4. **Worker scaling** — the same steady traffic through `ParEngine` at
//!    1, 2, …, `cores` workers over one shared store, with per-worker
//!    rows. Every parallel run is differentially verified against the
//!    serial engine on explicit random batches first. On a 1-core
//!    container serial ≈ parallel is the expectation and is asserted
//!    non-regressing, not skipped.
//!
//! Run with: `cargo run -p ftl-bench --bin bench_pr5 --release`

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{
    run_scenario, BatchRequest, ConnQuery, Engine, EngineConfig, ParEngine, ScenarioConfig,
};
use ftl_graph::{generators, Graph};
use ftl_seeded::Seed;
use ftl_sketch::{SketchParams, SketchScheme};
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall-clock milliseconds per call over `samples` runs. One
/// untimed warm-up first (so cold-allocator page faults don't skew the
/// median of millisecond-scale calls), and the result is dropped
/// **outside** the timed region — the metric is construction time, not
/// construction plus teardown.
fn measure_ms<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed().as_nanos() as f64 / 1e6;
            drop(std::hint::black_box(out));
            elapsed
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Median wall-clock nanoseconds per call, criterion-style.
fn measure_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().as_nanos().max(1);
    let iters = ((20_000_000u128 / once).clamp(1, 1_000_000)) as u64;
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// The PR 4 sketch-labeling baseline at n = 1024 on the 1-core bench
/// container (`bench_labeling`, `er-1024`, 8 units): ~15 ms.
const PR4_SKETCH_1024_MS: f64 = 15.2;

fn steady_cfg() -> ScenarioConfig {
    // Identical shape to BENCH_pr4's steady-traffic scenario.
    let mut steady = ScenarioConfig::new("steady-traffic", 16);
    steady.rounds = 6;
    steady.fault_sets_per_round = 1;
    steady.queries_per_fault_set = 256;
    steady.churn = 0.0;
    steady.verify = true;
    steady
}

/// Random batches for the explicit parallel-vs-serial differential check.
fn differential_batches(g: &Graph, rng: &mut rand::rngs::StdRng) -> Vec<BatchRequest> {
    use rand::Rng;
    (0..4)
        .map(|_| {
            let fault_sets: Vec<Vec<ftl_graph::EdgeId>> = (0..3)
                .map(|_| ftl_bench::sample_faults(g, 16, rng))
                .collect();
            let queries: Vec<ConnQuery> = (0..256)
                .map(|_| ConnQuery {
                    s: ftl_bench::sample_vertex(g, rng),
                    t: ftl_bench::sample_vertex(g, rng),
                    fault_set: rng.gen_range(0..fault_sets.len()),
                })
                .collect();
            BatchRequest {
                fault_sets,
                queries,
            }
        })
        .collect()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut rng = ftl_bench::rng(5);
    let mut human: Vec<String> = Vec::new();

    // ------------------------------------------------------------------
    // 1. Labeling scale-up.
    // ------------------------------------------------------------------
    let mut labeling_rows: Vec<String> = Vec::new();
    let mut sketch_1024_ms = f64::NAN;
    {
        let mut workloads = ftl_bench::scale_suite(&mut rng);
        workloads.push(ftl_bench::Workload {
            name: "er-4096".into(),
            graph: generators::connected_random(4096, 8.0 / 4096.0, 1, &mut rng),
        });
        for w in &workloads {
            eprintln!("[bench_pr5] labeling: {}", w.name);
            let params = SketchParams::for_graph(&w.graph).with_units(8);
            let sketch_ms = measure_ms(5, || {
                SketchScheme::label(&w.graph, &params, Seed::new(1)).expect("connected")
            });
            let cyc_ms = measure_ms(5, || {
                CycleSpaceScheme::label(&w.graph, 16, Seed::new(1)).expect("connected")
            });
            if w.name == "er-1024" {
                sketch_1024_ms = sketch_ms;
            }
            labeling_rows.push(format!(
                "{{\"workload\": \"{}\", \"n\": {}, \"m\": {}, \"sketch_label_ms\": {sketch_ms:.2}, \"cycle_space_label_ms\": {cyc_ms:.2}}}",
                w.name,
                w.graph.num_vertices(),
                w.graph.num_edges()
            ));
            human.push(format!(
                "labeling {:>10}: sketch {sketch_ms:>7.2} ms  cycle-space {cyc_ms:>6.2} ms",
                w.name
            ));
        }
    }
    let sketch_speedup = PR4_SKETCH_1024_MS / sketch_1024_ms;
    human.push(format!(
        "sketch n=1024: {sketch_1024_ms:.2} ms vs ~{PR4_SKETCH_1024_MS} ms PR4 baseline = {sketch_speedup:.1}x"
    ));
    // Regression guard, not a benchmark gate: the PR 5 state measures
    // ~3.5x on the reference container, so 1.5x still passes on a runner
    // half as fast (or twice as loaded) while a true regression toward
    // the ~15 ms PR 4 sweep (1.0x) fails loudly.
    assert!(
        sketch_speedup >= 1.5,
        "sketch labeling regressed: {sketch_1024_ms:.2} ms at n = 1024"
    );

    // ------------------------------------------------------------------
    // 2. Zero-decode serving: steady traffic, sidecar off vs on.
    // ------------------------------------------------------------------
    let grid = generators::grid(8, 8);
    let scheme = CycleSpaceScheme::label(&grid, 16, Seed::new(8)).expect("connected");
    let steady = steady_cfg();
    eprintln!("[bench_pr5] steady-traffic: wire path (pr4 baseline)");
    let mut wire_engine = Engine::from_cycle_space(
        &scheme,
        EngineConfig {
            use_sidecar: false,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let wire_report =
        run_scenario(&grid, "grid-8x8", &mut wire_engine, None, &steady).expect("wire scenario");
    assert_eq!(wire_report.mismatches, 0, "wire path diverged from truth");
    eprintln!("[bench_pr5] steady-traffic: zero-decode path");
    let mut sidecar_engine = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
    let sidecar_report = run_scenario(&grid, "grid-8x8", &mut sidecar_engine, None, &steady)
        .expect("sidecar scenario");
    assert_eq!(
        sidecar_report.mismatches, 0,
        "zero-decode path diverged from truth"
    );
    assert_eq!(
        wire_report.reachable_fraction, sidecar_report.reachable_fraction,
        "identical traffic must see identical reachability"
    );
    let zero_decode_ratio = sidecar_report.throughput_qps / wire_report.throughput_qps;
    human.push(format!(
        "steady-traffic: wire {:.2}M qps (p50 {:.0} ns) -> zero-decode {:.2}M qps (p50 {:.0} ns) = {zero_decode_ratio:.2}x",
        wire_report.throughput_qps / 1e6,
        wire_report.latency_p50_ns,
        sidecar_report.throughput_qps / 1e6,
        sidecar_report.latency_p50_ns,
    ));

    // ------------------------------------------------------------------
    // 3. Batched vs naive on the 1k-node workloads.
    // ------------------------------------------------------------------
    let mut decode_rows: Vec<String> = Vec::new();
    {
        const QUERIES_PER_SET: usize = 64;
        for w in ftl_bench::scale_suite(&mut rng) {
            eprintln!("[bench_pr5] batched-vs-naive: {}", w.name);
            let scheme =
                CycleSpaceScheme::label(&w.graph, 64, Seed::new(3)).expect("suite is connected");
            let mut engine = Engine::from_cycle_space(
                &scheme,
                EngineConfig {
                    cache_capacity: 0, // isolate batching, not caching
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            for f in [16usize, 64] {
                let faults = ftl_bench::sample_faults(&w.graph, f, &mut rng);
                let queries: Vec<ConnQuery> = (0..QUERIES_PER_SET)
                    .map(|_| ConnQuery {
                        s: ftl_bench::sample_vertex(&w.graph, &mut rng),
                        t: ftl_bench::sample_vertex(&w.graph, &mut rng),
                        fault_set: 0,
                    })
                    .collect();
                let req = BatchRequest {
                    fault_sets: vec![faults],
                    queries,
                };
                {
                    let batched = engine.execute(&req).expect("batched path");
                    let naive = engine.execute_naive(&req).expect("naive path");
                    assert_eq!(batched.results, naive.results, "path disagreement");
                }
                let naive_q = measure_ns(|| engine.execute_naive(&req).expect("naive"))
                    / QUERIES_PER_SET as f64;
                let batched_q =
                    measure_ns(|| engine.execute(&req).expect("batched")) / QUERIES_PER_SET as f64;
                let speedup = naive_q / batched_q;
                decode_rows.push(format!(
                    "{{\"workload\": \"{}\", \"f\": {f}, \"queries_per_set\": {QUERIES_PER_SET}, \"naive_ns_per_query\": {naive_q:.0}, \"batched_ns_per_query\": {batched_q:.0}, \"speedup\": {speedup:.2}}}",
                    w.name
                ));
                human.push(format!(
                    "decode {:>10} f={f:<3} naive {naive_q:>9.0} ns/q  batched {batched_q:>8.0} ns/q  speedup {speedup:.2}x",
                    w.name
                ));
            }
        }
    }

    // ------------------------------------------------------------------
    // 4. Worker scaling over one shared store.
    // ------------------------------------------------------------------
    let mut scaling_rows: Vec<String> = Vec::new();
    {
        let mut workloads = ftl_bench::scale_suite(&mut rng);
        let w = workloads.remove(0); // grid-32x32
        eprintln!("[bench_pr5] worker scaling on {}", w.name);
        let scheme = CycleSpaceScheme::label(&w.graph, 16, Seed::new(8)).expect("connected");
        // Heavy steady batches so thread fan-out amortises.
        let mut cfg = ScenarioConfig::new("steady-parallel", 16);
        cfg.rounds = 4;
        cfg.fault_sets_per_round = 1;
        cfg.queries_per_fault_set = 4096;
        cfg.churn = 0.0;
        let mut serial = Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap();
        let serial_report =
            run_scenario(&w.graph, &w.name, &mut serial, None, &cfg).expect("serial scenario");
        human.push(format!(
            "scaling {:>10} serial          {:>9} qps",
            w.name, serial_report.throughput_qps as u64
        ));
        let mut worker_counts: Vec<usize> = vec![1];
        let mut c = 2;
        while c < cores {
            worker_counts.push(c);
            c *= 2;
        }
        if cores > 1 {
            worker_counts.push(cores);
        }
        for &workers in &worker_counts {
            let mut par = ParEngine::new(serial.shared_store(), serial.config(), workers);
            // Differential verification against the serial engine on
            // explicit random batches before any timing.
            let mut oracle = par.serial_engine();
            for (i, req) in differential_batches(&w.graph, &mut rng).iter().enumerate() {
                let p = par.execute(req).expect("par batch");
                let s = oracle.execute(req).expect("serial batch");
                assert_eq!(p.results, s.results, "par != serial on batch {i}");
            }
            let par_report =
                run_scenario(&w.graph, &w.name, &mut par, None, &cfg).expect("parallel scenario");
            assert_eq!(
                par_report.reachable_fraction, serial_report.reachable_fraction,
                "parallel run diverged from serial on identical traffic"
            );
            let ratio = par_report.throughput_qps / serial_report.throughput_qps;
            if workers == 1 {
                // On any machine a 1-worker ParEngine is the serial path
                // plus bookkeeping: asserted non-regressing, not skipped.
                // The bound is loose (two separately timed runs on a
                // possibly-loaded runner) but catches a real per-query
                // regression in the chunked path.
                assert!(
                    ratio >= 0.35,
                    "1-worker ParEngine regressed to {ratio:.2}x of serial"
                );
            }
            let per_worker: Vec<String> = par_report
                .workers
                .iter()
                .map(|ws| {
                    format!(
                        "{{\"worker\": {}, \"queries\": {}, \"busy_ns\": {}, \"throughput_qps\": {:.0}}}",
                        ws.worker, ws.queries, ws.busy_ns, ws.throughput_qps
                    )
                })
                .collect();
            scaling_rows.push(format!(
                "{{\"workload\": \"{}\", \"workers\": {workers}, \"aggregate_qps\": {:.0}, \"serial_qps\": {:.0}, \"ratio_vs_serial\": {ratio:.2}, \"per_worker\": [{}]}}",
                w.name,
                par_report.throughput_qps,
                serial_report.throughput_qps,
                per_worker.join(", ")
            ));
            human.push(format!(
                "scaling {:>10} workers={workers:<2}      {:>9} qps  ({ratio:.2}x serial)",
                w.name, par_report.throughput_qps as u64
            ));
        }
    }

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 5,").unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(
        json,
        "  \"note\": \"zero_decode: PR4 steady-traffic scenario on identical traffic, wire-decoding path vs DecodedSidecar path. batched_vs_naive: cache disabled. worker_scaling: ParEngine over one shared Arc<LabelStore>, per-worker LRU caches, differentially verified against the serial engine; serial ~= parallel expected on a 1-core container. labeling: pr4 sketch baseline ~15 ms at n = 1024 on the 1-core bench container.\","
    )
    .unwrap();
    writeln!(json, "  \"labeling\": [").unwrap();
    for (i, r) in labeling_rows.iter().enumerate() {
        let comma = if i + 1 < labeling_rows.len() { "," } else { "" };
        writeln!(json, "    {r}{comma}").unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(
        json,
        "  \"sketch_label_1024\": {{\"pr4_baseline_ms\": {PR4_SKETCH_1024_MS}, \"measured_ms\": {sketch_1024_ms:.2}, \"speedup\": {sketch_speedup:.2}}},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"zero_decode\": {{\"wire_qps\": {:.0}, \"wire_p50_ns\": {:.0}, \"wire_p99_ns\": {:.0}, \"sidecar_qps\": {:.0}, \"sidecar_p50_ns\": {:.0}, \"sidecar_p99_ns\": {:.0}, \"speedup\": {zero_decode_ratio:.2}}},",
        wire_report.throughput_qps,
        wire_report.latency_p50_ns,
        wire_report.latency_p99_ns,
        sidecar_report.throughput_qps,
        sidecar_report.latency_p50_ns,
        sidecar_report.latency_p99_ns,
    )
    .unwrap();
    writeln!(json, "  \"batched_vs_naive\": [").unwrap();
    for (i, r) in decode_rows.iter().enumerate() {
        let comma = if i + 1 < decode_rows.len() { "," } else { "" };
        writeln!(json, "    {r}{comma}").unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"worker_scaling\": [").unwrap();
    for (i, r) in scaling_rows.iter().enumerate() {
        let comma = if i + 1 < scaling_rows.len() { "," } else { "" };
        writeln!(json, "    {r}{comma}").unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    for h in &human {
        println!("{h}");
    }
    let out = std::env::var("BENCH_PR5_OUT").unwrap_or_else(|_| "BENCH_pr5.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("\nwrote {out}");
}
