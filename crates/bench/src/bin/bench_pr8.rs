//! PR 8 benchmark: end-to-end serving through the batched TCP front end,
//! written to `BENCH_pr8.json` at the repo root.
//!
//! The scenario is the serving story told with real sockets: a loopback
//! [`ftl_server::Server`] is spun up over a labeled workload, then the
//! built-in loadgen hammers it with 64 concurrent client connections that
//! all draw their faults from a shared 8-set vocabulary. Every answer the
//! server returns is checked against BFS ground truth inside the loadgen,
//! so the throughput and latency numbers below are *audited* numbers.
//!
//! What the cross-connection batcher buys is visible directly in the
//! report: with 64 connections sharing 8 fault sets, the number of
//! distinct engine *group executions* collapses far below the number of
//! requests — one GF(2) elimination per distinct fault set per window,
//! not per request.
//!
//! The binary asserts its own non-regression gates: zero ground-truth
//! mismatches, zero unserved/errored requests, batching collapse
//! (`groups * 2 < requests`), and a conservative end-to-end throughput
//! floor that holds on a 1-core CI container.
//!
//! Run with: `cargo run -p ftl-bench --bin bench_pr8 --release`

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{store_from_cycle_space, EngineConfig, EpochStore};
use ftl_seeded::Seed;
use ftl_server::{
    derive_fault_sets, parse_graph_spec, run_loadgen, LoadgenConfig, LoadgenReport, Server,
    ServerConfig, StatsSnapshot,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 64;
const REQUESTS_PER_CLIENT: usize = 16;
const QUERIES_PER_REQUEST: usize = 16;
const FAULT_SETS: usize = 8;
const FAULTS_PER_SET: usize = 4;
const LABEL_WIDTH: usize = 8;
const STORE_SHARDS: usize = 16;
const GRAPH_SEED: u64 = 1;
const LOADGEN_SEED: u64 = 5;
/// End-to-end floor for the audited query rate. Deliberately far below
/// what a laptop measures (hundreds of thousands/s) so a shared 1-core
/// CI container passes while a 10x serving regression still fails.
const MIN_QUERIES_PER_SEC: f64 = 5_000.0;

struct ScenarioResult {
    report: LoadgenReport,
    stats: StatsSnapshot,
}

/// One full serve-and-audit run: label `spec`, spawn a loopback server,
/// drive it with the shared-vocabulary loadgen, drain, and return both
/// sides' books.
fn serve_scenario(spec: &str) -> ScenarioResult {
    let g = parse_graph_spec(spec, GRAPH_SEED).expect("workload spec");
    let scheme = CycleSpaceScheme::label(&g, LABEL_WIDTH, Seed::new(GRAPH_SEED))
        .expect("workload graph is connected");
    let store = store_from_cycle_space(&scheme, STORE_SHARDS).expect("freeze");
    let epochs = Arc::new(EpochStore::new(Arc::new(store)));
    let handle = Server::spawn(
        epochs,
        EngineConfig::default(),
        ServerConfig {
            executors: 2,
            engine_workers: 2,
            window: Duration::from_millis(1),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback server");
    let sets = derive_fault_sets(&g, FAULT_SETS, FAULTS_PER_SET, GRAPH_SEED);
    let report = run_loadgen(
        handle.local_addr(),
        &g,
        &sets,
        LoadgenConfig {
            clients: CLIENTS,
            requests_per_client: REQUESTS_PER_CLIENT,
            queries_per_request: QUERIES_PER_REQUEST,
            seed: LOADGEN_SEED,
            ..LoadgenConfig::default()
        },
    );
    let stats = handle.shutdown();
    ScenarioResult { report, stats }
}

fn main() {
    let workloads = ["er:1024:8", "grid:32x32"];
    let mut sections = Vec::new();
    let mut human = Vec::new();
    let expected_requests = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    let expected_queries = expected_requests * QUERIES_PER_REQUEST as u64;
    for spec in workloads {
        let ScenarioResult { report, stats } = serve_scenario(spec);

        // Non-regression gates, asserted in-binary so CI fails loudly.
        assert_eq!(
            report.mismatches, 0,
            "{spec}: answers disagreed with BFS ground truth"
        );
        assert_eq!(report.io_errors, 0, "{spec}: client-side socket errors");
        assert_eq!(
            report.unserved, 0,
            "{spec}: requests starved by busy-rejects"
        );
        assert_eq!(
            report.requests_ok, expected_requests,
            "{spec}: lost requests"
        );
        assert_eq!(report.queries_ok, expected_queries, "{spec}: lost queries");
        assert!(
            stats.groups * 2 < stats.requests,
            "{spec}: batching did not collapse: {} groups for {} requests",
            stats.groups,
            stats.requests
        );
        assert!(
            report.queries_per_sec >= MIN_QUERIES_PER_SEC,
            "{spec}: end-to-end throughput regressed: {:.0} queries/s < {MIN_QUERIES_PER_SEC} floor",
            report.queries_per_sec
        );

        human.push(format!(
            "{spec}: {} requests / {} queries audited in {:.1} ms — {:.0} queries/s, \
             p50 {:.3} ms, p99 {:.3} ms; {} windows, {} group executions \
             ({:.1} requests/group), {} busy rejects",
            report.requests_ok,
            report.queries_ok,
            report.wall_ns as f64 / 1e6,
            report.queries_per_sec,
            report.p50_ms,
            report.p99_ms,
            stats.batches,
            stats.groups,
            stats.requests as f64 / stats.groups.max(1) as f64,
            report.busy_rejects
        ));

        let mut sec = String::new();
        writeln!(sec, "    {{").unwrap();
        writeln!(sec, "      \"workload\": \"{spec}\",").unwrap();
        writeln!(
            sec,
            "      \"clients\": {CLIENTS}, \"requests_per_client\": {REQUESTS_PER_CLIENT}, \
             \"queries_per_request\": {QUERIES_PER_REQUEST},"
        )
        .unwrap();
        writeln!(
            sec,
            "      \"fault_sets\": {FAULT_SETS}, \"faults_per_set\": {FAULTS_PER_SET},"
        )
        .unwrap();
        writeln!(
            sec,
            "      \"requests_ok\": {}, \"queries_ok\": {}, \"mismatches\": {},",
            report.requests_ok, report.queries_ok, report.mismatches
        )
        .unwrap();
        writeln!(
            sec,
            "      \"busy_rejects\": {}, \"unserved\": {}, \"io_errors\": {},",
            report.busy_rejects, report.unserved, report.io_errors
        )
        .unwrap();
        writeln!(
            sec,
            "      \"windows\": {}, \"group_executions\": {}, \"requests_per_group\": {:.2},",
            stats.batches,
            stats.groups,
            stats.requests as f64 / stats.groups.max(1) as f64
        )
        .unwrap();
        writeln!(
            sec,
            "      \"wall_ms\": {:.1}, \"queries_per_sec\": {:.0}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}",
            report.wall_ns as f64 / 1e6,
            report.queries_per_sec,
            report.p50_ms,
            report.p99_ms
        )
        .unwrap();
        write!(sec, "    }}").unwrap();
        sections.push(sec);
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 8,").unwrap();
    writeln!(
        json,
        "  \"note\": \"End-to-end TCP serving through ftl-server: {CLIENTS} loopback client \
         connections x {REQUESTS_PER_CLIENT} requests x {QUERIES_PER_REQUEST} queries, all \
         drawing faults from a shared {FAULT_SETS}-set vocabulary. The loadgen audits every \
         answer against BFS ground truth, so queries_per_sec counts verified answers only. \
         group_executions is the number of distinct fault-set eliminations the engine actually \
         ran — the batching collapse is group_executions << requests_ok. The binary asserts \
         zero mismatches, zero unserved requests, groups * 2 < requests, and \
         queries_per_sec >= {MIN_QUERIES_PER_SEC}.\","
    )
    .unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, sec) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        writeln!(json, "{sec}{comma}").unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    for h in &human {
        println!("{h}");
    }
    let out = std::env::var("BENCH_PR8_OUT").unwrap_or_else(|_| "BENCH_pr8.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("\nwrote {out}");
}
