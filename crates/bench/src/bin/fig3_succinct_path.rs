//! E4 / Figure 3: succinct s-t path extraction (Lemma 3.17): validity and
//! length statistics of the alternating 0/1-labeled path.

use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{generators, VertexId};
use ftl_seeded::Seed;
use ftl_sketch::{decode, PathSegment, SketchParams, SketchScheme};

fn main() {
    let mut rng = ftl_bench::rng(0xF163);
    let g = generators::connected_random(64, 0.05, 1, &mut rng);
    let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(3)).unwrap();
    let mut rows = Vec::new();
    for f in [1usize, 2, 4, 8] {
        let trials = 300;
        let mut connected_cases = 0usize;
        let mut total_segments = 0usize;
        let mut total_recovery = 0usize;
        let mut max_recovery = 0usize;
        let mut valid = 0usize;
        for _ in 0..trials {
            let faults = ftl_bench::sample_faults(&g, f, &mut rng);
            let s = ftl_bench::sample_vertex(&g, &mut rng);
            let t = ftl_bench::sample_vertex(&g, &mut rng);
            let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
            let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
            let mask = forbidden_mask(&g, &faults);
            assert_eq!(out.connected, connected_avoiding(&g, s, t, &mask));
            let Some(path) = out.path else { continue };
            connected_cases += 1;
            total_segments += path.segments.len();
            let rec = path.num_recovery_edges();
            total_recovery += rec;
            max_recovery = max_recovery.max(rec);
            // Validity: continuity + recovery edges are real graph edges.
            let mut cur = s.raw();
            let mut good = true;
            for seg in &path.segments {
                match seg {
                    PathSegment::TreePath { from, to } => {
                        good &= from.id == cur;
                        cur = to.id;
                    }
                    PathSegment::RecoveryEdge { from, to, eid } => {
                        good &= from.id == cur;
                        good &= g
                            .find_edge(VertexId::from_raw(eid.lo), VertexId::from_raw(eid.hi))
                            .is_some();
                        cur = to.id;
                    }
                }
            }
            good &= cur == t.raw();
            if good {
                valid += 1;
            }
        }
        rows.push(vec![
            f.to_string(),
            connected_cases.to_string(),
            format!("{valid}/{connected_cases}"),
            ftl_bench::f2(total_segments as f64 / connected_cases.max(1) as f64),
            ftl_bench::f2(total_recovery as f64 / connected_cases.max(1) as f64),
            format!("{max_recovery} (bound f+1 = {})", f + 1),
        ]);
    }
    ftl_bench::print_table(
        "E4 / Figure 3: succinct paths (Lemma 3.17), er-64",
        &[
            "f",
            "connected queries",
            "valid paths",
            "avg segments",
            "avg recovery edges",
            "max recovery edges",
        ],
        &rows,
    );
}
