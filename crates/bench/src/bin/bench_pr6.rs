//! PR 6 benchmark: churn without rebuilds — the epoch-versioned live
//! store's delta-freeze path against the full-rebuild baseline, written to
//! `BENCH_pr6.json` at the repo root.
//!
//! Shape mirrors the DRFE-R evaluation loop: 500–1000-node graphs, 20
//! removal rounds each, under both uniform-random and targeted
//! (highest-degree-first) removal. Every round:
//!
//! 1. measures what a from-scratch relabel + full freeze of the *current*
//!    topology would cost (`measure_full_rebuild_ns` — the honest
//!    baseline, remeasured as the graph shrinks),
//! 2. applies the round's removals through [`LiveStore`], which publishes
//!    a delta-frozen (or, rarely, fully rebuilt) successor epoch and
//!    reports the whole mutate-and-publish wall time,
//! 3. pushes verification traffic through an epoch-following engine and
//!    checks **every** answer against a BFS over the surviving topology.
//!
//! The tentpole number is the median delta-swap time over the median
//! full-rebuild time; the binary asserts the delta path is measurably
//! faster and that ground-truth agreement is perfect throughout.
//!
//! Run with: `cargo run -p ftl-bench --bin bench_pr6 --release`

use ftl_engine::{
    plan_edge_removals, plan_vertex_removals, BatchRequest, ConnQuery, Engine, EngineConfig,
    LiveStore, RemovalModel, SwapPath,
};
use ftl_graph::traversal::connected_avoiding;
use ftl_graph::{generators, EdgeId, Graph, VertexId};
use ftl_seeded::Seed;
use std::fmt::Write as _;
use std::sync::Arc;

const ROUNDS: usize = 20;
const EDGE_REMOVALS_PER_ROUND: usize = 5;
const VERTEX_REMOVALS_PER_ROUND: usize = 1;
const FAULTS_PER_SET: usize = 8;
const QUERIES_PER_ROUND: usize = 64;

fn median(mut xs: Vec<u64>) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

struct RunSummary {
    rows: Vec<String>,
    delta_median_ns: u64,
    rebuild_median_ns: u64,
    delta_rounds: usize,
    full_rebuild_rounds: usize,
    mismatches: usize,
    final_epoch: u64,
    mean_reachable: f64,
}

/// One DRFE-R-shaped run: 20 removal rounds over `g` under `model`, every
/// round benchmarked against the full-rebuild baseline and verified
/// against BFS ground truth.
fn churn_run(g: &Graph, model: RemovalModel, seed: u64, human: &mut Vec<String>) -> RunSummary {
    let config = EngineConfig::default();
    let mut store = LiveStore::new(g, 16, Seed::new(seed), config).expect("connected workload");
    let mut engine = Engine::over_epochs(Arc::clone(store.epochs()), config);
    let mut rows = Vec::with_capacity(ROUNDS);
    let mut delta_ns = Vec::new();
    let mut rebuild_ns_all = Vec::new();
    let mut delta_rounds = 0usize;
    let mut full_rebuild_rounds = 0usize;
    let mut mismatches = 0usize;
    let mut reachable_sum = 0.0f64;
    for round in 0..ROUNDS {
        let round_seed = Seed::new(seed).derive(round as u64 + 1);
        // 1. Baseline: full relabel + full freeze of the current topology.
        let rebuild_ns = store.measure_full_rebuild_ns().unwrap();
        rebuild_ns_all.push(rebuild_ns);
        // 2. The round's removals through the delta pipeline.
        let edges = plan_edge_removals(store.live(), EDGE_REMOVALS_PER_ROUND, model, round_seed);
        let (edge_swap, edge_skips) = store.remove_edges(&edges).unwrap();
        let vertices = plan_vertex_removals(
            store.live(),
            VERTEX_REMOVALS_PER_ROUND,
            model,
            round_seed.derive(1),
        );
        let (vertex_swap, vertex_skips) = store.remove_vertices(&vertices).unwrap();
        let swap_ns = edge_swap.elapsed_ns + vertex_swap.elapsed_ns;
        let mut full_rebuild = false;
        let (mut upserts, mut removals) = (0usize, 0usize);
        for swap in [&edge_swap, &vertex_swap] {
            match swap.path {
                SwapPath::Delta {
                    upserts: u,
                    removals: r,
                } => {
                    upserts += u;
                    removals += r;
                }
                SwapPath::FullRebuild => full_rebuild = true,
            }
        }
        if full_rebuild {
            full_rebuild_rounds += 1;
        } else {
            delta_rounds += 1;
            delta_ns.push(swap_ns);
        }
        // 3. Verification traffic over the survivors.
        let live = store.live();
        let alive_edges: Vec<EdgeId> = live.alive_edges().collect();
        let alive_vertices: Vec<VertexId> = live.alive_vertices().collect();
        let mut rng = round_seed.derive(2).stream();
        let mut faults = Vec::with_capacity(FAULTS_PER_SET);
        while faults.len() < FAULTS_PER_SET.min(alive_edges.len()) {
            let e = alive_edges[(rng() % alive_edges.len() as u64) as usize];
            if !faults.contains(&e) {
                faults.push(e);
            }
        }
        let queries: Vec<ConnQuery> = (0..QUERIES_PER_ROUND)
            .map(|_| ConnQuery {
                s: alive_vertices[(rng() % alive_vertices.len() as u64) as usize],
                t: alive_vertices[(rng() % alive_vertices.len() as u64) as usize],
                fault_set: 0,
            })
            .collect();
        let req = BatchRequest {
            fault_sets: vec![faults.clone()],
            queries,
        };
        let resp = engine.execute(&req).expect("epoch-following batch");
        let mut mask = live.forbidden_base();
        for &e in &faults {
            mask[e.index()] = true;
        }
        let mut round_mismatches = 0usize;
        let mut reachable = 0usize;
        for (q, r) in req.queries.iter().zip(&resp.results) {
            if r.connected {
                reachable += 1;
            }
            if connected_avoiding(live.graph(), q.s, q.t, &mask) != r.connected {
                round_mismatches += 1;
            }
        }
        mismatches += round_mismatches;
        let reachable_fraction = reachable as f64 / resp.results.len().max(1) as f64;
        reachable_sum += reachable_fraction;
        let speedup = rebuild_ns as f64 / swap_ns.max(1) as f64;
        rows.push(format!(
            "{{\"round\": {round}, \"removed_edges\": {}, \"removed_vertices\": {}, \"skipped\": {}, \"epoch\": {}, \"full_rebuild\": {full_rebuild}, \"delta_upserts\": {upserts}, \"delta_removals\": {removals}, \"swap_ns\": {swap_ns}, \"rebuild_ns\": {rebuild_ns}, \"speedup\": {speedup:.1}, \"queries\": {}, \"reachable_fraction\": {reachable_fraction:.4}, \"mismatches\": {round_mismatches}}}",
            edges.len() - edge_skips.len(),
            vertices.len() - vertex_skips.len(),
            edge_skips.len() + vertex_skips.len(),
            vertex_swap.epoch.max(edge_swap.epoch),
            resp.results.len(),
        ));
    }
    let summary = RunSummary {
        rows,
        delta_median_ns: median(delta_ns),
        rebuild_median_ns: median(rebuild_ns_all),
        delta_rounds,
        full_rebuild_rounds,
        mismatches,
        final_epoch: store.epochs().current().number(),
        mean_reachable: reachable_sum / ROUNDS as f64,
    };
    human.push(format!(
        "churn {model:?}: delta median {:>9} ns  rebuild median {:>10} ns  ({:.1}x)  rounds {}d/{}f  mismatches {}",
        summary.delta_median_ns,
        summary.rebuild_median_ns,
        summary.rebuild_median_ns as f64 / summary.delta_median_ns.max(1) as f64,
        summary.delta_rounds,
        summary.full_rebuild_rounds,
        summary.mismatches,
    ));
    summary
}

fn main() {
    let mut rng = ftl_bench::rng(6);
    let mut human: Vec<String> = Vec::new();
    let workloads: Vec<(String, Graph)> = vec![
        (
            "ba-600".into(),
            generators::barabasi_albert(600, 3, &mut rng),
        ),
        (
            "er-1000".into(),
            generators::connected_random(1000, 8.0 / 1000.0, 1, &mut rng),
        ),
    ];
    let mut sections: Vec<String> = Vec::new();
    for (name, g) in &workloads {
        for model in [RemovalModel::Random, RemovalModel::Targeted] {
            eprintln!("[bench_pr6] {name} under {model:?} removal, {ROUNDS} rounds");
            human.push(format!(
                "{name} (n={}, m={}):",
                g.num_vertices(),
                g.num_edges()
            ));
            let s = churn_run(g, model, 0x9A6 ^ g.num_vertices() as u64, &mut human);
            assert_eq!(
                s.mismatches, 0,
                "{name}/{model:?}: engine diverged from BFS ground truth"
            );
            assert!(
                s.final_epoch > ROUNDS as u64 / 2,
                "{name}/{model:?}: churn barely published any epochs"
            );
            // The tentpole claim, asserted where CI can see it: swapping a
            // delta-frozen epoch must beat relabel-from-scratch + full
            // freeze by a clear margin, under both removal models.
            assert!(
                s.delta_rounds > 0,
                "{name}/{model:?}: no round stayed on the delta path"
            );
            assert!(
                (s.delta_median_ns as f64) * 2.0 < s.rebuild_median_ns as f64,
                "{name}/{model:?}: delta-freeze not measurably faster: {} ns vs {} ns",
                s.delta_median_ns,
                s.rebuild_median_ns
            );
            let mut sec = String::new();
            writeln!(sec, "    {{").unwrap();
            writeln!(sec, "      \"workload\": \"{name}\",").unwrap();
            writeln!(
                sec,
                "      \"n\": {}, \"m\": {}, \"model\": \"{model:?}\",",
                g.num_vertices(),
                g.num_edges()
            )
            .unwrap();
            writeln!(
                sec,
                "      \"delta_median_ns\": {}, \"rebuild_median_ns\": {}, \"speedup\": {:.1},",
                s.delta_median_ns,
                s.rebuild_median_ns,
                s.rebuild_median_ns as f64 / s.delta_median_ns.max(1) as f64
            )
            .unwrap();
            writeln!(
                sec,
                "      \"delta_rounds\": {}, \"full_rebuild_rounds\": {}, \"final_epoch\": {}, \"mismatches\": {}, \"mean_reachable_fraction\": {:.4},",
                s.delta_rounds, s.full_rebuild_rounds, s.final_epoch, s.mismatches, s.mean_reachable
            )
            .unwrap();
            writeln!(sec, "      \"rounds\": [").unwrap();
            for (i, r) in s.rows.iter().enumerate() {
                let comma = if i + 1 < s.rows.len() { "," } else { "" };
                writeln!(sec, "        {r}{comma}").unwrap();
            }
            writeln!(sec, "      ]").unwrap();
            write!(sec, "    }}").unwrap();
            sections.push(sec);
        }
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 6,").unwrap();
    writeln!(
        json,
        "  \"note\": \"DRFE-R-shaped churn: {ROUNDS} removal rounds per run ({EDGE_REMOVALS_PER_ROUND} edges + {VERTEX_REMOVALS_PER_ROUND} vertex per round, bridges/cut-vertices skipped). swap_ns = live mutation + delta-freeze + epoch publish; rebuild_ns = relabel-from-scratch + full freeze of the same topology, measured immediately before each round's removals. Every round's answers are verified against BFS over the surviving topology; the binary asserts zero mismatches and delta median * 2 < rebuild median.\","
    )
    .unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, sec) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        writeln!(json, "{sec}{comma}").unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    for h in &human {
        println!("{h}");
    }
    let out = std::env::var("BENCH_PR6_OUT").unwrap_or_else(|_| "BENCH_pr6.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("\nwrote {out}");
}
