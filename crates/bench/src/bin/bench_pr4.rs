//! PR 4 engine benchmark: batched fault-set decoding vs per-query naive
//! decoding, engine scenario throughput, and a churn-scenario reachability
//! table, written to `BENCH_pr4.json` at the repo root.
//!
//! "Naive" is the pre-engine serving path ([`Engine::execute_naive`]): one
//! fresh GF(2) elimination of the augmented system per query. "Batched" is
//! the engine path: one elimination per fault set yielding null-space
//! generators, then a parity test per query. The speedup comparison runs
//! with the elimination cache **disabled**, so it isolates batching; the
//! scenario section then shows what the cache adds on recurring fault sets.
//!
//! Run with: `cargo run -p ftl-bench --bin bench_pr4 --release`

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{
    run_scenario, BatchRequest, ConnQuery, Engine, EngineConfig, FaultModel, ScenarioConfig,
};
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall-clock nanoseconds per call over enough repetitions to fill
/// ~20 ms per sample, 7 samples.
fn measure_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().as_nanos().max(1);
    let iters = ((20_000_000u128 / once).clamp(1, 1_000_000)) as u64;
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

struct Row {
    json: String,
    human: String,
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut rng = ftl_bench::rng(4);
    const QUERIES_PER_SET: usize = 64;

    // ------------------------------------------------------------------
    // Batched vs naive decoding on the 64-vertex suite.
    // ------------------------------------------------------------------
    let mut decode_rows: Vec<Row> = Vec::new();
    for workload in ftl_bench::standard_suite(&mut rng) {
        eprintln!("[bench_pr4] batched-vs-naive: {}", workload.name);
        let g = &workload.graph;
        let scheme = CycleSpaceScheme::label(g, 64, Seed::new(3)).expect("suite is connected");
        // Cache disabled: the measurement isolates per-batch elimination
        // amortisation, not cache hits.
        let mut engine = Engine::from_cycle_space(
            &scheme,
            EngineConfig {
                cache_capacity: 0,
                // This benchmark records the PR 4 serving path; the PR 5
                // decoded sidecar is measured against it in bench_pr5.
                use_sidecar: false,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        for f in [4usize, 16, 64] {
            let f = f.min(g.num_edges());
            let faults = ftl_bench::sample_faults(g, f, &mut rng);
            let queries: Vec<ConnQuery> = (0..QUERIES_PER_SET)
                .map(|_| ConnQuery {
                    s: ftl_bench::sample_vertex(g, &mut rng),
                    t: ftl_bench::sample_vertex(g, &mut rng),
                    fault_set: 0,
                })
                .collect();
            let req = BatchRequest {
                fault_sets: vec![faults],
                queries,
            };
            // Sanity: the two paths agree before we time them.
            {
                let batched = engine.execute(&req).expect("batched path");
                let naive = engine.execute_naive(&req).expect("naive path");
                assert_eq!(batched.results, naive.results, "path disagreement");
            }
            let naive_batch = measure_ns(|| engine.execute_naive(&req).expect("naive path"));
            let batched_batch = measure_ns(|| engine.execute(&req).expect("batched path"));
            let naive_q = naive_batch / QUERIES_PER_SET as f64;
            let batched_q = batched_batch / QUERIES_PER_SET as f64;
            let speedup = naive_q / batched_q;
            decode_rows.push(Row {
                json: format!(
                    "{{\"workload\": \"{}\", \"f\": {f}, \"queries_per_set\": {QUERIES_PER_SET}, \"naive_ns_per_query\": {naive_q:.0}, \"batched_ns_per_query\": {batched_q:.0}, \"speedup\": {speedup:.2}}}",
                    workload.name
                ),
                human: format!(
                    "decode {:>9} f={f:<3} naive {naive_q:>9.0} ns/q  batched {batched_q:>9.0} ns/q  speedup {speedup:.2}x",
                    workload.name
                ),
            });
        }
    }

    // ------------------------------------------------------------------
    // Scenario workloads: steady traffic (cache-hot), multi-round churn
    // (with a per-round reachability table), and a hub-targeted attack.
    // The churn run also samples routed stretch through the f-fault
    // routing scheme.
    // ------------------------------------------------------------------
    let mut scenario_jsons: Vec<String> = Vec::new();
    let mut scenario_humans: Vec<String> = Vec::new();
    {
        let mut suite = ftl_bench::standard_suite(&mut rng);
        let grid = suite.remove(0); // grid-8x8
        let scheme = CycleSpaceScheme::label(&grid.graph, 16, Seed::new(8)).expect("connected");
        // The PR 4 serving path (wire-decoding per lookup): bench_pr5
        // measures the PR 5 zero-decode sidecar against these numbers.
        let mut engine = Engine::from_cycle_space(
            &scheme,
            EngineConfig {
                use_sidecar: false,
                ..EngineConfig::default()
            },
        )
        .unwrap();

        eprintln!("[bench_pr4] scenario: steady-traffic");
        let mut steady = ScenarioConfig::new("steady-traffic", 16);
        steady.rounds = 6;
        steady.fault_sets_per_round = 1;
        steady.queries_per_fault_set = 256;
        steady.churn = 0.0;
        steady.verify = true;
        let report = run_scenario(&grid.graph, &grid.name, &mut engine, None, &steady)
            .expect("steady scenario");
        assert_eq!(report.mismatches, 0, "steady scenario diverged from truth");
        scenario_humans.push(format!(
            "scenario {:<16} {:>9} qps  p50 {:>7.0} ns/q  reach {:.3}  elim {}  cache {}",
            report.name,
            report.throughput_qps as u64,
            report.latency_p50_ns,
            report.reachable_fraction,
            report.eliminations,
            report.cache_hits
        ));
        scenario_jsons.push(report.to_json());

        eprintln!("[bench_pr4] scenario: fault-churn (builds the routing scheme for stretch)");
        let routing = FtRoutingScheme::new(&grid.graph, RoutingParams::new(2, 2), Seed::new(6));
        let mut churn = ScenarioConfig::new("fault-churn", 16);
        churn.rounds = 8;
        churn.fault_sets_per_round = 4;
        churn.queries_per_fault_set = 64;
        churn.churn = 0.25;
        churn.verify = true;
        churn.stretch_samples = 6;
        let report = run_scenario(&grid.graph, &grid.name, &mut engine, Some(&routing), &churn)
            .expect("churn scenario");
        assert_eq!(report.mismatches, 0, "churn scenario diverged from truth");
        let stretch = report
            .stretch
            .as_ref()
            .map(|s| format!("stretch mean {:.2} max {:.2}", s.mean, s.max))
            .unwrap_or_else(|| "stretch -".into());
        scenario_humans.push(format!(
            "scenario {:<16} {:>9} qps  p50 {:>7.0} ns/q  reach {:.3}  elim {}  cache {}  {}",
            report.name,
            report.throughput_qps as u64,
            report.latency_p50_ns,
            report.reachable_fraction,
            report.eliminations,
            report.cache_hits,
            stretch
        ));
        for r in &report.rounds {
            scenario_humans.push(format!(
                "  churn round {:>2}: reach {:.3} over {} queries",
                r.round, r.reachable_fraction, r.queries
            ));
        }
        scenario_jsons.push(report.to_json());

        eprintln!("[bench_pr4] scenario: hub-attack");
        let mut attack = ScenarioConfig::new("hub-attack", 16);
        attack.model = FaultModel::HighDegree;
        attack.rounds = 4;
        attack.fault_sets_per_round = 2;
        attack.queries_per_fault_set = 128;
        attack.churn = 0.5;
        attack.verify = true;
        let report = run_scenario(&grid.graph, &grid.name, &mut engine, None, &attack)
            .expect("attack scenario");
        assert_eq!(report.mismatches, 0, "attack scenario diverged from truth");
        scenario_humans.push(format!(
            "scenario {:<16} {:>9} qps  p50 {:>7.0} ns/q  reach {:.3}  elim {}  cache {}",
            report.name,
            report.throughput_qps as u64,
            report.latency_p50_ns,
            report.reachable_fraction,
            report.eliminations,
            report.cache_hits
        ));
        scenario_jsons.push(report.to_json());
    }

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 4,").unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(
        json,
        "  \"note\": \"naive = one augmented-system elimination per query (pre-engine path); batched = one elimination per fault set + parity test per query, cache disabled for the comparison. Scenario section runs the engine with its LRU cache of eliminated bases.\","
    )
    .unwrap();
    writeln!(json, "  \"batched_vs_naive\": [").unwrap();
    for (i, r) in decode_rows.iter().enumerate() {
        let comma = if i + 1 < decode_rows.len() { "," } else { "" };
        writeln!(json, "    {}{comma}", r.json).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"scenarios\": [").unwrap();
    for (i, s) in scenario_jsons.iter().enumerate() {
        let comma = if i + 1 < scenario_jsons.len() {
            ","
        } else {
            ""
        };
        writeln!(json, "{s}{comma}").unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    for r in &decode_rows {
        println!("{}", r.human);
    }
    for h in &scenario_humans {
        println!("{h}");
    }

    let out = std::env::var("BENCH_PR4_OUT").unwrap_or_else(|_| "BENCH_pr4.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("\nwrote {out}");
}
