//! E11 / Definition 4.1 + Proposition 4.2: tree-cover properties — ball
//! coverage, radius bound (2k-1)rho, measured overlap vs k n^{1/k}.

use ftl_tree_cover::TreeCover;

fn main() {
    let mut rng = ftl_bench::rng(0xE11);
    let suite = ftl_bench::standard_suite(&mut rng);
    let mut rows = Vec::new();
    for w in &suite {
        let n = w.graph.num_vertices() as f64;
        for k in [2u32, 3, 4] {
            for rho in [2u64, 4] {
                let tc = TreeCover::build(&w.graph, &[], rho, k);
                let coverage = tc.validate_coverage(&w.graph, &[]).is_ok();
                let radius_bound = (2 * k as u64 - 1) * rho;
                rows.push(vec![
                    w.name.clone(),
                    k.to_string(),
                    rho.to_string(),
                    tc.len().to_string(),
                    format!("{} (<= {radius_bound})", tc.max_tree_radius()),
                    format!(
                        "{} (k n^(1/k) = {:.1})",
                        tc.max_overlap(),
                        k as f64 * n.powf(1.0 / k as f64)
                    ),
                    if coverage {
                        "yes".into()
                    } else {
                        "NO".to_string()
                    },
                ]);
            }
        }
    }
    ftl_bench::print_table(
        "E11 / Prop 4.2: tree covers (radius <= (2k-1)rho; overlap ~ k n^{1/k})",
        &[
            "graph",
            "k",
            "rho",
            "trees",
            "max radius",
            "max overlap",
            "balls covered",
        ],
        &rows,
    );
}
