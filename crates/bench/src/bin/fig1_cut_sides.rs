//! E2 / Figure 1: cut-side classification via path parity (Claim 3.3).
//!
//! For random trees and random induced edge cuts F' = δ(S), classify every
//! vertex by the parity of |F' ∩ π(r, v)| and compare against the true side.

use ftl_graph::{generators, SpanningTree, VertexId};
use rand::Rng;

fn main() {
    let mut rng = ftl_bench::rng(0xF161);
    let mut rows = Vec::new();
    for n in [50usize, 200, 1000, 2000] {
        let g = generators::random_tree(n, &mut rng);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let trials = 200;
        let mut agree = 0usize;
        let mut total = 0usize;
        for _ in 0..trials {
            // Random side set S, the induced cut F' = delta(S).
            let side: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let cut: Vec<_> = g
                .edge_ids()
                .filter(|(_, e)| side[e.u().index()] != side[e.v().index()])
                .map(|(id, _)| id)
                .collect();
            for v in g.vertices() {
                // Parity of cut edges on the root-to-v tree path.
                let parity = tree
                    .tree_path(tree.root(), v)
                    .iter()
                    .filter(|e| cut.contains(e))
                    .count()
                    % 2;
                let same_side_as_root = side[v.index()] == side[tree.root().index()];
                if (parity == 0) == same_side_as_root {
                    agree += 1;
                }
                total += 1;
            }
        }
        rows.push(vec![
            n.to_string(),
            trials.to_string(),
            format!("{agree}/{total}"),
        ]);
    }
    ftl_bench::print_table(
        "E2 / Figure 1: parity-based cut sides (Claim 3.3)",
        &["n", "random cuts", "agreement (paper: always)"],
        &rows,
    );
}
