//! E10 / Theorems 5.5/5.8: FT routing with unknown faults — stretch vs the
//! 32k(|F|+1)^2 bound, per-vertex table bits, header bits, phase counts.

use ftl_graph::generators;
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;

fn main() {
    let mut rng = ftl_bench::rng(0xE10);
    let mut rows = Vec::new();
    let graphs = vec![
        ("grid-5x5", generators::grid(5, 5)),
        ("er-24", generators::connected_random(24, 0.1, 1, &mut rng)),
    ];
    for (name, g) in &graphs {
        for k in [2u32, 3] {
            for f in [1usize, 2, 3] {
                let scheme = FtRoutingScheme::new(g, RoutingParams::new(k, f), Seed::new(88));
                let trials = 30;
                let mut delivered = 0usize;
                let mut cut = 0usize;
                let mut worst: f64 = 1.0;
                let mut sum = 0.0;
                let mut max_header = 0usize;
                let mut sum_iters = 0usize;
                for _ in 0..trials {
                    let faults: std::collections::HashSet<_> =
                        ftl_bench::sample_faults(g, f, &mut rng)
                            .into_iter()
                            .collect();
                    let s = ftl_bench::sample_vertex(g, &mut rng);
                    let t = ftl_bench::sample_vertex(g, &mut rng);
                    let out = scheme.route(g, s, t, &faults);
                    max_header = max_header.max(out.max_header_bits);
                    sum_iters += out.iterations;
                    match (out.delivered, out.optimal) {
                        (true, Some(_)) => {
                            delivered += 1;
                            if let Some(st) = out.stretch() {
                                worst = worst.max(st);
                                sum += st;
                            }
                        }
                        (false, None) => cut += 1,
                        other => panic!("delivery mismatch {other:?}"),
                    }
                }
                rows.push(vec![
                    name.to_string(),
                    k.to_string(),
                    f.to_string(),
                    format!("{delivered}+{cut}cut/{trials}"),
                    ftl_bench::f2(sum / delivered.max(1) as f64),
                    ftl_bench::f2(worst),
                    scheme.stretch_bound(f).to_string(),
                    ftl_bench::fmt_bits(scheme.max_table_bits(g)),
                    ftl_bench::fmt_bits(max_header),
                    ftl_bench::f2(sum_iters as f64 / trials as f64),
                ]);
            }
        }
    }
    ftl_bench::print_table(
        "E10 / Theorem 5.8: FT routing, unknown faults (paper bound 32k(|F|+1)^2)",
        &[
            "graph",
            "k",
            "f",
            "delivered",
            "mean stretch",
            "worst stretch",
            "bound",
            "max table",
            "max header",
            "avg iterations",
        ],
        &rows,
    );
}
