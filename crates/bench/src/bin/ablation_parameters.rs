//! Ablation (DESIGN.md S4): the two "w.h.p." knobs the paper leaves as
//! unspecified constants, swept until they visibly fail.
//!
//! (a) Cycle-space slack: with `b = f + slack` cut-detection bits, a wrong
//!     answer (a non-cut XOR-ing to zero) appears with probability
//!     ~`2^f / 2^b = 2^-slack` per query — the error rate should fall off
//!     geometrically in `slack`.
//! (b) Sketch units: with `L` basic units, a Borůvka phase with no
//!     recovered outgoing edge wastes a unit; too few units make the
//!     decoder falsely report "disconnected". The failure rate should
//!     collapse as `L` grows past ~log(f).

use ftl_cycle_space::CycleSpaceScheme;
use ftl_graph::generators;
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_seeded::Seed;
use ftl_sketch::{decode, SketchParams, SketchScheme};

fn main() {
    let mut rng = ftl_bench::rng(0xAB1A);
    let g = generators::connected_random(48, 0.08, 1, &mut rng);
    let f = 8usize;
    let trials = 2000;

    // ---- (a) cycle-space slack sweep ------------------------------------
    let mut rows = Vec::new();
    for slack in [1usize, 2, 4, 8, 16, 32] {
        let mut errors = 0usize;
        for trial in 0..trials {
            let scheme =
                CycleSpaceScheme::label_with_bits(&g, f + slack, Seed::new(trial as u64)).unwrap();
            let faults = ftl_bench::sample_faults(&g, f, &mut rng);
            let s = ftl_bench::sample_vertex(&g, &mut rng);
            let t = ftl_bench::sample_vertex(&g, &mut rng);
            let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
            let got =
                ftl_cycle_space::decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
            let truth = connected_avoiding(&g, s, t, &forbidden_mask(&g, &faults));
            if got != truth {
                errors += 1;
            }
        }
        rows.push(vec![
            format!("b = f + {slack}"),
            format!("{errors}/{trials}"),
            format!("~2^-{slack}"),
        ]);
    }
    ftl_bench::print_table(
        "Ablation (a): cycle-space slack bits vs decode error rate (f = 8, er-48)",
        &["bit budget", "errors", "analysis"],
        &rows,
    );

    // ---- (b) sketch unit sweep -------------------------------------------
    let mut rows = Vec::new();
    for units in [1usize, 2, 4, 8, 16, 32] {
        let params = SketchParams::for_graph(&g).with_units(units);
        let mut errors = 0usize;
        for trial in 0..trials / 4 {
            let scheme = SketchScheme::label(&g, &params, Seed::new(trial as u64)).unwrap();
            let faults = ftl_bench::sample_faults(&g, f, &mut rng);
            let s = ftl_bench::sample_vertex(&g, &mut rng);
            let t = ftl_bench::sample_vertex(&g, &mut rng);
            let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
            let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
            let truth = connected_avoiding(&g, s, t, &forbidden_mask(&g, &faults));
            if out.connected != truth {
                errors += 1;
            }
        }
        rows.push(vec![
            units.to_string(),
            format!("{errors}/{}", trials / 4),
            ftl_bench::fmt_bits(params.sketch_bits()),
        ]);
    }
    ftl_bench::print_table(
        "Ablation (b): sketch units L vs decode error rate (f = 8, er-48)",
        &["units L", "errors", "sketch bits"],
        &rows,
    );
    println!("\nReading: both knobs buy reliability geometrically; the library defaults");
    println!("(slack >= 16, L = 4 log n + 8) sit far right of the failure cliff.");
}
