//! E9 / Theorem 5.3: forbidden-set routing (faults known) — delivery,
//! stretch vs the (8k-2)(|F|+1) bound, header bits.

use ftl_graph::generators;
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;

fn main() {
    let mut rng = ftl_bench::rng(0xE9);
    let mut rows = Vec::new();
    let graphs = vec![
        ("grid-5x5", generators::grid(5, 5)),
        ("er-24", generators::connected_random(24, 0.1, 1, &mut rng)),
    ];
    for (name, g) in &graphs {
        for k in [2u32, 3] {
            for f in [1usize, 2, 4] {
                let scheme = FtRoutingScheme::new(g, RoutingParams::new(k, f), Seed::new(77));
                let trials = 40;
                let mut delivered = 0usize;
                let mut cut = 0usize;
                let mut worst: f64 = 1.0;
                let mut sum = 0.0;
                let mut max_header = 0usize;
                for _ in 0..trials {
                    let faults: std::collections::HashSet<_> =
                        ftl_bench::sample_faults(g, f, &mut rng)
                            .into_iter()
                            .collect();
                    let s = ftl_bench::sample_vertex(g, &mut rng);
                    let t = ftl_bench::sample_vertex(g, &mut rng);
                    let out = scheme.route_forbidden_set(g, s, t, &faults);
                    max_header = max_header.max(out.max_header_bits);
                    match (out.delivered, out.optimal) {
                        (true, Some(_)) => {
                            delivered += 1;
                            if let Some(st) = out.stretch() {
                                worst = worst.max(st);
                                sum += st;
                            }
                        }
                        (false, None) => cut += 1,
                        other => panic!("delivery mismatch {other:?}"),
                    }
                }
                rows.push(vec![
                    name.to_string(),
                    k.to_string(),
                    f.to_string(),
                    format!("{delivered}+{cut}cut/{trials}"),
                    ftl_bench::f2(sum / delivered.max(1) as f64),
                    ftl_bench::f2(worst),
                    scheme.forbidden_set_stretch_bound(f).to_string(),
                    ftl_bench::fmt_bits(max_header),
                ]);
            }
        }
    }
    ftl_bench::print_table(
        "E9 / Theorem 5.3: forbidden-set routing (paper bound (8k-2)(|F|+1))",
        &[
            "graph",
            "k",
            "f",
            "delivered",
            "mean stretch",
            "worst stretch",
            "paper bound",
            "max header",
        ],
        &rows,
    );
}
