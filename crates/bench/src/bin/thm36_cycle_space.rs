//! E6 / Theorem 3.6: the cycle-space connectivity labels — label bits
//! O(f + log n), decode time poly(f, log n), empirical correctness.

use ftl_cycle_space::{decode, CycleSpaceScheme};
use ftl_graph::generators;
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_seeded::Seed;
use std::time::Instant;

fn main() {
    let mut rng = ftl_bench::rng(0xE6);
    let mut rows = Vec::new();
    for n in [64usize, 256, 1024, 4096] {
        let g = generators::connected_random(n, 8.0 / n as f64, 1, &mut rng);
        for f in [4usize, 16, 64] {
            let scheme = CycleSpaceScheme::label(&g, f, Seed::new(n as u64)).unwrap();
            let trials = 200;
            let mut errors = 0usize;
            let t0 = Instant::now();
            let mut decode_time = 0u128;
            for _ in 0..trials {
                let faults = ftl_bench::sample_faults(&g, f, &mut rng);
                let s = ftl_bench::sample_vertex(&g, &mut rng);
                let t = ftl_bench::sample_vertex(&g, &mut rng);
                let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
                let d0 = Instant::now();
                let got = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
                decode_time += d0.elapsed().as_nanos();
                let mask = forbidden_mask(&g, &faults);
                if got != connected_avoiding(&g, s, t, &mask) {
                    errors += 1;
                }
            }
            let _ = t0;
            rows.push(vec![
                n.to_string(),
                f.to_string(),
                scheme.edge_label_bits().to_string(),
                scheme.vertex_label_bits().to_string(),
                format!("{:.1} us", decode_time as f64 / trials as f64 / 1000.0),
                format!("{errors}/{trials}"),
            ]);
        }
    }
    ftl_bench::print_table(
        "E6 / Theorem 3.6: cycle-space labels (paper: edge O(f + log n) bits, vertex O(log n))",
        &[
            "n",
            "f",
            "edge label bits",
            "vertex label bits",
            "decode time",
            "errors",
        ],
        &rows,
    );
}
