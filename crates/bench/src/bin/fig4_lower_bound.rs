//! E5 / Figure 4 + Theorem 1.6: the Ω(f) stretch lower bound on the
//! (f+1)-disjoint-paths gadget.

use ftl_graph::generators;
use ftl_routing::lower_bound::{closed_form_expected_stretch, expected_gadget_stretch};

fn main() {
    let mut rng = ftl_bench::rng(0xF164);
    let len = 32u64;
    let mut rows = Vec::new();
    for f in [1usize, 2, 4, 8, 16] {
        let (g, s, t, last) = generators::lower_bound_gadget(f, len as usize);
        let emp = expected_gadget_stretch(&g, s, t, &last, len, 20_000, &mut rng);
        let cf = closed_form_expected_stretch(f + 1, len);
        rows.push(vec![
            f.to_string(),
            format!("{}", g.num_vertices()),
            ftl_bench::f2(emp),
            ftl_bench::f2(cf),
            ftl_bench::f2(f as f64), // Omega(f) reference line
        ]);
    }
    ftl_bench::print_table(
        "E5 / Figure 4: expected stretch on the lower-bound gadget (L = 32)",
        &[
            "f",
            "n",
            "measured E[stretch]",
            "closed form",
            "Omega(f) reference",
        ],
        &rows,
    );
    println!("\nShape check: measured stretch grows linearly in f, as Theorem 1.6 demands.");
}
