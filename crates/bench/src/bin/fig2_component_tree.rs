//! E3 / Figure 2: component tree of T \ F from ancestry labels
//! (Claim 3.14): correctness against direct computation + O(f log f)
//! build-time scaling.

use ftl_graph::traversal::{connected_components, forbidden_mask};
use ftl_graph::{generators, SpanningTree, VertexId};
use ftl_labels::{AncestryLabel, ComponentTree, FaultTreeEdge};
use std::time::Instant;

fn main() {
    let mut rng = ftl_bench::rng(0xF162);
    let n = 4096;
    let g = generators::random_tree(n, &mut rng);
    let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
    let labels: Vec<AncestryLabel> = (0..n)
        .map(|i| AncestryLabel::of(&tree, VertexId::new(i)))
        .collect();
    let mut rows = Vec::new();
    for f in [1usize, 4, 16, 64, 256] {
        let faults = ftl_bench::sample_faults(&g, f, &mut rng);
        let fte: Vec<FaultTreeEdge> = faults
            .iter()
            .map(|&e| {
                let ed = g.edge(e);
                FaultTreeEdge::from_endpoints(labels[ed.u().index()], labels[ed.v().index()])
                    .expect("tree edge")
            })
            .collect();
        // Build many times for a stable timing.
        let reps = 2000;
        let t0 = Instant::now();
        let mut ct = ComponentTree::new(&fte, tree.max_time());
        for _ in 1..reps {
            ct = ComponentTree::new(&fte, tree.max_time());
        }
        let build_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
        // Correctness: same-component relation matches ground truth.
        let mask = forbidden_mask(&g, &faults);
        let (truth, _) = connected_components(&g, &mask);
        let mut ok = true;
        for a in (0..n).step_by(17) {
            for b in (0..n).step_by(29) {
                let same_ct = ct.component_of(labels[a]) == ct.component_of(labels[b]);
                ok &= same_ct == (truth[a] == truth[b]);
            }
        }
        rows.push(vec![
            f.to_string(),
            ct.num_components().to_string(),
            format!("{build_ns:.0} ns"),
            if ok {
                "exact".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    ftl_bench::print_table(
        "E3 / Figure 2: component tree from ancestry labels (Claim 3.14), n = 4096",
        &[
            "f",
            "components",
            "build time (O(f log f))",
            "vs ground truth",
        ],
        &rows,
    );
}
