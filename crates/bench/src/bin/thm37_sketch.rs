//! E7 / Theorem 3.7: the sketch connectivity labels — label bits O(log^3 n)
//! independent of f, decode time ~O(f), empirical correctness.

use ftl_graph::generators;
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_seeded::Seed;
use ftl_sketch::{decode, SketchParams, SketchScheme};
use std::time::Instant;

fn main() {
    let mut rng = ftl_bench::rng(0xE7);
    let mut rows = Vec::new();
    for n in [64usize, 256, 1024] {
        let g = generators::connected_random(n, 8.0 / n as f64, 1, &mut rng);
        let scheme =
            SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(n as u64)).unwrap();
        for f in [4usize, 16, 64] {
            let trials = 100;
            let mut errors = 0usize;
            let mut decode_time = 0u128;
            for _ in 0..trials {
                let faults = ftl_bench::sample_faults(&g, f, &mut rng);
                let s = ftl_bench::sample_vertex(&g, &mut rng);
                let t = ftl_bench::sample_vertex(&g, &mut rng);
                let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
                let d0 = Instant::now();
                let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
                decode_time += d0.elapsed().as_nanos();
                let mask = forbidden_mask(&g, &faults);
                if out.connected != connected_avoiding(&g, s, t, &mask) {
                    errors += 1;
                }
            }
            rows.push(vec![
                n.to_string(),
                f.to_string(),
                ftl_bench::fmt_bits(scheme.edge_label_bits()),
                scheme.vertex_label_bits().to_string(),
                format!("{:.1} us", decode_time as f64 / trials as f64 / 1000.0),
                format!("{errors}/{trials}"),
            ]);
        }
    }
    ftl_bench::print_table(
        "E7 / Theorem 3.7: sketch labels (paper: O(log^3 n) bits, independent of f)",
        &[
            "n",
            "f",
            "edge label (tree, max)",
            "vertex label bits",
            "decode time",
            "errors",
        ],
        &rows,
    );
    println!("\nNote: edge label bits are flat across f for fixed n, and grow polylog in n.");
}
