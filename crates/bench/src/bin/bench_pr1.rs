//! PR 1 kernel benchmark: before/after numbers for the GF(2) elimination
//! rewrite and the parallel construction sweeps, written to
//! `BENCH_pr1.json` at the repo root.
//!
//! "Before" is the scan-based kernel preserved verbatim in
//! `ftl_gf2::reference` (O(rank) pivot scans, per-insert re-sorting,
//! per-row allocations); "after" is the pivot-indexed [`ftl_gf2::Basis`].
//! For the construction sweeps, serial-vs-parallel is toggled at runtime
//! via [`ftl_par::force_serial`], so on a single-core host both columns
//! legitimately coincide (the recorded `cores` field says which).
//!
//! Run with: `cargo run -p ftl-bench --bin bench_pr1 --release`

use ftl_cycle_space::CycleSpaceScheme;
use ftl_gf2::{reference, BitVec};
use ftl_graph::Graph;
use ftl_routing::{FtRoutingScheme, RoutingParams};
use ftl_seeded::Seed;
use ftl_sketch::{SketchParams, SketchScheme};
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall-clock nanoseconds per call over enough repetitions to fill
/// ~20 ms per sample, 7 samples.
fn measure_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().as_nanos().max(1);
    let iters = ((20_000_000u128 / once).clamp(1, 1_000_000)) as u64;
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Rebuilds the augmented vectors `φ′(e)` of Section 3.1.3 from public
/// label material, so the scan-based solver can decode the exact same
/// systems the production decoder solves.
fn augmented_columns(
    scheme: &CycleSpaceScheme,
    s: ftl_graph::VertexId,
    t: ftl_graph::VertexId,
    faults: &[ftl_graph::EdgeId],
) -> (Vec<BitVec>, usize) {
    let sl = scheme.vertex_label(s);
    let tl = scheme.vertex_label(t);
    let cols: Vec<BitVec> = faults
        .iter()
        .map(|&e| {
            let el = scheme.edge_label(e);
            let on_s = el.on_root_path_of(&sl.anc);
            let on_t = el.on_root_path_of(&tl.anc);
            let mut prefix = BitVec::zeros(2);
            if on_s && !on_t {
                prefix.set(0, true);
            } else if on_t && !on_s {
                prefix.set(1, true);
            }
            prefix.concat(&el.phi)
        })
        .collect();
    (cols, scheme.bits_b())
}

/// The Lemma 3.5 decode loop over a pluggable solver.
fn decode_with(
    cols: &[BitVec],
    b: usize,
    solver: impl Fn(&[BitVec], &BitVec) -> Option<BitVec>,
) -> bool {
    for wbit in [0usize, 1] {
        let mut w = BitVec::zeros(b + 2);
        w.set(wbit, true);
        if solver(cols, &w).is_some() {
            return false;
        }
    }
    true
}

struct Row {
    json: String,
    human: String,
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut rng = ftl_bench::rng(2);
    let mut decoding_rows: Vec<Row> = Vec::new();
    let mut labeling_rows: Vec<Row> = Vec::new();
    let mut routing_rows: Vec<Row> = Vec::new();
    let mut basis_rows: Vec<Row> = Vec::new();

    // ------------------------------------------------------------------
    // Decoding: the Lemma 3.5 systems from real 64-vertex-suite labels,
    // solved by the scan-based baseline vs the pivot-indexed kernel.
    // ------------------------------------------------------------------
    for workload in ftl_bench::standard_suite(&mut rng) {
        let g = &workload.graph;
        let scheme = CycleSpaceScheme::label(g, 64, Seed::new(3)).expect("suite is connected");
        for f in [4usize, 16, 64] {
            let f = f.min(g.num_edges());
            let faults = ftl_bench::sample_faults(g, f, &mut rng);
            let s = ftl_bench::sample_vertex(g, &mut rng);
            let t = ftl_bench::sample_vertex(g, &mut rng);
            let sl = scheme.vertex_label(s);
            let tl = scheme.vertex_label(t);
            let flabels: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
            // Before: the seed decoder — assemble the augmented columns,
            // then run the scan-based solver once per target.
            let before = measure_ns(|| {
                let (cols, b) = augmented_columns(&scheme, s, t, &faults);
                decode_with(&cols, b, reference::solve_naive)
            });
            // After: the production decoder (pivot-indexed basis built
            // once, both targets expressed from it).
            let after = measure_ns(|| ftl_cycle_space::decode(&sl, &tl, &flabels));
            // Sanity: both kernels agree.
            {
                let (cols, b) = augmented_columns(&scheme, s, t, &faults);
                assert_eq!(
                    decode_with(&cols, b, reference::solve_naive),
                    ftl_cycle_space::decode(&sl, &tl, &flabels),
                    "kernel disagreement on {}",
                    workload.name
                );
            }
            let speedup = before / after;
            decoding_rows.push(Row {
                json: format!(
                    "{{\"workload\": \"{}\", \"f\": {f}, \"naive_scan_ns\": {before:.0}, \"pivot_indexed_ns\": {after:.0}, \"speedup\": {speedup:.2}}}",
                    workload.name
                ),
                human: format!(
                    "decode {:>9} f={f:<3} scan {:>10.0} ns  pivot {:>10.0} ns  speedup {speedup:.2}x",
                    workload.name, before, after
                ),
            });
        }
    }

    // ------------------------------------------------------------------
    // Raw basis insertion at decoder-like shapes (the kernel in isolation).
    // ------------------------------------------------------------------
    for (dim, nvecs) in [(64usize, 32usize), (128, 96), (256, 192)] {
        let mut stream = Seed::new(11).stream();
        let vecs: Vec<BitVec> = (0..nvecs)
            .map(|_| {
                let mut v = BitVec::zeros(dim);
                v.randomize(&mut stream);
                v
            })
            .collect();
        let before = measure_ns(|| {
            let mut basis = reference::NaiveBasis::new(dim, nvecs);
            for v in &vecs {
                basis.insert(v);
            }
            basis.rank()
        });
        let after = measure_ns(|| {
            let mut basis = ftl_gf2::Basis::new(dim, nvecs);
            basis.insert_all(&vecs);
            basis.rank()
        });
        let speedup = before / after;
        basis_rows.push(Row {
            json: format!(
                "{{\"dim\": {dim}, \"vectors\": {nvecs}, \"naive_scan_ns\": {before:.0}, \"pivot_indexed_ns\": {after:.0}, \"speedup\": {speedup:.2}}}"
            ),
            human: format!(
                "basis dim={dim:<4} vecs={nvecs:<4} scan {before:>10.0} ns  pivot {after:>10.0} ns  speedup {speedup:.2}x"
            ),
        });
    }

    // ------------------------------------------------------------------
    // Labeling: serial vs parallel construction on the 64-vertex suite.
    // ------------------------------------------------------------------
    let time_both = |build: &mut dyn FnMut()| -> (f64, f64) {
        ftl_par::force_serial(true);
        let serial = measure_ns(&mut *build);
        ftl_par::force_serial(false);
        let parallel = measure_ns(build);
        (serial, parallel)
    };
    for workload in ftl_bench::standard_suite(&mut rng) {
        let g: &Graph = &workload.graph;
        let (serial, parallel) = time_both(&mut || {
            std::hint::black_box(CycleSpaceScheme::label(g, 16, Seed::new(1)).expect("connected"));
        });
        labeling_rows.push(Row {
            json: format!(
                "{{\"workload\": \"{}\", \"scheme\": \"cycle_space\", \"f\": 16, \"serial_ns\": {serial:.0}, \"parallel_ns\": {parallel:.0}, \"speedup\": {:.2}}}",
                workload.name, serial / parallel
            ),
            human: format!(
                "label  {:>9} cycle_space serial {serial:>11.0} ns  parallel {parallel:>11.0} ns  speedup {:.2}x",
                workload.name, serial / parallel
            ),
        });
        let params = SketchParams::for_graph(g).with_units(8);
        let (serial, parallel) = time_both(&mut || {
            std::hint::black_box(SketchScheme::label(g, &params, Seed::new(1)).expect("connected"));
        });
        labeling_rows.push(Row {
            json: format!(
                "{{\"workload\": \"{}\", \"scheme\": \"sketch\", \"units\": 8, \"serial_ns\": {serial:.0}, \"parallel_ns\": {parallel:.0}, \"speedup\": {:.2}}}",
                workload.name, serial / parallel
            ),
            human: format!(
                "label  {:>9} sketch      serial {serial:>11.0} ns  parallel {parallel:>11.0} ns  speedup {:.2}x",
                workload.name, serial / parallel
            ),
        });
    }

    // ------------------------------------------------------------------
    // Routing preprocessing: serial vs parallel per-tree construction.
    // ------------------------------------------------------------------
    {
        let g = ftl_graph::generators::grid(5, 5);
        for f in [1usize, 2] {
            let (serial, parallel) = time_both(&mut || {
                std::hint::black_box(
                    FtRoutingScheme::new(&g, RoutingParams::new(2, f), Seed::new(5)).num_scales(),
                );
            });
            routing_rows.push(Row {
                json: format!(
                    "{{\"workload\": \"grid-5x5\", \"f\": {f}, \"serial_ns\": {serial:.0}, \"parallel_ns\": {parallel:.0}, \"speedup\": {:.2}}}",
                    serial / parallel
                ),
                human: format!(
                    "route  grid-5x5  f={f} preprocess serial {serial:>12.0} ns  parallel {parallel:>12.0} ns  speedup {:.2}x",
                    serial / parallel
                ),
            });
        }
    }

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"pr\": 1,").unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(
        json,
        "  \"note\": \"before = scan-based NaiveBasis kernel / forced-serial sweeps; after = pivot-indexed Basis + BitMatrix + parallel sweeps. On a 1-core host serial and parallel legitimately coincide.\","
    )
    .unwrap();
    let emit = |json: &mut String, key: &str, rows: &[Row], last: bool| {
        writeln!(json, "  \"{key}\": [").unwrap();
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(json, "    {}{comma}", r.json).unwrap();
        }
        writeln!(json, "  ]{}", if last { "" } else { "," }).unwrap();
    };
    emit(&mut json, "decoding", &decoding_rows, false);
    emit(&mut json, "basis_insert", &basis_rows, false);
    emit(&mut json, "labeling", &labeling_rows, false);
    emit(&mut json, "routing_preprocess", &routing_rows, true);
    writeln!(json, "}}").unwrap();

    for r in decoding_rows
        .iter()
        .chain(&basis_rows)
        .chain(&labeling_rows)
        .chain(&routing_rows)
    {
        println!("{}", r.human);
    }

    let out = std::env::var("BENCH_PR1_OUT").unwrap_or_else(|_| "BENCH_pr1.json".into());
    std::fs::write(&out, &json).expect("write benchmark report");
    println!("\nwrote {out}");
}
