//! The man-in-the-middle proxy: accept, draw the connection's plan,
//! pump bytes both ways, and misbehave exactly as planned.
//!
//! Thread model (mirrors `ftl-server`: plain blocking I/O, no async):
//!
//! ```text
//! acceptor ──spawns──▶ handler (1 per connection)
//!                         │ plan = config.plan_for(index)
//!                         │ ResetImmediate → tear down
//!                         │ Blackhole      → read-and-discard forever
//!                         │ else: connect upstream, spawn the
//!                         ▼        server→client pump, run client→server
//!                      pump ⇄ pump   (split/throttle shaping, byte-counted
//!                                     resets, garbage splices)
//! ```
//!
//! Both pumps poll short read timeouts so they observe the proxy's stop
//! flag and their connection's shared kill flag; a mid-stream reset in
//! either direction tears both down. Fault *events* (not plans) are
//! counted into a per-proxy [`ChaosStats`] and mirrored into the
//! process-wide [`ftl_obs::global`] registry, so a metrics scrape of a
//! co-resident server shows `ftl_chaos_*` families that account for every
//! fault actually fired — the accounting the chaos acceptance scenario
//! asserts against.

use crate::plan::{ConnFault, ConnPlan, Direction, PlanConfig, TAG_GARBAGE_BYTES};
use ftl_obs::Counter;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often pumps and the blackhole sink wake to check stop/kill flags.
const POLL: Duration = Duration::from_millis(5);

/// How long a handler waits for its upstream connect.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Fault events fired by one proxy instance (relaxed atomics, mirrored
/// into [`ftl_obs::global`]'s `chaos` family so scrapes see them).
#[derive(Debug, Default)]
pub struct ChaosStats {
    connections: Counter,
    passed: Counter,
    resets_immediate: Counter,
    resets_midstream: Counter,
    blackholes: Counter,
    garbage_injections: Counter,
    shaped: Counter,
    bytes_to_server: Counter,
    bytes_to_client: Counter,
}

/// A point-in-time view of a proxy's fault accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Connections accepted.
    pub connections: u64,
    /// Connections whose fault roll was `Pass` (shaping may still have
    /// applied).
    pub passed: u64,
    /// Immediate resets fired.
    pub resets_immediate: u64,
    /// Mid-stream (byte-counted, typically mid-frame) resets fired.
    pub resets_midstream: u64,
    /// Black holes engaged.
    pub blackholes: u64,
    /// Garbage splices fired.
    pub garbage_injections: u64,
    /// Connections that ran with split and/or throttle shaping.
    pub shaped: u64,
    /// Bytes forwarded client→server.
    pub bytes_to_server: u64,
    /// Bytes forwarded server→client.
    pub bytes_to_client: u64,
}

impl ChaosReport {
    /// Total fault events fired (resets + black holes + garbage).
    pub fn faults_fired(&self) -> u64 {
        self.resets_immediate + self.resets_midstream + self.blackholes + self.garbage_injections
    }
}

impl ChaosStats {
    fn snapshot(&self) -> ChaosReport {
        ChaosReport {
            connections: self.connections.get(),
            passed: self.passed.get(),
            resets_immediate: self.resets_immediate.get(),
            resets_midstream: self.resets_midstream.get(),
            blackholes: self.blackholes.get(),
            garbage_injections: self.garbage_injections.get(),
            shaped: self.shaped.get(),
            bytes_to_server: self.bytes_to_server.get(),
            bytes_to_client: self.bytes_to_client.get(),
        }
    }
}

/// Namespace for [`ChaosProxy::spawn`].
pub struct ChaosProxy;

/// A running proxy; [`shutdown`](ChaosHandle::shutdown) stops it and
/// returns the fault accounting. Dropping the handle signals the threads
/// to stop without blocking.
pub struct ChaosHandle {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen`, forwards every accepted connection to `upstream`
    /// under `config`'s seeded plan, and returns the handle.
    pub fn spawn(
        listen: impl ToSocketAddrs,
        upstream: SocketAddr,
        config: PlanConfig,
    ) -> std::io::Result<ChaosHandle> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChaosStats::default());
        let acceptor = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("ftl-chaos-accept".to_string())
                .spawn(move || accept_loop(&listener, upstream, &config, &stop, &stats))?
        };
        Ok(ChaosHandle {
            local,
            stop,
            stats,
            acceptor: Some(acceptor),
        })
    }
}

impl ChaosHandle {
    /// The proxy's bound address — point clients here instead of at the
    /// server.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A live view of the fault accounting.
    pub fn report(&self) -> ChaosReport {
        self.stats.snapshot()
    }

    /// Stops accepting, tears every live connection down, joins the
    /// threads, and returns the final fault accounting.
    pub fn shutdown(mut self) -> ChaosReport {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for ChaosHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    config: &PlanConfig,
    stop: &Arc<AtomicBool>,
    stats: &Arc<ChaosStats>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut index = 0u64;
    while !stop.load(Ordering::Relaxed) {
        handlers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((client, _)) => {
                let plan = config.plan_for(index);
                let garbage_seed = config.conn_seed(index).derive(TAG_GARBAGE_BYTES);
                index += 1;
                stats.connections.inc();
                ftl_obs::global().chaos.connections.inc();
                if plan.shaping.is_active() {
                    stats.shaped.inc();
                    ftl_obs::global().chaos.shaped.inc();
                }
                if matches!(plan.fault, ConnFault::Pass) {
                    stats.passed.inc();
                }
                let stop = Arc::clone(stop);
                let stats = Arc::clone(stats);
                let spawned = std::thread::Builder::new()
                    .name("ftl-chaos-conn".to_string())
                    .spawn(move || {
                        handle_conn(client, upstream, plan, garbage_seed, &stop, &stats);
                    });
                if let Ok(h) = spawned {
                    handlers.push(h);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_conn(
    client: TcpStream,
    upstream: SocketAddr,
    plan: ConnPlan,
    garbage_seed: ftl_seeded::Seed,
    stop: &Arc<AtomicBool>,
    stats: &Arc<ChaosStats>,
) {
    let _ = client.set_nodelay(true);
    match plan.fault {
        ConnFault::ResetImmediate => {
            stats.resets_immediate.inc();
            ftl_obs::global().chaos.resets.inc();
            let _ = client.shutdown(Shutdown::Both);
        }
        ConnFault::Blackhole => {
            stats.blackholes.inc();
            ftl_obs::global().chaos.blackholes.inc();
            blackhole(client, stop);
        }
        _ => {
            let Ok(server) = TcpStream::connect_timeout(&upstream, CONNECT_TIMEOUT) else {
                let _ = client.shutdown(Shutdown::Both);
                return;
            };
            let _ = server.set_nodelay(true);
            let kill = Arc::new(AtomicBool::new(false));
            let back = {
                let (Ok(src), Ok(dst)) = (server.try_clone(), client.try_clone()) else {
                    return;
                };
                let stop = Arc::clone(stop);
                let kill = Arc::clone(&kill);
                let stats = Arc::clone(stats);
                std::thread::Builder::new()
                    .name("ftl-chaos-pump".to_string())
                    .spawn(move || {
                        pump(
                            src,
                            dst,
                            Direction::ToClient,
                            &plan,
                            garbage_seed,
                            &stop,
                            &kill,
                            &stats,
                        );
                    })
            };
            pump(
                client,
                server,
                Direction::ToServer,
                &plan,
                garbage_seed,
                stop,
                &kill,
                stats,
            );
            if let Ok(h) = back {
                let _ = h.join();
            }
        }
    }
}

/// Reads and discards the client's bytes forever: the connection looks
/// accepted and writable, but nothing is ever forwarded or answered.
fn blackhole(mut client: TcpStream, stop: &AtomicBool) {
    if client.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut sink = [0u8; 1024];
    while !stop.load(Ordering::Relaxed) {
        match client.read(&mut sink) {
            // Even the client's EOF is swallowed: the hole never answers
            // and never hangs up — only its own deadline gets a caller
            // out, which is exactly what the resilient client must
            // survive.
            Ok(0) => std::thread::sleep(POLL),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
    let _ = client.shutdown(Shutdown::Both);
}

/// One direction's byte pump, applying the plan's shaping and any
/// byte-positioned fault assigned to this direction.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    plan: &ConnPlan,
    garbage_seed: ftl_seeded::Seed,
    stop: &AtomicBool,
    kill: &AtomicBool,
    stats: &ChaosStats,
) {
    if src.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut buf = [0u8; 2048];
    let mut forwarded = 0u64;
    let mut garbage_done = false;
    loop {
        if stop.load(Ordering::Relaxed) || kill.load(Ordering::Relaxed) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let n = match src.read(&mut buf) {
            // Clean EOF: half-close downstream so the peer sees it, but
            // leave the opposite pump running (responses may still be in
            // flight the other way).
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => {
                kill.store(true, Ordering::Relaxed);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        let Some(mut chunk) = buf.get(..n) else {
            return;
        };
        // Byte-counted reset: forward the remaining budget (a deliberate
        // partial frame), then tear both directions down.
        let mut reset_now = false;
        if let ConnFault::ResetAfter { dir: d, bytes } = plan.fault {
            if d == dir {
                let left = bytes.saturating_sub(forwarded);
                if (chunk.len() as u64) >= left {
                    chunk = chunk.get(..left as usize).unwrap_or(chunk);
                    reset_now = true;
                }
            }
        }
        if forward(&mut dst, chunk, plan, dir, stats).is_err() {
            kill.store(true, Ordering::Relaxed);
            let _ = src.shutdown(Shutdown::Both);
            return;
        }
        forwarded += chunk.len() as u64;
        if reset_now {
            stats.resets_midstream.inc();
            ftl_obs::global().chaos.resets.inc();
            kill.store(true, Ordering::Relaxed);
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        // Garbage splice: after the faithful prefix, inject seeded bytes
        // once, desyncing the peer's framing, then keep forwarding.
        if let ConnFault::InjectGarbage {
            dir: d,
            after_bytes,
            len,
        } = plan.fault
        {
            if d == dir && !garbage_done && forwarded >= after_bytes {
                garbage_done = true;
                let mut words = garbage_seed.stream();
                let garbage: Vec<u8> = (0..len).map(|_| words() as u8).collect();
                if forward(&mut dst, &garbage, plan, dir, stats).is_err() {
                    kill.store(true, Ordering::Relaxed);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                stats.garbage_injections.inc();
                ftl_obs::global().chaos.garbage.inc();
            }
        }
    }
}

/// Writes `bytes` downstream under the plan's shaping (split chunks with
/// delays, byte-rate throttle) and counts them.
fn forward(
    dst: &mut TcpStream,
    bytes: &[u8],
    plan: &ConnPlan,
    dir: Direction,
    stats: &ChaosStats,
) -> std::io::Result<()> {
    let step = plan
        .shaping
        .split_chunk
        .map(|c| c as usize)
        .unwrap_or(bytes.len().max(1));
    let mut rest = bytes;
    let mut first = true;
    while !rest.is_empty() {
        if !first && plan.shaping.split_chunk.is_some() && !plan.shaping.split_delay.is_zero() {
            std::thread::sleep(plan.shaping.split_delay);
        }
        first = false;
        let take = step.min(rest.len());
        let (piece, tail) = rest.split_at(take);
        dst.write_all(piece)?;
        dst.flush()?;
        rest = tail;
        if let Some(rate) = plan.shaping.throttle_bytes_per_sec {
            let ns = (piece.len() as u64).saturating_mul(1_000_000_000) / rate.max(1);
            if ns > 0 {
                std::thread::sleep(Duration::from_nanos(ns));
            }
        }
    }
    match dir {
        Direction::ToServer => stats.bytes_to_server.add(bytes.len() as u64),
        Direction::ToClient => stats.bytes_to_client.add(bytes.len() as u64),
    }
    Ok(())
}
