//! `ftl-chaos` — a seeded network-fault proxy for end-to-end chaos runs.
//!
//! A TCP man-in-the-middle that sits between `ftl-loadgen` (or any
//! client) and `ftl-serve` and executes a *reproducible* fault plan:
//!
//! - **Connection resets** — immediate (before a byte flows) or after a
//!   seeded byte count in a seeded direction, which lands mid-frame or
//!   mid-response often enough to exercise every torn-read path.
//! - **Black holes** — the connection is accepted and reads forever, but
//!   nothing is ever forwarded upstream; only a client-side deadline
//!   gets a caller out.
//! - **Garbage injection** — a burst of seeded bytes spliced into one
//!   direction, desyncing the peer's framing.
//! - **Partial/split writes** — frames forwarded in tiny chunks with
//!   delays between them, so readers see every prefix length.
//! - **Byte-rate throttling** — a crude token-less rate limit, for slow
//!   clients and slow servers.
//!
//! # Determinism
//!
//! Like `ftl-engine::inject`, every decision derives from a single
//! [`PlanConfig::seed`] through `ftl_seeded`'s keyed PRF — per-connection
//! sub-seeds are drawn by connection index (accept order), and each roll
//! (fault kind, direction, byte position, garbage content, shaping) uses
//! its own domain tag. Given the same seed, connection *k* always gets
//! the same [`ConnPlan`], so a failing chaos run replays exactly. The
//! accept *order* under concurrency is the only nondeterministic input;
//! plans are a pure function of that order.
//!
//! # Accounting
//!
//! Faults *fired* (not merely planned — a reset planned at byte 200 on a
//! 40-byte conversation never fires) are counted in the handle's
//! [`ChaosReport`] and mirrored into [`ftl_obs::global`]'s `ftl_chaos_*`
//! families, so a metrics scrape of a co-resident server accounts for
//! every injected fault. The chaos acceptance scenario
//! (`crates/server/tests/chaos_e2e.rs`) asserts that accounting.
//!
//! ```no_run
//! use ftl_chaos::{ChaosProxy, PlanConfig};
//!
//! let cfg = PlanConfig {
//!     seed: 42,
//!     reset_midstream_pm: 100, // 10% of connections reset mid-stream
//!     split_pm: 500,           // half run under split writes
//!     ..PlanConfig::default()
//! };
//! let proxy = ChaosProxy::spawn(
//!     "127.0.0.1:0",
//!     "127.0.0.1:7000".parse().unwrap(),
//!     cfg,
//! )
//! .unwrap();
//! // point clients at proxy.local_addr() ...
//! let report = proxy.shutdown();
//! assert!(report.connections >= report.faults_fired());
//! ```

#![forbid(unsafe_code)]

mod plan;
mod proxy;

pub use plan::{ConnFault, ConnPlan, Direction, PlanConfig, Shaping};
pub use proxy::{ChaosHandle, ChaosProxy, ChaosReport, ChaosStats};
