//! The seeded fault plan: which connections misbehave, and how.
//!
//! Every decision the proxy makes is a pure function of
//! `(PlanConfig::seed, connection index)` through `ftl_seeded::Seed`, the
//! same splittable PRF the engine's record-corruption harness
//! (`ftl_engine::inject`) and the labeling schemes use. Re-running a
//! chaos scenario with the same seed replays the *same* faults against
//! the same connection indices — a failing soak run is a repro, not an
//! anecdote.
//!
//! A connection's plan has two independent parts:
//!
//! * a **fault** ([`ConnFault`]) — at most one per connection, drawn by a
//!   per-mille roll: an immediate reset, a reset after a seeded byte
//!   count (which lands mid-frame more often than not), a black hole
//!   (accepted, read, never forwarded), or injected garbage bytes;
//! * **shaping** ([`Shaping`]) — orthogonal delivery degradation applied
//!   to whatever does flow: writes split into small delayed chunks,
//!   and/or a byte-rate throttle.

use ftl_seeded::Seed;
use std::time::Duration;

/// Which pump direction a byte-positioned fault applies to.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Direction {
    /// The client→server stream (requests).
    ToServer,
    /// The server→client stream (responses).
    ToClient,
}

impl Direction {
    /// Stable label for stats and debugging.
    pub fn name(self) -> &'static str {
        match self {
            Direction::ToServer => "to_server",
            Direction::ToClient => "to_client",
        }
    }
}

/// The at-most-one fault a connection is assigned.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum ConnFault {
    /// Forward faithfully (shaping may still apply).
    Pass,
    /// Tear the connection down the moment it is accepted — the client
    /// observes a connect that immediately dies.
    ResetImmediate,
    /// Forward exactly `bytes` bytes in direction `dir`, then tear both
    /// directions down. Byte counts are drawn small enough to land
    /// mid-frame routinely — this is the torn-frame generator.
    ResetAfter {
        /// The stream the byte budget counts.
        dir: Direction,
        /// Bytes forwarded before the teardown.
        bytes: u64,
    },
    /// Accept the connection and read its bytes forever, forwarding
    /// nothing and answering nothing: the client's only way out is its
    /// own deadline.
    Blackhole,
    /// After `after_bytes` forwarded bytes in direction `dir`, splice
    /// `len` seeded garbage bytes into the stream (desyncing the peer's
    /// framing), then keep forwarding faithfully.
    InjectGarbage {
        /// The stream the garbage is spliced into.
        dir: Direction,
        /// Faithful bytes before the splice.
        after_bytes: u64,
        /// Garbage byte count.
        len: u32,
    },
}

/// Delivery degradation applied to forwarded bytes (orthogonal to the
/// fault roll; both can apply to one connection).
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Shaping {
    /// Forwarded writes are split into chunks of at most this many bytes
    /// (`None` = whole reads forwarded as read).
    pub split_chunk: Option<u32>,
    /// Pause between split chunks.
    pub split_delay: Duration,
    /// Byte-rate ceiling across the connection (`None` = unthrottled).
    pub throttle_bytes_per_sec: Option<u64>,
}

impl Shaping {
    /// Whether any degradation applies.
    pub fn is_active(&self) -> bool {
        self.split_chunk.is_some() || self.throttle_bytes_per_sec.is_some()
    }
}

/// One connection's complete, deterministic misbehavior assignment.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct ConnPlan {
    /// The connection index the plan was drawn for (0-based accept
    /// order).
    pub conn: u64,
    /// The at-most-one fault.
    pub fault: ConnFault,
    /// Delivery shaping.
    pub shaping: Shaping,
}

/// Fault probabilities (per mille, rolled once per connection) and fault
/// shape parameters. The per-mille fields are *cumulative slots* out of
/// 1000: a connection draws one roll, and `reset_immediate_pm = 100,
/// blackhole_pm = 50` means 10 % immediate resets, 5 % black holes, and
/// the rest of the probability mass passes through. Slot sums over 1000
/// saturate in declaration order.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct PlanConfig {
    /// Master seed; every per-connection draw derives from it.
    pub seed: u64,
    /// ‰ of connections reset the moment they are accepted.
    pub reset_immediate_pm: u32,
    /// ‰ of connections reset after a seeded byte count (mid-frame).
    pub reset_midstream_pm: u32,
    /// ‰ of connections black-holed (accepted, never forwarded).
    pub blackhole_pm: u32,
    /// ‰ of connections that get garbage spliced into one direction.
    pub garbage_pm: u32,
    /// ‰ of connections whose writes are split into delayed chunks
    /// (independent of the fault roll).
    pub split_pm: u32,
    /// ‰ of connections throttled to
    /// [`throttle_bytes_per_sec`](PlanConfig::throttle_bytes_per_sec)
    /// (independent of the fault roll).
    pub throttle_pm: u32,
    /// Mid-stream reset points are drawn uniformly from
    /// `1..=reset_window_bytes`.
    pub reset_window_bytes: u64,
    /// Garbage splice points are drawn uniformly from
    /// `0..=garbage_window_bytes`.
    pub garbage_window_bytes: u64,
    /// Garbage bytes spliced per injection.
    pub garbage_len: u32,
    /// Chunk ceiling for split writes.
    pub split_chunk: u32,
    /// Pause between split chunks.
    pub split_delay: Duration,
    /// Byte-rate ceiling for throttled connections.
    pub throttle_bytes_per_sec: u64,
}

impl Default for PlanConfig {
    /// A calm default: everything passes through unshaped. Scenarios
    /// raise the per-mille knobs they want.
    fn default() -> Self {
        PlanConfig {
            seed: 1,
            reset_immediate_pm: 0,
            reset_midstream_pm: 0,
            blackhole_pm: 0,
            garbage_pm: 0,
            split_pm: 0,
            throttle_pm: 0,
            reset_window_bytes: 256,
            garbage_window_bytes: 64,
            garbage_len: 16,
            split_chunk: 3,
            split_delay: Duration::from_micros(200),
            throttle_bytes_per_sec: 64 << 10,
        }
    }
}

// Domain-separation tags for the per-connection draws.
const TAG_FAULT_ROLL: u64 = 0xC4A0_0001;
const TAG_SPLIT_ROLL: u64 = 0xC4A0_0002;
const TAG_THROTTLE_ROLL: u64 = 0xC4A0_0003;
const TAG_DIRECTION: u64 = 0xC4A0_0004;
const TAG_BYTE_POINT: u64 = 0xC4A0_0005;
/// Tag for the garbage byte stream itself (used by the proxy).
pub(crate) const TAG_GARBAGE_BYTES: u64 = 0xC4A0_0006;

impl PlanConfig {
    /// The seed all of connection `conn`'s draws derive from.
    pub(crate) fn conn_seed(&self, conn: u64) -> Seed {
        Seed::new(self.seed).derive(conn)
    }

    /// Draws connection `conn`'s plan. Pure and deterministic: the same
    /// `(config, conn)` always yields the same plan.
    pub fn plan_for(&self, conn: u64) -> ConnPlan {
        let s = self.conn_seed(conn);
        let roll = (s.prf1(TAG_FAULT_ROLL) % 1000) as u32;
        let dir = if s.prf1(TAG_DIRECTION) & 1 == 0 {
            Direction::ToServer
        } else {
            Direction::ToClient
        };
        let mut slot_end = 0u32;
        let mut in_slot = |width: u32| {
            let start = slot_end.min(1000);
            slot_end = slot_end.saturating_add(width);
            (start..slot_end.min(1000)).contains(&roll)
        };
        let fault = if in_slot(self.reset_immediate_pm) {
            ConnFault::ResetImmediate
        } else if in_slot(self.reset_midstream_pm) {
            let window = self.reset_window_bytes.max(1);
            ConnFault::ResetAfter {
                dir,
                bytes: 1 + s.prf1(TAG_BYTE_POINT) % window,
            }
        } else if in_slot(self.blackhole_pm) {
            ConnFault::Blackhole
        } else if in_slot(self.garbage_pm) {
            ConnFault::InjectGarbage {
                dir,
                after_bytes: s.prf1(TAG_BYTE_POINT) % (self.garbage_window_bytes + 1),
                len: self.garbage_len.max(1),
            }
        } else {
            ConnFault::Pass
        };
        let shaping = Shaping {
            split_chunk: ((s.prf1(TAG_SPLIT_ROLL) % 1000) < self.split_pm as u64)
                .then_some(self.split_chunk.max(1)),
            split_delay: self.split_delay,
            throttle_bytes_per_sec: ((s.prf1(TAG_THROTTLE_ROLL) % 1000) < self.throttle_pm as u64)
                .then_some(self.throttle_bytes_per_sec.max(1)),
        };
        ConnPlan {
            conn,
            fault,
            shaping,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stormy() -> PlanConfig {
        PlanConfig {
            seed: 42,
            reset_immediate_pm: 100,
            reset_midstream_pm: 200,
            blackhole_pm: 100,
            garbage_pm: 100,
            split_pm: 300,
            throttle_pm: 200,
            ..PlanConfig::default()
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a: Vec<ConnPlan> = (0..64).map(|c| stormy().plan_for(c)).collect();
        let b: Vec<ConnPlan> = (0..64).map(|c| stormy().plan_for(c)).collect();
        assert_eq!(a, b);
        let other: Vec<ConnPlan> = (0..64)
            .map(|c| {
                PlanConfig {
                    seed: 43,
                    ..stormy()
                }
                .plan_for(c)
            })
            .collect();
        assert_ne!(a, other, "different seeds draw different storms");
    }

    #[test]
    fn per_mille_slots_land_near_their_mass() {
        let cfg = stormy();
        let n = 4000u64;
        let mut immediate = 0u64;
        let mut mid = 0u64;
        let mut black = 0u64;
        let mut garbage = 0u64;
        let mut pass = 0u64;
        for c in 0..n {
            match cfg.plan_for(c).fault {
                ConnFault::ResetImmediate => immediate += 1,
                ConnFault::ResetAfter { .. } => mid += 1,
                ConnFault::Blackhole => black += 1,
                ConnFault::InjectGarbage { .. } => garbage += 1,
                ConnFault::Pass => pass += 1,
            }
        }
        // 10%/20%/10%/10%/50% with wide slack (PRF, not exact draws).
        assert!((200..=600).contains(&immediate), "{immediate}");
        assert!((500..=1100).contains(&mid), "{mid}");
        assert!((200..=600).contains(&black), "{black}");
        assert!((200..=600).contains(&garbage), "{garbage}");
        assert!(pass > 1500, "{pass}");
    }

    #[test]
    fn oversubscribed_slots_saturate_without_panicking() {
        let cfg = PlanConfig {
            reset_immediate_pm: 900,
            reset_midstream_pm: 900,
            blackhole_pm: 900,
            ..PlanConfig::default()
        };
        // Every roll lands in the first two slots; the rest get no mass.
        for c in 0..500 {
            assert!(!matches!(
                cfg.plan_for(c).fault,
                ConnFault::Blackhole | ConnFault::InjectGarbage { .. }
            ));
        }
    }

    #[test]
    fn midstream_resets_draw_positive_in_window_byte_points() {
        let cfg = PlanConfig {
            reset_midstream_pm: 1000,
            reset_window_bytes: 32,
            ..PlanConfig::default()
        };
        let mut seen_to_server = false;
        let mut seen_to_client = false;
        for c in 0..200 {
            match cfg.plan_for(c).fault {
                ConnFault::ResetAfter { dir, bytes } => {
                    assert!((1..=32).contains(&bytes), "{bytes}");
                    match dir {
                        Direction::ToServer => seen_to_server = true,
                        Direction::ToClient => seen_to_client = true,
                    }
                }
                other => panic!("expected ResetAfter, got {other:?}"),
            }
        }
        assert!(seen_to_server && seen_to_client, "both directions drawn");
    }

    #[test]
    fn shaping_rolls_are_independent_of_the_fault_roll() {
        let cfg = PlanConfig {
            split_pm: 1000,
            throttle_pm: 1000,
            ..PlanConfig::default()
        };
        let plan = cfg.plan_for(7);
        assert_eq!(plan.fault, ConnFault::Pass);
        assert!(plan.shaping.is_active());
        assert_eq!(plan.shaping.split_chunk, Some(cfg.split_chunk));
        assert_eq!(
            plan.shaping.throttle_bytes_per_sec,
            Some(cfg.throttle_bytes_per_sec)
        );
    }
}
