//! Proxy behavior against a local echo upstream: pass-through fidelity,
//! each fault kind's observable effect, and shaping integrity.

// Test-only crate: the crate-level panic-free wall targets the proxy's
// pump threads, not assertions.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_chaos::{ChaosProxy, PlanConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A streaming echo server: every accepted connection's bytes are written
/// straight back until EOF.
struct Echo {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Echo {
    fn spawn() -> Echo {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        let stop3 = Arc::clone(&stop2);
                        conns.push(std::thread::spawn(move || {
                            s.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
                            let mut buf = [0u8; 1024];
                            while !stop3.load(Ordering::Relaxed) {
                                match s.read(&mut buf) {
                                    Ok(0) => break,
                                    Ok(n) => {
                                        if s.write_all(&buf[..n]).is_err() {
                                            break;
                                        }
                                    }
                                    Err(e)
                                        if matches!(
                                            e.kind(),
                                            ErrorKind::WouldBlock
                                                | ErrorKind::TimedOut
                                                | ErrorKind::Interrupted
                                        ) => {}
                                    Err(_) => break,
                                }
                            }
                            let _ = s.shutdown(Shutdown::Both);
                        }));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Echo {
            addr,
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Echo {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Sends `payload`, half-closes the write side, and reads until EOF or
/// `deadline` elapses. Returns whatever came back.
fn send_and_drain(addr: SocketAddr, payload: &[u8], deadline: Duration) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(payload).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
    let start = Instant::now();
    let mut got = Vec::new();
    let mut buf = [0u8; 1024];
    while start.elapsed() < deadline {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
    got
}

#[test]
fn pass_through_echoes_faithfully() {
    let echo = Echo::spawn();
    let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, PlanConfig::default()).unwrap();
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    let got = send_and_drain(proxy.local_addr(), &payload, Duration::from_secs(5));
    assert_eq!(got, payload);
    let report = proxy.shutdown();
    assert_eq!(report.connections, 1);
    assert_eq!(report.passed, 1);
    assert_eq!(report.faults_fired(), 0);
    assert_eq!(report.bytes_to_server, payload.len() as u64);
    assert_eq!(report.bytes_to_client, payload.len() as u64);
}

#[test]
fn immediate_reset_kills_the_connection_before_any_byte() {
    let echo = Echo::spawn();
    let cfg = PlanConfig {
        reset_immediate_pm: 1000,
        ..PlanConfig::default()
    };
    let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, cfg).unwrap();
    let got = send_and_drain(proxy.local_addr(), b"hello", Duration::from_secs(2));
    assert!(got.is_empty(), "got {} bytes through a reset", got.len());
    let report = proxy.shutdown();
    assert_eq!(report.resets_immediate, 1);
    assert_eq!(report.bytes_to_server, 0);
}

#[test]
fn blackhole_accepts_and_swallows_without_forwarding() {
    let echo = Echo::spawn();
    let cfg = PlanConfig {
        blackhole_pm: 1000,
        ..PlanConfig::default()
    };
    let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, cfg).unwrap();
    let start = Instant::now();
    let got = send_and_drain(
        proxy.local_addr(),
        b"anyone home?",
        Duration::from_millis(300),
    );
    // The write succeeded (the proxy reads and discards) but nothing ever
    // comes back; only the caller's own deadline ends the wait.
    assert!(got.is_empty());
    assert!(start.elapsed() >= Duration::from_millis(300));
    let report = proxy.shutdown();
    assert_eq!(report.blackholes, 1);
    assert_eq!(report.bytes_to_server, 0);
    assert_eq!(report.bytes_to_client, 0);
}

#[test]
fn midstream_reset_delivers_a_strict_prefix_then_dies() {
    let echo = Echo::spawn();
    let cfg = PlanConfig {
        reset_midstream_pm: 1000,
        reset_window_bytes: 64,
        ..PlanConfig::default()
    };
    let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, cfg).unwrap();
    let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
    let got = send_and_drain(proxy.local_addr(), &payload, Duration::from_secs(5));
    // Whichever direction the budget was drawn for, the client sees at
    // most that many echoed bytes — always a strict prefix, never a
    // reordered or corrupted stream.
    assert!(got.len() < payload.len(), "reset never fired");
    assert_eq!(got.as_slice(), &payload[..got.len()], "prefix fidelity");
    let report = proxy.shutdown();
    assert_eq!(report.resets_midstream, 1);
}

#[test]
fn garbage_splice_desyncs_the_stream_by_exactly_len_bytes() {
    let echo = Echo::spawn();
    let cfg = PlanConfig {
        garbage_pm: 1000,
        garbage_window_bytes: 8,
        garbage_len: 32,
        ..PlanConfig::default()
    };
    let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, cfg).unwrap();
    let payload: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
    let got = send_and_drain(proxy.local_addr(), &payload, Duration::from_secs(5));
    assert_eq!(
        got.len(),
        payload.len() + 32,
        "exactly one garbage burst spliced in"
    );
    assert_ne!(got.as_slice(), &payload[..], "stream is desynced");
    let report = proxy.shutdown();
    assert_eq!(report.garbage_injections, 1);
}

#[test]
fn split_writes_preserve_content_exactly() {
    let echo = Echo::spawn();
    let cfg = PlanConfig {
        split_pm: 1000,
        split_chunk: 3,
        split_delay: Duration::from_micros(100),
        ..PlanConfig::default()
    };
    let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, cfg).unwrap();
    let payload: Vec<u8> = (0..600u32).map(|i| (i % 251) as u8).collect();
    let got = send_and_drain(proxy.local_addr(), &payload, Duration::from_secs(10));
    assert_eq!(got, payload, "splitting degrades timing, not content");
    let report = proxy.shutdown();
    assert_eq!(report.shaped, 1);
    assert_eq!(report.passed, 1, "shaping is orthogonal to the fault roll");
}

#[test]
fn throttle_slows_delivery_but_preserves_content() {
    let echo = Echo::spawn();
    let cfg = PlanConfig {
        throttle_pm: 1000,
        throttle_bytes_per_sec: 1 << 10,
        ..PlanConfig::default()
    };
    let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, cfg).unwrap();
    let payload: Vec<u8> = (0..64u32).map(|i| (i % 251) as u8).collect();
    let start = Instant::now();
    let got = send_and_drain(proxy.local_addr(), &payload, Duration::from_secs(10));
    assert_eq!(got, payload);
    // 64 bytes at 1 KiB/s is ~62 ms per direction; allow wide slack but
    // prove the throttle actually slept.
    assert!(
        start.elapsed() >= Duration::from_millis(50),
        "throttle too fast: {:?}",
        start.elapsed()
    );
    let report = proxy.shutdown();
    assert_eq!(report.shaped, 1);
}

#[test]
fn sequential_connections_draw_their_planned_mix_deterministically() {
    let echo = Echo::spawn();
    let cfg = PlanConfig {
        seed: 7,
        garbage_pm: 500,
        garbage_window_bytes: 4,
        garbage_len: 8,
        ..PlanConfig::default()
    };
    let run = || {
        let proxy = ChaosProxy::spawn("127.0.0.1:0", echo.addr, cfg).unwrap();
        for _ in 0..8 {
            let _ = send_and_drain(proxy.local_addr(), b"0123456789", Duration::from_secs(5));
        }
        proxy.shutdown()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same sequential drive, same report");
    assert!(a.garbage_injections > 0, "mix actually drew garbage");
    assert!(a.passed > 0, "mix actually drew passes");
    assert_eq!(a.connections, 8);
}
