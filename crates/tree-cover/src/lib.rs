//! Sparse tree covers `TC(G, ω, ρ, k)` (Definition 4.1, Proposition 4.2).
//!
//! A tree cover is a collection of rooted trees such that (1) every vertex
//! has a tree containing its whole `ρ`-ball, (2) every tree has radius at
//! most `(2k−1)·ρ`, and (3) every vertex appears in `Õ(k·n^{1/k})` trees.
//!
//! We implement a ball-growing sparse cover (substitution S2 in DESIGN.md):
//! repeatedly pick an unsatisfied center `v₀` and grow a radius `r` in steps
//! of `2ρ` while the number of *unsatisfied* centers within `r + 2ρ` exceeds
//! `n^{1/k}` times the number within `r`; emit the shortest-path tree of
//! `B_{r+ρ}(v₀)` and mark every center within `r` as satisfied. Properties
//! (1) and (2) hold by construction (the growth stops after at most `k−1`
//! steps because the center count multiplies by `n^{1/k} ≥ 2` each step);
//! property (3) — the overlap — is *measured* by [`TreeCover::max_overlap`]
//! and checked in the tests and the E11 experiment rather than proven.
//!
//! # Example
//!
//! ```
//! use ftl_graph::generators;
//! use ftl_tree_cover::TreeCover;
//!
//! let g = generators::grid(6, 6);
//! let tc = TreeCover::build(&g, &[], 2, 3);
//! tc.validate_coverage(&g, &[]).unwrap();
//! assert!(tc.max_tree_radius() <= (2 * 3 - 1) * 2);
//! ```
//!
//! See `README.md` at the repo root for how tree covers feed the
//! distance labels (`ftl-core`) and the routing schemes (`ftl-routing`).

#![forbid(unsafe_code)]

use ftl_graph::shortest_path::dijkstra_within;
use ftl_graph::{Graph, InducedSubgraph, SpanningTree, VertexId};

/// One tree of a cover: the cluster's induced subgraph (local ids) plus a
/// shortest-path tree rooted at the cluster center.
#[derive(Debug, Clone)]
pub struct CoverTree {
    /// Cluster center, in host-graph ids.
    pub center: VertexId,
    /// The cluster `G[B_{r+ρ}(v₀)]` minus filtered (heavy) edges, with id
    /// mappings back to the host graph.
    pub sub: InducedSubgraph,
    /// Shortest-path tree from the center, in local ids.
    pub tree: SpanningTree,
    /// Weighted radius actually used for the cluster ball.
    pub radius: u64,
}

impl CoverTree {
    /// Number of cluster vertices.
    pub fn num_vertices(&self) -> usize {
        self.sub.graph().num_vertices()
    }
}

/// A tree cover `TC(G, ω, ρ, k)`.
#[derive(Debug, Clone)]
pub struct TreeCover {
    /// Covering radius `ρ`.
    pub rho: u64,
    /// Stretch parameter `k`.
    pub k: u32,
    /// The trees.
    pub trees: Vec<CoverTree>,
    /// `home[v]` = index `i*(v)` of a tree whose cluster contains `B_ρ(v)`.
    pub home: Vec<usize>,
}

impl TreeCover {
    /// Builds the cover of `graph` with the edges flagged in `forbidden`
    /// removed (pass the heavy-edge mask `H_i` of Eq. (4); `&[]` for none).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rho == 0`.
    pub fn build(graph: &Graph, forbidden: &[bool], rho: u64, k: u32) -> TreeCover {
        assert!(k >= 1, "stretch parameter k must be positive");
        assert!(rho >= 1, "radius must be positive");
        let n = graph.num_vertices();
        // Growth base n^{1/k}, clamped to >= 2 so the radius bound stays
        // (2k_eff - 1)rho with k_eff = min(k, ceil(log2 n)).
        let base = ((n.max(2) as f64).powf(1.0 / k as f64)).max(2.0);
        let k_eff = (k as u64).min(64 - (n.max(2) as u64 - 1).leading_zeros() as u64 + 1);
        let max_radius = (2 * k_eff + 1) * rho;
        let mut unsatisfied: Vec<bool> = vec![true; n];
        let mut remaining = n;
        let mut trees = Vec::new();
        let mut home = vec![usize::MAX; n];
        let mut cursor = 0usize;
        while remaining > 0 {
            // Lowest-id unsatisfied center (deterministic).
            while cursor < n && !unsatisfied[cursor] {
                cursor += 1;
            }
            let v0 = VertexId::new(cursor);
            // One truncated Dijkstra serves all growth decisions.
            let dij = dijkstra_within(graph, v0, forbidden, max_radius);
            let count_unsat = |r: u64| -> usize {
                (0..n)
                    .filter(|&i| unsatisfied[i] && dij.dist[i].is_some_and(|d| d <= r))
                    .count()
            };
            let mut r = 0u64;
            while count_unsat(r + 2 * rho) as f64 > base * count_unsat(r).max(1) as f64 {
                r += 2 * rho;
            }
            let cluster_radius = r + rho;
            let cluster: Vec<VertexId> = (0..n)
                .filter(|&i| dij.dist[i].is_some_and(|d| d <= cluster_radius))
                .map(VertexId::new)
                .collect();
            let sub = InducedSubgraph::new(graph, &cluster, |e| {
                !forbidden.get(e.index()).copied().unwrap_or(false)
            });
            let local_center = sub.to_local_vertex(v0).expect("center is in its ball");
            let local_dij = dijkstra_within(sub.graph(), local_center, &[], u64::MAX);
            let tree = SpanningTree::from_dijkstra(sub.graph(), local_center, &local_dij);
            let idx = trees.len();
            trees.push(CoverTree {
                center: v0,
                sub,
                tree,
                radius: cluster_radius,
            });
            // Satisfy all unsatisfied centers within r (their rho-balls lie
            // inside the cluster).
            for i in 0..n {
                if unsatisfied[i] && dij.dist[i].is_some_and(|d| d <= r) {
                    unsatisfied[i] = false;
                    home[i] = idx;
                    remaining -= 1;
                }
            }
        }
        TreeCover {
            rho,
            k,
            trees,
            home,
        }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the cover is empty (only for the empty graph).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Indices of trees whose cluster contains host vertex `v`.
    pub fn trees_containing(&self, v: VertexId) -> Vec<usize> {
        self.trees
            .iter()
            .enumerate()
            .filter(|(_, t)| t.sub.contains_vertex(v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Maximum number of trees any vertex belongs to (property (3),
    /// measured).
    pub fn max_overlap(&self) -> usize {
        let n = self.home.len();
        let mut count = vec![0usize; n];
        for t in &self.trees {
            for (i, c) in count.iter_mut().enumerate().take(n) {
                if t.sub.contains_vertex(VertexId::new(i)) {
                    *c += 1;
                }
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Largest weighted tree radius across the cover (property (2) requires
    /// `<= (2k-1)·rho` for `k <= log2 n`).
    pub fn max_tree_radius(&self) -> u64 {
        self.trees
            .iter()
            .map(|t| {
                (0..t.sub.graph().num_vertices())
                    .map(|i| t.tree.weighted_depth(VertexId::new(i)))
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Verifies property (1): for every vertex `v`, the home tree's cluster
    /// contains the whole `B_ρ(v)` in `graph` minus `forbidden`.
    ///
    /// # Errors
    ///
    /// Returns the offending vertex on failure.
    pub fn validate_coverage(&self, graph: &Graph, forbidden: &[bool]) -> Result<(), VertexId> {
        for i in 0..graph.num_vertices() {
            let v = VertexId::new(i);
            let tree = &self.trees[self.home[i]];
            let ball = ftl_graph::shortest_path::ball(graph, v, self.rho, forbidden);
            if !ball.iter().all(|&u| tree.sub.contains_vertex(u)) {
                return Err(v);
            }
        }
        Ok(())
    }

    /// Total number of (vertex, tree) incidences — the driver of label and
    /// table sizes in Sections 4 and 5.
    pub fn total_tree_vertices(&self) -> usize {
        self.trees.iter().map(CoverTree::num_vertices).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_cover(g: &Graph, rho: u64, k: u32) -> TreeCover {
        let tc = TreeCover::build(g, &[], rho, k);
        tc.validate_coverage(g, &[]).expect("coverage");
        let n = g.num_vertices() as f64;
        let k_eff = (k as u64).min((n.log2().ceil() as u64) + 1);
        assert!(
            tc.max_tree_radius() <= (2 * k_eff + 1) * rho,
            "radius {} vs bound {}",
            tc.max_tree_radius(),
            (2 * k_eff + 1) * rho
        );
        // Measured overlap within a small constant of k * n^{1/k}.
        let bound = 4.0 * k as f64 * n.powf(1.0 / k as f64) + 4.0;
        assert!(
            (tc.max_overlap() as f64) <= bound,
            "overlap {} vs bound {}",
            tc.max_overlap(),
            bound
        );
        tc
    }

    #[test]
    fn grid_covers() {
        let g = generators::grid(8, 8);
        for k in [1, 2, 3, 4] {
            for rho in [1, 2, 4] {
                check_cover(&g, rho, k);
            }
        }
    }

    #[test]
    fn path_and_cycle_covers() {
        check_cover(&generators::path(40), 3, 2);
        check_cover(&generators::cycle(30), 2, 3);
    }

    #[test]
    fn random_graph_covers() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::connected_random(60, 0.05, 4, &mut rng);
        for k in [2, 3] {
            check_cover(&g, 4, k);
        }
    }

    #[test]
    fn k1_gives_full_ball_trees() {
        // k = 1: radius <= rho-ish clusters, many trees, stretch 1 territory.
        let g = generators::path(10);
        let tc = check_cover(&g, 2, 1);
        assert!(tc.len() >= 2);
    }

    #[test]
    fn heavy_edge_filter_respected() {
        let mut b = ftl_graph::GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 100); // heavy
        b.add_edge(2, 3, 1);
        let g = b.build();
        let heavy: Vec<bool> = g.edges().iter().map(|e| e.weight() > 10).collect();
        let tc = TreeCover::build(&g, &heavy, 2, 2);
        tc.validate_coverage(&g, &heavy).unwrap();
        // No cover tree may contain the heavy edge.
        for t in &tc.trees {
            for (_, e) in t.sub.graph().edge_ids() {
                assert!(e.weight() <= 10);
            }
        }
        // 0,1 and 2,3 end up in different trees (graph effectively split).
        let t01 = tc.home[0];
        let t23 = tc.home[3];
        assert!(!tc.trees[t01].sub.contains_vertex(VertexId::new(3)));
        let _ = t23;
    }

    #[test]
    fn home_tree_contains_ball() {
        let g = generators::grid(5, 5);
        let tc = TreeCover::build(&g, &[], 3, 2);
        for i in 0..g.num_vertices() {
            let v = VertexId::new(i);
            let home = &tc.trees[tc.home[i]];
            for u in ftl_graph::shortest_path::ball(&g, v, 3, &[]) {
                assert!(home.sub.contains_vertex(u));
            }
        }
    }

    #[test]
    fn tree_radius_definition_consistent() {
        let g = generators::grid(4, 4);
        let tc = TreeCover::build(&g, &[], 2, 2);
        for t in &tc.trees {
            // SPT depths within the cluster are at least the host distance.
            for li in 0..t.num_vertices() {
                let lv = VertexId::new(li);
                assert!(t.tree.contains(lv), "cluster SPT spans the cluster");
            }
        }
    }

    #[test]
    fn singleton_graph() {
        let g = ftl_graph::GraphBuilder::new(1).build();
        let tc = TreeCover::build(&g, &[], 1, 2);
        assert_eq!(tc.len(), 1);
        assert_eq!(tc.home[0], 0);
    }

    #[test]
    fn disconnected_graph_covered_per_component() {
        let mut b = ftl_graph::GraphBuilder::new(4);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(2, 3);
        let g = b.build();
        let tc = TreeCover::build(&g, &[], 1, 2);
        tc.validate_coverage(&g, &[]).unwrap();
        assert!(tc.len() >= 2);
    }
}
