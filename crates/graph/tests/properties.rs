//! Property-based tests for the graph substrate.

use ftl_graph::shortest_path::{dijkstra, distance_avoiding};
use ftl_graph::traversal::{bfs, connected_components, forbidden_mask};
use ftl_graph::union_find::UnionFind;
use ftl_graph::{generators, EdgeId, Graph, GraphBuilder, SpanningTree, VertexId};
use proptest::prelude::*;

/// Strategy: a connected graph described by `(n, extra edge pairs)`.
fn connected_graph_strategy() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        proptest::collection::vec((0usize..40, 0usize..40), 0..60),
    )
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            for i in 1..n {
                b.add_unit_edge(i / 2, i); // binary-tree backbone: connected
            }
            for (u, v) in extra {
                if u % n != v % n {
                    b.add_unit_edge(u % n, v % n);
                }
            }
            b.build()
        })
}

/// Strategy: a weighted connected graph.
fn weighted_graph_strategy() -> impl Strategy<Value = Graph> {
    (
        2usize..30,
        proptest::collection::vec((0usize..30, 0usize..30, 1u64..50), 0..50),
    )
        .prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            for i in 1..n {
                b.add_edge(i / 2, i, 1 + (i as u64 % 7));
            }
            for (u, v, w) in extra {
                if u % n != v % n {
                    b.add_edge(u % n, v % n, w);
                }
            }
            b.build()
        })
}

proptest! {
    /// On unit-weight graphs, BFS and Dijkstra distances agree everywhere.
    #[test]
    fn bfs_agrees_with_dijkstra_on_unit_weights(g in connected_graph_strategy()) {
        let s = VertexId::new(0);
        let b = bfs(&g, s, &[]);
        let d = dijkstra(&g, s, &[]);
        for i in 0..g.num_vertices() {
            prop_assert_eq!(b.dist[i].map(u64::from), d.dist[i]);
        }
    }

    /// Dijkstra's parent-path distance equals the reported distance.
    #[test]
    fn dijkstra_paths_realize_distances(g in weighted_graph_strategy()) {
        let s = VertexId::new(0);
        let d = dijkstra(&g, s, &[]);
        for i in 0..g.num_vertices() {
            if let Some(path) = d.path_to(VertexId::new(i)) {
                let w: u64 = path.iter().map(|&e| g.edge(e).weight()).sum();
                prop_assert_eq!(Some(w), d.dist[i]);
            }
        }
    }

    /// Triangle inequality on the shortest-path metric.
    #[test]
    fn shortest_path_triangle_inequality(g in weighted_graph_strategy()) {
        let n = g.num_vertices();
        let d0 = dijkstra(&g, VertexId::new(0), &[]);
        let d1 = dijkstra(&g, VertexId::new(n - 1), &[]);
        for i in 0..n {
            if let (Some(a), Some(b), Some(c)) =
                (d0.dist[n - 1], d0.dist[i], d1.dist[i])
            {
                prop_assert!(a <= b + c, "d(0,{}) = {} > {} + {}", n - 1, a, b, c);
            }
        }
    }

    /// Removing a fault set never decreases distances.
    #[test]
    fn faults_only_increase_distances(
        g in connected_graph_strategy(),
        picks in proptest::collection::vec(0usize..200, 0..5),
    ) {
        let faults: Vec<EdgeId> = picks
            .iter()
            .map(|&p| EdgeId::new(p % g.num_edges()))
            .collect();
        let mask = forbidden_mask(&g, &faults);
        let s = VertexId::new(0);
        let t = VertexId::new(g.num_vertices() - 1);
        let before = distance_avoiding(&g, s, t, &[]).unwrap();
        // A `None` result (disconnection) is a legal increase to infinity.
        if let Some(after) = distance_avoiding(&g, s, t, &mask) {
            prop_assert!(after >= before);
        }
    }

    /// Spanning-tree DFS intervals nest or are disjoint, and tree paths have
    /// correct endpoints.
    #[test]
    fn spanning_tree_interval_invariants(g in connected_graph_strategy()) {
        let t = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let n = g.num_vertices();
        for a in 0..n {
            for b in (a + 1)..n {
                let (va, vb) = (VertexId::new(a), VertexId::new(b));
                let ia = (t.pre(va), t.post(va));
                let ib = (t.pre(vb), t.post(vb));
                let nested =
                    (ia.0 <= ib.0 && ib.1 <= ia.1) || (ib.0 <= ia.0 && ia.1 <= ib.1);
                let disjoint = ia.1 < ib.0 || ib.1 < ia.0;
                prop_assert!(nested || disjoint);
            }
        }
        // Tree path between two random-ish vertices traverses tree edges only.
        let a = VertexId::new(n / 3);
        let b = VertexId::new(2 * n / 3);
        for e in t.tree_path(a, b) {
            prop_assert!(t.is_tree_edge(e));
        }
    }

    /// The number of connected components after removing F edges changes by
    /// at most |F|.
    #[test]
    fn component_count_lipschitz(
        g in connected_graph_strategy(),
        picks in proptest::collection::vec(0usize..200, 0..6),
    ) {
        let faults: Vec<EdgeId> = picks
            .iter()
            .map(|&p| EdgeId::new(p % g.num_edges()))
            .collect();
        let mask = forbidden_mask(&g, &faults);
        let (_, count) = connected_components(&g, &mask);
        prop_assert!(count >= 1);
        prop_assert!(count <= 1 + faults.len());
    }

    /// Union-find agrees with explicit component computation.
    #[test]
    fn union_find_matches_components(g in connected_graph_strategy(),
                                     keep in proptest::collection::vec(any::<bool>(), 0..200)) {
        let n = g.num_vertices();
        let mut uf = UnionFind::new(n);
        let mut mask = vec![true; g.num_edges()]; // true = forbidden
        for (id, e) in g.edge_ids() {
            if keep.get(id.index()).copied().unwrap_or(false) {
                mask[id.index()] = false;
                uf.union(e.u().index(), e.v().index());
            }
        }
        let (comp, count) = connected_components(&g, &mask);
        prop_assert_eq!(uf.num_sets(), count);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(uf.same(a, b), comp[a] == comp[b]);
            }
        }
    }

    /// Ports are a consistent bijection: following any port leads to a
    /// neighbor that can route back.
    #[test]
    fn ports_are_symmetric_enough(g in connected_graph_strategy()) {
        for v in g.vertices() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                prop_assert_eq!(g.port(v, p).unwrap().edge, nb.edge);
                // The reverse port exists at the neighbor.
                let back = g.port_of_edge(nb.vertex, nb.edge);
                prop_assert!(back.is_some());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lower-bound gadget always has f+1 edge-disjoint s-t paths of the
    /// same length.
    #[test]
    fn gadget_invariants(f in 0usize..8, len in 1usize..12) {
        let (g, s, t, last) = generators::lower_bound_gadget(f, len);
        prop_assert_eq!(last.len(), f + 1);
        prop_assert_eq!(distance_avoiding(&g, s, t, &[]), Some(len as u64));
        // Failing any proper subset of last edges keeps distance len.
        if f > 0 {
            let mask = forbidden_mask(&g, &last[..f]);
            prop_assert_eq!(distance_avoiding(&g, s, t, &mask), Some(len as u64));
        }
        let mask = forbidden_mask(&g, &last);
        prop_assert_eq!(distance_avoiding(&g, s, t, &mask), None);
    }
}
