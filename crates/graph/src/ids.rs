//! Newtype identifiers for vertices and edges.
//!
//! Using newtypes (rather than bare `usize`) statically prevents mixing up
//! vertex indices, edge indices and port numbers, which all float around the
//! routing code.

use std::fmt;

/// Identifier of a vertex: a dense index in `0..n`.
///
/// The paper assumes vertices carry unique `O(log n)`-bit identifiers in
/// `{1..n}`; we use `0..n`.
///
/// ```
/// use ftl_graph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        VertexId(index as u32)
    }

    /// Returns the dense index of this vertex.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 32-bit value (used when packing identifiers into label bits).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a vertex id from its raw 32-bit value.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for VertexId {
    fn from(index: usize) -> Self {
        VertexId::new(index)
    }
}

/// Identifier of an edge: a dense index in `0..m` into [`crate::Graph::edges`].
///
/// Multigraphs are supported, so an edge id (not an endpoint pair) is the
/// canonical identity of an edge; parallel edges get distinct ids.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 32-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an edge id from its raw 32-bit value.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        EdgeId(raw)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vertex_id_roundtrip() {
        for i in [0usize, 1, 17, 123_456] {
            let v = VertexId::new(i);
            assert_eq!(v.index(), i);
            assert_eq!(VertexId::from_raw(v.raw()), v);
        }
    }

    #[test]
    fn edge_id_roundtrip() {
        for i in [0usize, 1, 42, 999_999] {
            let e = EdgeId::new(i);
            assert_eq!(e.index(), i);
            assert_eq!(EdgeId::from_raw(e.raw()), e);
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(VertexId::new(1));
        set.insert(VertexId::new(1));
        set.insert(VertexId::new(2));
        assert_eq!(set.len(), 2);
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(EdgeId::new(3) > EdgeId::new(0));
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert_eq!(format!("{:?}", VertexId::new(5)), "v5");
        assert_eq!(format!("{:?}", EdgeId::new(7)), "e7");
        assert_eq!(format!("{}", VertexId::new(5)), "v5");
    }

    #[test]
    fn from_usize_conversions() {
        let v: VertexId = 9usize.into();
        assert_eq!(v, VertexId::new(9));
        let e: EdgeId = 11usize.into();
        assert_eq!(e, EdgeId::new(11));
    }
}
