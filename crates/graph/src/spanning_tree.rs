//! Rooted spanning trees with DFS numbering.
//!
//! Both labeling schemes fix a rooted spanning tree `T` of the (connected)
//! graph and lean on two pieces of tree structure:
//!
//! * DFS pre/post intervals — the ancestry labels of Lemma 3.1;
//! * parent/child edges — the component structure of `T \ F`.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};
use crate::shortest_path::DijkstraResult;
use crate::traversal::BfsResult;

/// A rooted spanning tree (or spanning forest restricted to the root's
/// component) of a [`Graph`].
///
/// Vertices not reachable from the root are *not in the tree*
/// ([`SpanningTree::contains`] returns `false`); the labeling schemes handle
/// each connected component separately, as in the paper.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    root: VertexId,
    /// `parent[v] = Some((p, e))` for non-root tree vertices.
    parent: Vec<Option<(VertexId, EdgeId)>>,
    children: Vec<Vec<VertexId>>,
    /// DFS entry time, `u32::MAX` when not in the tree. Times are unique and
    /// start at 1, matching \[KNR92\] where the interval of the root is (1, M).
    pre: Vec<u32>,
    /// DFS exit time.
    post: Vec<u32>,
    depth: Vec<u32>,
    /// Weighted depth (sum of edge weights from root).
    wdepth: Vec<u64>,
    /// `is_tree_edge[e]` for every edge id of the host graph.
    is_tree_edge: Vec<bool>,
    /// Vertices in DFS preorder.
    preorder: Vec<VertexId>,
}

impl SpanningTree {
    /// Builds the spanning tree from parent pointers produced by a BFS.
    pub fn from_bfs(graph: &Graph, root: VertexId, bfs: &BfsResult) -> Self {
        Self::from_parents(graph, root, &bfs.parent)
    }

    /// Builds the shortest-path tree from a Dijkstra run.
    pub fn from_dijkstra(graph: &Graph, root: VertexId, dij: &DijkstraResult) -> Self {
        Self::from_parents(graph, root, &dij.parent)
    }

    /// Builds a spanning tree from explicit parent pointers.
    ///
    /// `parent[v] = Some((p, e))` means `v`'s tree parent is `p` via graph
    /// edge `e`. Exactly the vertices transitively reachable from `root`
    /// through the parent pointers become tree vertices.
    pub fn from_parents(
        graph: &Graph,
        root: VertexId,
        parent: &[Option<(VertexId, EdgeId)>],
    ) -> Self {
        let n = graph.num_vertices();
        assert_eq!(parent.len(), n);
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (v, par) in parent.iter().enumerate() {
            if let Some((p, _)) = par {
                children[p.index()].push(VertexId::new(v));
            }
        }
        let mut pre = vec![u32::MAX; n];
        let mut post = vec![u32::MAX; n];
        let mut depth = vec![0u32; n];
        let mut wdepth = vec![0u64; n];
        let mut preorder = Vec::new();
        let mut is_tree_edge = vec![false; graph.num_edges()];
        // Iterative DFS assigning pre/post times starting at 1.
        let mut time = 1u32;
        let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
        pre[root.index()] = time;
        preorder.push(root);
        time += 1;
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            if *ci < children[u.index()].len() {
                let c = children[u.index()][*ci];
                *ci += 1;
                let (p, e) = parent[c.index()].expect("child has a parent");
                debug_assert_eq!(p, u);
                is_tree_edge[e.index()] = true;
                depth[c.index()] = depth[u.index()] + 1;
                wdepth[c.index()] = wdepth[u.index()] + graph.edge(e).weight();
                pre[c.index()] = time;
                time += 1;
                preorder.push(c);
                stack.push((c, 0));
            } else {
                post[u.index()] = time;
                time += 1;
                stack.pop();
            }
        }
        SpanningTree {
            root,
            parent: parent.to_vec(),
            children,
            pre,
            post,
            depth,
            wdepth,
            is_tree_edge,
            preorder,
        }
    }

    /// Builds a BFS spanning tree of the whole graph rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the graph is not connected.
    pub fn bfs_tree(graph: &Graph, root: VertexId) -> Result<Self, GraphError> {
        let bfs = crate::traversal::bfs(graph, root, &[]);
        if bfs.dist.iter().any(|d| d.is_none()) {
            return Err(GraphError::Disconnected);
        }
        Ok(Self::from_bfs(graph, root, &bfs))
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Whether `v` belongs to the tree.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.pre[v.index()] != u32::MAX
    }

    /// Number of tree vertices.
    pub fn num_tree_vertices(&self) -> usize {
        self.preorder.len()
    }

    /// Parent of `v` with the connecting edge, `None` at the root.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<(VertexId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Children of `v` in the tree (insertion order).
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.index()]
    }

    /// DFS entry time of `v` (unique; starts at 1).
    #[inline]
    pub fn pre(&self, v: VertexId) -> u32 {
        self.pre[v.index()]
    }

    /// DFS exit time of `v`.
    #[inline]
    pub fn post(&self, v: VertexId) -> u32 {
        self.post[v.index()]
    }

    /// Hop depth of `v` below the root.
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// Weighted depth of `v` (sum of tree edge weights from the root).
    #[inline]
    pub fn weighted_depth(&self, v: VertexId) -> u64 {
        self.wdepth[v.index()]
    }

    /// Whether graph edge `e` is a tree edge.
    #[inline]
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.is_tree_edge[e.index()]
    }

    /// Whether `a` is an ancestor of `b` (inclusive: every vertex is its own
    /// ancestor), decided from the DFS intervals in O(1).
    #[inline]
    pub fn is_ancestor(&self, a: VertexId, b: VertexId) -> bool {
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }

    /// Vertices in DFS preorder.
    #[inline]
    pub fn preorder(&self) -> &[VertexId] {
        &self.preorder
    }

    /// Tree vertices in the subtree rooted at `v` (preorder).
    pub fn subtree(&self, v: VertexId) -> Vec<VertexId> {
        self.preorder
            .iter()
            .copied()
            .filter(|&u| self.is_ancestor(v, u))
            .collect()
    }

    /// Lowest common ancestor of `a` and `b` (walks parent pointers; fine for
    /// our offline uses).
    pub fn lca(&self, a: VertexId, b: VertexId) -> VertexId {
        let mut x = a;
        let mut y = b;
        while self.depth(x) > self.depth(y) {
            x = self.parent(x).expect("deeper vertex has a parent").0;
        }
        while self.depth(y) > self.depth(x) {
            y = self.parent(y).expect("deeper vertex has a parent").0;
        }
        while x != y {
            x = self.parent(x).expect("non-root vertex has a parent").0;
            y = self.parent(y).expect("non-root vertex has a parent").0;
        }
        x
    }

    /// The tree path `π(a, b, T)` as a list of edge ids.
    pub fn tree_path(&self, a: VertexId, b: VertexId) -> Vec<EdgeId> {
        let l = self.lca(a, b);
        let mut up = Vec::new();
        let mut x = a;
        while x != l {
            let (p, e) = self.parent(x).expect("below lca");
            up.push(e);
            x = p;
        }
        let mut down = Vec::new();
        let mut y = b;
        while y != l {
            let (p, e) = self.parent(y).expect("below lca");
            down.push(e);
            y = p;
        }
        down.reverse();
        up.extend(down);
        up
    }

    /// Weighted length of the tree path between `a` and `b`.
    pub fn tree_distance(&self, graph: &Graph, a: VertexId, b: VertexId) -> u64 {
        self.tree_path(a, b)
            .iter()
            .map(|&e| graph.edge(e).weight())
            .sum()
    }

    /// Largest DFS time issued; useful as the `M` bound of Claim 3.14.
    pub fn max_time(&self) -> u32 {
        2 * self.preorder.len() as u32 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// A small tree-with-extra-edge graph:
    ///
    /// ```text
    ///       0
    ///      / \
    ///     1   2
    ///    / \   \
    ///   3   4   5   (+ non-tree edge 4-5)
    /// ```
    fn sample() -> (Graph, SpanningTree) {
        let mut b = GraphBuilder::new(6);
        b.add_unit_edge(0, 1); // e0
        b.add_unit_edge(0, 2); // e1
        b.add_unit_edge(1, 3); // e2
        b.add_unit_edge(1, 4); // e3
        b.add_unit_edge(2, 5); // e4
        b.add_unit_edge(4, 5); // e5 non-tree
        let g = b.build();
        let t = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        (g, t)
    }

    #[test]
    fn tree_edges_identified() {
        let (_, t) = sample();
        for e in 0..5 {
            assert!(t.is_tree_edge(EdgeId::new(e)), "e{e} should be tree edge");
        }
        assert!(!t.is_tree_edge(EdgeId::new(5)));
    }

    #[test]
    fn ancestry_via_intervals() {
        let (_, t) = sample();
        let v = VertexId::new;
        assert!(t.is_ancestor(v(0), v(5)));
        assert!(t.is_ancestor(v(1), v(3)));
        assert!(t.is_ancestor(v(1), v(1)));
        assert!(!t.is_ancestor(v(1), v(5)));
        assert!(!t.is_ancestor(v(3), v(1)));
    }

    #[test]
    fn pre_post_nested_or_disjoint() {
        let (_, t) = sample();
        for a in 0..6 {
            for b in 0..6 {
                let (a, b) = (VertexId::new(a), VertexId::new(b));
                let ia = (t.pre(a), t.post(a));
                let ib = (t.pre(b), t.post(b));
                let nested = (ia.0 <= ib.0 && ib.1 <= ia.1) || (ib.0 <= ia.0 && ia.1 <= ib.1);
                let disjoint = ia.1 < ib.0 || ib.1 < ia.0;
                assert!(nested || disjoint, "intervals must nest or be disjoint");
            }
        }
    }

    #[test]
    fn depths_and_parents() {
        let (_, t) = sample();
        let v = VertexId::new;
        assert_eq!(t.depth(v(0)), 0);
        assert_eq!(t.depth(v(4)), 2);
        assert_eq!(t.parent(v(0)), None);
        assert_eq!(t.parent(v(4)).unwrap().0, v(1));
        assert_eq!(t.children(v(1)), &[v(3), v(4)]);
    }

    #[test]
    fn lca_and_paths() {
        let (g, t) = sample();
        let v = VertexId::new;
        assert_eq!(t.lca(v(3), v(4)), v(1));
        assert_eq!(t.lca(v(3), v(5)), v(0));
        assert_eq!(t.lca(v(0), v(4)), v(0));
        let p = t.tree_path(v(3), v(5));
        assert_eq!(p.len(), 4); // 3-1, 1-0, 0-2, 2-5
        assert_eq!(t.tree_distance(&g, v(3), v(5)), 4);
        assert_eq!(t.tree_distance(&g, v(3), v(3)), 0);
    }

    #[test]
    fn subtree_contents() {
        let (_, t) = sample();
        let v = VertexId::new;
        let s1: Vec<_> = t.subtree(v(1));
        assert_eq!(s1, vec![v(1), v(3), v(4)]);
        assert_eq!(t.subtree(v(0)).len(), 6);
        assert_eq!(t.subtree(v(5)), vec![v(5)]);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let mut b = GraphBuilder::new(3);
        b.add_unit_edge(0, 1);
        let g = b.build();
        assert!(matches!(
            SpanningTree::bfs_tree(&g, VertexId::new(0)),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn dijkstra_tree_respects_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 10); // heavy direct edge
        b.add_edge(0, 2, 1);
        b.add_edge(2, 1, 1);
        let g = b.build();
        let dij = crate::shortest_path::dijkstra(&g, VertexId::new(0), &[]);
        let t = SpanningTree::from_dijkstra(&g, VertexId::new(0), &dij);
        // Shortest path to 1 goes via 2.
        assert_eq!(t.parent(VertexId::new(1)).unwrap().0, VertexId::new(2));
        assert_eq!(t.weighted_depth(VertexId::new(1)), 2);
        assert!(!t.is_tree_edge(EdgeId::new(0)));
    }

    #[test]
    fn partial_tree_from_parents() {
        // Root a tree on only part of the graph.
        let mut b = GraphBuilder::new(4);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(2, 3);
        let g = b.build();
        let bfs = crate::traversal::bfs(&g, VertexId::new(0), &[]);
        let t = SpanningTree::from_bfs(&g, VertexId::new(0), &bfs);
        assert!(t.contains(VertexId::new(1)));
        assert!(!t.contains(VertexId::new(2)));
        assert_eq!(t.num_tree_vertices(), 2);
    }

    #[test]
    fn preorder_starts_at_root_and_times_start_at_one() {
        let (_, t) = sample();
        assert_eq!(t.preorder()[0], t.root());
        assert_eq!(t.pre(t.root()), 1);
        assert!(t.max_time() >= t.post(t.root()));
    }
}
