//! Breadth-first and depth-first traversals, connected components.

use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};
use std::collections::VecDeque;

/// Result of a BFS from a set of sources: hop distances and parent pointers.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `dist[v]` = hop distance from the nearest source, or `None` if
    /// unreachable.
    pub dist: Vec<Option<u32>>,
    /// `parent[v]` = (predecessor, edge used), `None` for sources/unreached.
    pub parent: Vec<Option<(VertexId, EdgeId)>>,
    /// Vertices in the order they were dequeued.
    pub order: Vec<VertexId>,
}

/// BFS over unit hops from a single source, ignoring the edges in `forbidden`
/// (a bitmask over edge ids; pass `&[]` to use all edges).
pub fn bfs(graph: &Graph, source: VertexId, forbidden: &[bool]) -> BfsResult {
    bfs_multi(graph, &[source], forbidden)
}

/// BFS from multiple sources.
pub fn bfs_multi(graph: &Graph, sources: &[VertexId], forbidden: &[bool]) -> BfsResult {
    let n = graph.num_vertices();
    let mut dist = vec![None; n];
    let mut parent = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = dist[u.index()].expect("queued vertex has a distance");
        for nb in graph.neighbors(u) {
            if forbidden.get(nb.edge.index()).copied().unwrap_or(false) {
                continue;
            }
            let w = nb.vertex;
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(du + 1);
                parent[w.index()] = Some((u, nb.edge));
                queue.push_back(w);
            }
        }
    }
    BfsResult {
        dist,
        parent,
        order,
    }
}

/// Connected components of the graph with the `forbidden` edges removed.
///
/// Returns `(comp, count)` where `comp[v]` is a dense component index in
/// `0..count`, assigned in order of lowest-numbered contained vertex.
pub fn connected_components(graph: &Graph, forbidden: &[bool]) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![VertexId::new(start)];
        comp[start] = count;
        while let Some(u) = stack.pop() {
            for nb in graph.neighbors(u) {
                if forbidden.get(nb.edge.index()).copied().unwrap_or(false) {
                    continue;
                }
                if comp[nb.vertex.index()] == usize::MAX {
                    comp[nb.vertex.index()] = count;
                    stack.push(nb.vertex);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Whether the whole graph is connected (the empty graph counts as
/// connected; a single-vertex graph too).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.num_vertices() <= 1 {
        return true;
    }
    let (_, count) = connected_components(graph, &[]);
    count == 1
}

/// Whether `s` and `t` are connected when the `forbidden` edges are removed.
///
/// This is the ground-truth answer the labeling schemes are tested against.
pub fn connected_avoiding(graph: &Graph, s: VertexId, t: VertexId, forbidden: &[bool]) -> bool {
    if s == t {
        return true;
    }
    let res = bfs(graph, s, forbidden);
    res.dist[t.index()].is_some()
}

/// Builds a forbidden-edge bitmask from a list of edge ids.
pub fn forbidden_mask(graph: &Graph, faults: &[EdgeId]) -> Vec<bool> {
    let mut mask = vec![false; graph.num_edges()];
    for &e in faults {
        mask[e.index()] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_unit_edge(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let r = bfs(&g, VertexId::new(0), &[]);
        for i in 0..5 {
            assert_eq!(r.dist[i], Some(i as u32));
        }
        assert_eq!(r.order.len(), 5);
        assert_eq!(r.parent[0], None);
        assert_eq!(r.parent[3].unwrap().0, VertexId::new(2));
    }

    #[test]
    fn bfs_respects_forbidden_edges() {
        let g = path(5);
        let mask = forbidden_mask(&g, &[EdgeId::new(2)]); // cut between 2 and 3
        let r = bfs(&g, VertexId::new(0), &mask);
        assert_eq!(r.dist[2], Some(2));
        assert_eq!(r.dist[3], None);
        assert_eq!(r.dist[4], None);
    }

    #[test]
    fn bfs_multi_source() {
        let g = path(7);
        let r = bfs_multi(&g, &[VertexId::new(0), VertexId::new(6)], &[]);
        assert_eq!(r.dist[3], Some(3));
        assert_eq!(r.dist[5], Some(1));
    }

    #[test]
    fn components_count() {
        let g = path(4);
        let (comp, count) = connected_components(&g, &[]);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == 0));
        let mask = forbidden_mask(&g, &[EdgeId::new(1)]);
        let (comp, count) = connected_components(&g, &mask);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn connectivity_queries() {
        let g = path(4);
        assert!(is_connected(&g));
        assert!(connected_avoiding(
            &g,
            VertexId::new(0),
            VertexId::new(3),
            &[]
        ));
        let mask = forbidden_mask(&g, &[EdgeId::new(0)]);
        assert!(!connected_avoiding(
            &g,
            VertexId::new(0),
            VertexId::new(3),
            &mask
        ));
        // s == t is always connected, even if isolated by faults.
        assert!(connected_avoiding(
            &g,
            VertexId::new(0),
            VertexId::new(0),
            &mask
        ));
    }

    #[test]
    fn isolated_vertices_form_components() {
        let mut b = GraphBuilder::new(3);
        b.add_unit_edge(0, 1);
        let g = b.build();
        assert!(!is_connected(&g));
        let (_, count) = connected_components(&g, &[]);
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_and_singleton_graphs_connected() {
        assert!(is_connected(&GraphBuilder::new(0).build()));
        assert!(is_connected(&GraphBuilder::new(1).build()));
    }
}
