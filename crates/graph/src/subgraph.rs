//! Induced subgraphs with id mappings back to the host graph.
//!
//! The distance labeling scheme (Section 4) applies the connectivity schemes
//! to many subgraphs `G_{i,j} = G[V(T_{i,j})]`; this module provides the
//! vertex-set–induced subgraph together with the translation tables needed
//! to move labels and faults between the host graph and the subgraph.

use crate::graph::{Graph, GraphBuilder};
use crate::ids::{EdgeId, VertexId};

/// An induced subgraph `G[S]` (optionally with an extra edge filter),
/// carrying the mappings between host ids and local dense ids.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: Graph,
    /// `local_to_host_vertex[local] = host`.
    local_to_host_vertex: Vec<VertexId>,
    /// `host_to_local_vertex[host] = Some(local)` for vertices in `S`.
    host_to_local_vertex: Vec<Option<VertexId>>,
    /// `local_to_host_edge[local] = host`.
    local_to_host_edge: Vec<EdgeId>,
    /// Sparse map host edge -> local edge (dense vec over host edges).
    host_to_local_edge: Vec<Option<EdgeId>>,
}

impl InducedSubgraph {
    /// Builds `G[S]` keeping only edges with both endpoints in `S` that also
    /// pass `edge_filter` (use `|_| true` for a plain induced subgraph).
    pub fn new(
        host: &Graph,
        vertices: &[VertexId],
        mut edge_filter: impl FnMut(EdgeId) -> bool,
    ) -> Self {
        let mut host_to_local_vertex = vec![None; host.num_vertices()];
        let mut local_to_host_vertex = Vec::with_capacity(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            assert!(
                host_to_local_vertex[v.index()].is_none(),
                "duplicate vertex {v:?} in induced set"
            );
            host_to_local_vertex[v.index()] = Some(VertexId::new(i));
            local_to_host_vertex.push(v);
        }
        let mut b = GraphBuilder::new(vertices.len());
        let mut local_to_host_edge = Vec::new();
        let mut host_to_local_edge = vec![None; host.num_edges()];
        for (id, e) in host.edge_ids() {
            let (Some(lu), Some(lv)) = (
                host_to_local_vertex[e.u().index()],
                host_to_local_vertex[e.v().index()],
            ) else {
                continue;
            };
            if !edge_filter(id) {
                continue;
            }
            let lid = b.add_edge(lu.index(), lv.index(), e.weight());
            host_to_local_edge[id.index()] = Some(lid);
            local_to_host_edge.push(id);
        }
        InducedSubgraph {
            graph: b.build(),
            local_to_host_vertex,
            host_to_local_vertex,
            local_to_host_edge,
            host_to_local_edge,
        }
    }

    /// The subgraph itself (local ids).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Translates a host vertex to its local id, if present.
    #[inline]
    pub fn to_local_vertex(&self, host: VertexId) -> Option<VertexId> {
        self.host_to_local_vertex[host.index()]
    }

    /// Translates a local vertex back to the host id.
    #[inline]
    pub fn to_host_vertex(&self, local: VertexId) -> VertexId {
        self.local_to_host_vertex[local.index()]
    }

    /// Translates a host edge to its local id, if present.
    #[inline]
    pub fn to_local_edge(&self, host: EdgeId) -> Option<EdgeId> {
        self.host_to_local_edge[host.index()]
    }

    /// Translates a local edge back to the host id.
    #[inline]
    pub fn to_host_edge(&self, local: EdgeId) -> EdgeId {
        self.local_to_host_edge[local.index()]
    }

    /// Whether the subgraph contains the host vertex.
    #[inline]
    pub fn contains_vertex(&self, host: VertexId) -> bool {
        self.host_to_local_vertex[host.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1); // e0
        b.add_edge(1, 2, 2); // e1
        b.add_edge(2, 3, 3); // e2
        b.add_edge(3, 0, 4); // e3
        b.add_edge(0, 2, 5); // e4 diagonal
        b.build()
    }

    #[test]
    fn induced_triangle() {
        let g = square_with_diagonal();
        let v = VertexId::new;
        let sub = InducedSubgraph::new(&g, &[v(0), v(1), v(2)], |_| true);
        assert_eq!(sub.graph().num_vertices(), 3);
        assert_eq!(sub.graph().num_edges(), 3); // e0, e1, e4
        assert!(sub.contains_vertex(v(0)));
        assert!(!sub.contains_vertex(v(3)));
    }

    #[test]
    fn vertex_id_roundtrips() {
        let g = square_with_diagonal();
        let v = VertexId::new;
        let sub = InducedSubgraph::new(&g, &[v(2), v(0)], |_| true);
        let l2 = sub.to_local_vertex(v(2)).unwrap();
        let l0 = sub.to_local_vertex(v(0)).unwrap();
        assert_eq!(sub.to_host_vertex(l2), v(2));
        assert_eq!(sub.to_host_vertex(l0), v(0));
        assert_eq!(sub.to_local_vertex(v(1)), None);
        // only edge 0-2 (e4) survives
        assert_eq!(sub.graph().num_edges(), 1);
        assert_eq!(sub.to_host_edge(EdgeId::new(0)), EdgeId::new(4));
        assert_eq!(sub.to_local_edge(EdgeId::new(4)), Some(EdgeId::new(0)));
        assert_eq!(sub.to_local_edge(EdgeId::new(0)), None);
    }

    #[test]
    fn edge_filter_drops_edges() {
        let g = square_with_diagonal();
        let v = VertexId::new;
        // Drop the diagonal.
        let sub = InducedSubgraph::new(&g, &[v(0), v(1), v(2)], |e| e.index() != 4);
        assert_eq!(sub.graph().num_edges(), 2);
    }

    #[test]
    fn weights_preserved() {
        let g = square_with_diagonal();
        let v = VertexId::new;
        let sub = InducedSubgraph::new(&g, &[v(2), v(3)], |_| true);
        assert_eq!(sub.graph().num_edges(), 1);
        assert_eq!(sub.graph().edge(EdgeId::new(0)).weight(), 3);
    }

    #[test]
    #[should_panic]
    fn duplicate_vertices_rejected() {
        let g = square_with_diagonal();
        let v = VertexId::new;
        InducedSubgraph::new(&g, &[v(0), v(0)], |_| true);
    }

    #[test]
    fn empty_subgraph() {
        let g = square_with_diagonal();
        let sub = InducedSubgraph::new(&g, &[], |_| true);
        assert_eq!(sub.graph().num_vertices(), 0);
        assert_eq!(sub.graph().num_edges(), 0);
    }
}
