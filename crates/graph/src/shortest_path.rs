//! Weighted shortest paths: Dijkstra, truncated Dijkstra (balls), and
//! shortest-path trees.

use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a (possibly truncated) Dijkstra run.
#[derive(Debug, Clone)]
pub struct DijkstraResult {
    /// `dist[v]` = shortest weighted distance from the source, or `None`.
    pub dist: Vec<Option<u64>>,
    /// `parent[v]` = (predecessor, edge used) on some shortest path.
    pub parent: Vec<Option<(VertexId, EdgeId)>>,
}

impl DijkstraResult {
    /// Reconstructs the vertex/edge path from the source to `t`, if reached.
    ///
    /// Returns the edge ids in order from source to `t`.
    pub fn path_to(&self, t: VertexId) -> Option<Vec<EdgeId>> {
        self.dist[t.index()]?;
        let mut edges = Vec::new();
        let mut cur = t;
        while let Some((p, e)) = self.parent[cur.index()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Dijkstra from `source`, skipping `forbidden` edges, visiting only vertices
/// at distance `<= radius` (pass `u64::MAX` for untruncated).
pub fn dijkstra_within(
    graph: &Graph,
    source: VertexId,
    forbidden: &[bool],
    radius: u64,
) -> DijkstraResult {
    let n = graph.num_vertices();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = Some(0);
    heap.push(Reverse((0u64, source.index())));
    while let Some(Reverse((d, ui))) = heap.pop() {
        if dist[ui] != Some(d) {
            continue; // stale entry
        }
        let u = VertexId::new(ui);
        for nb in graph.neighbors(u) {
            if forbidden.get(nb.edge.index()).copied().unwrap_or(false) {
                continue;
            }
            let w = graph.edge(nb.edge).weight();
            let nd = d.saturating_add(w);
            if nd > radius {
                continue;
            }
            let vi = nb.vertex.index();
            if dist[vi].is_none_or(|old| nd < old) {
                dist[vi] = Some(nd);
                parent[vi] = Some((u, nb.edge));
                heap.push(Reverse((nd, vi)));
            }
        }
    }
    DijkstraResult { dist, parent }
}

/// Untruncated Dijkstra from `source` avoiding `forbidden` edges.
pub fn dijkstra(graph: &Graph, source: VertexId, forbidden: &[bool]) -> DijkstraResult {
    dijkstra_within(graph, source, forbidden, u64::MAX)
}

/// The shortest `s`–`t` distance avoiding `forbidden` edges, or `None` if
/// disconnected. This is `dist_{G \ F}(s, t)`, the ground truth against which
/// all stretch bounds are measured.
pub fn distance_avoiding(
    graph: &Graph,
    s: VertexId,
    t: VertexId,
    forbidden: &[bool],
) -> Option<u64> {
    if s == t {
        return Some(0);
    }
    dijkstra(graph, s, forbidden).dist[t.index()]
}

/// The ball `B_ρ(v) = {u : dist(v, u) <= ρ}` in the graph minus `forbidden`.
pub fn ball(graph: &Graph, center: VertexId, radius: u64, forbidden: &[bool]) -> Vec<VertexId> {
    let res = dijkstra_within(graph, center, forbidden, radius);
    (0..graph.num_vertices())
        .filter(|&i| res.dist[i].is_some())
        .map(VertexId::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::traversal::forbidden_mask;

    /// Weighted diamond: 0-1 (1), 1-3 (1), 0-2 (10), 2-3 (10).
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 10);
        b.add_edge(2, 3, 10);
        b.build()
    }

    #[test]
    fn shortest_path_prefers_light_route() {
        let g = diamond();
        let r = dijkstra(&g, VertexId::new(0), &[]);
        assert_eq!(r.dist[3], Some(2));
        assert_eq!(
            r.path_to(VertexId::new(3)).unwrap(),
            vec![EdgeId::new(0), EdgeId::new(1)]
        );
    }

    #[test]
    fn faults_reroute_to_heavy_route() {
        let g = diamond();
        let mask = forbidden_mask(&g, &[EdgeId::new(0)]);
        assert_eq!(
            distance_avoiding(&g, VertexId::new(0), VertexId::new(3), &mask),
            Some(20)
        );
    }

    #[test]
    fn disconnection_reported() {
        let g = diamond();
        let mask = forbidden_mask(&g, &[EdgeId::new(0), EdgeId::new(2)]);
        assert_eq!(
            distance_avoiding(&g, VertexId::new(0), VertexId::new(3), &mask),
            None
        );
        // but s == t still has distance 0
        assert_eq!(
            distance_avoiding(&g, VertexId::new(0), VertexId::new(0), &mask),
            Some(0)
        );
    }

    #[test]
    fn truncated_ball() {
        let g = diamond();
        let b1 = ball(&g, VertexId::new(0), 1, &[]);
        assert_eq!(b1, vec![VertexId::new(0), VertexId::new(1)]);
        let b2 = ball(&g, VertexId::new(0), 2, &[]);
        assert_eq!(b2.len(), 3); // 0, 1, 3
        let ball_all = ball(&g, VertexId::new(0), 100, &[]);
        assert_eq!(ball_all.len(), 4);
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let r = dijkstra(&g, VertexId::new(0), &[]);
        assert!(r.path_to(VertexId::new(2)).is_none());
        assert_eq!(r.path_to(VertexId::new(0)).unwrap(), Vec::<EdgeId>::new());
    }

    #[test]
    fn dijkstra_handles_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5);
        b.add_edge(0, 1, 2);
        let g = b.build();
        let r = dijkstra(&g, VertexId::new(0), &[]);
        assert_eq!(r.dist[1], Some(2));
        assert_eq!(r.path_to(VertexId::new(1)).unwrap(), vec![EdgeId::new(1)]);
    }
}
