//! Error types for the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or querying graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex index was out of the `0..n` range.
    VertexOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge index was out of the `0..m` range.
    EdgeOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of edges in the graph.
        num_edges: usize,
    },
    /// An operation required a connected graph but the graph was disconnected.
    Disconnected,
    /// An edge weight of zero was supplied; the paper assumes positive weights.
    ZeroWeight,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                index,
                num_vertices,
            } => write!(
                f,
                "vertex index {index} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::EdgeOutOfRange { index, num_edges } => write!(
                f,
                "edge index {index} out of range for graph with {num_edges} edges"
            ),
            GraphError::Disconnected => write!(f, "operation requires a connected graph"),
            GraphError::ZeroWeight => write!(f, "edge weights must be positive"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            index: 9,
            num_vertices: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(!GraphError::Disconnected.to_string().is_empty());
        assert!(!GraphError::ZeroWeight.to_string().is_empty());
        assert!(!GraphError::EdgeOutOfRange {
            index: 1,
            num_edges: 0
        }
        .to_string()
        .is_empty());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::Disconnected);
        assert!(e.source().is_none());
    }
}
