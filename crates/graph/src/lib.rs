//! Graph substrate for the Dory–Parter PODC'21 reproduction.
//!
//! This crate provides everything the labeling and routing schemes need from
//! a graph library, built from scratch:
//!
//! * [`Graph`]: a weighted undirected multigraph whose adjacency lists define
//!   **port numbers** (the routing schemes address neighbors by port, exactly
//!   as in the paper's model).
//! * Rooted [`SpanningTree`]s with DFS pre/post intervals and depths.
//! * Traversals ([`traversal`]), shortest paths ([`shortest_path`]),
//!   union-find ([`union_find::UnionFind`]), induced subgraphs
//!   ([`subgraph::InducedSubgraph`]).
//! * Workload [`generators`], including the lower-bound gadget of Theorem 1.6
//!   and a fat-tree-like datacenter topology used by the examples.
//!
//! # Example
//!
//! ```
//! use ftl_graph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1);
//! b.add_edge(1, 2, 1);
//! b.add_edge(2, 3, 1);
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert!(ftl_graph::traversal::is_connected(&g));
//! ```
//!
//! See `README.md` at the repo root for how the substrate feeds the
//! labeling schemes and the workload generators used by the benches.

#![forbid(unsafe_code)]

pub mod error;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod shortest_path;
pub mod spanning_tree;
pub mod subgraph;
pub mod traversal;
pub mod union_find;

pub use error::GraphError;
pub use graph::{Edge, Graph, GraphBuilder};
pub use ids::{EdgeId, VertexId};
pub use spanning_tree::SpanningTree;
pub use subgraph::InducedSubgraph;
