//! Workload generators: the graph families used by the tests, examples, and
//! every experiment in `EXPERIMENTS.md`.
//!
//! All randomized generators take an explicit [`rand::Rng`] so experiments
//! are reproducible from a seed.

use crate::graph::{Graph, GraphBuilder};
use crate::ids::VertexId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Path graph `0 - 1 - ... - (n-1)` with unit weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0);
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_unit_edge(i, i + 1);
    }
    b.build()
}

/// Cycle graph on `n >= 3` vertices with unit weights.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_unit_edge(i, (i + 1) % n);
    }
    b.build()
}

/// Complete graph `K_n` with unit weights.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            b.add_unit_edge(i, j);
        }
    }
    b.build()
}

/// Star graph: center 0 connected to `n-1` leaves.
pub fn star(n: usize) -> Graph {
    assert!(n > 0);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_unit_edge(0, i);
    }
    b.build()
}

/// `rows x cols` grid with unit weights; vertex `(r, c)` has index
/// `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    weighted_grid(rows, cols, |_| 1)
}

/// Grid with per-edge weights chosen by `weight_of(edge_counter)`; used as a
/// "road network" stand-in in the distance experiments.
pub fn weighted_grid(rows: usize, cols: usize, mut weight_of: impl FnMut(usize) -> u64) -> Graph {
    assert!(rows > 0 && cols > 0);
    let mut b = GraphBuilder::new(rows * cols);
    let mut counter = 0usize;
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), weight_of(counter));
                counter += 1;
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), weight_of(counter));
                counter += 1;
            }
        }
    }
    b.build()
}

/// Random grid weights in `1..=max_w`.
pub fn random_weighted_grid(rows: usize, cols: usize, max_w: u64, rng: &mut impl Rng) -> Graph {
    let weights: Vec<u64> = (0..(2 * rows * cols))
        .map(|_| rng.gen_range(1..=max_w))
        .collect();
    weighted_grid(rows, cols, |i| weights[i % weights.len()])
}

/// Uniform random spanning tree-ish: a random recursive tree (each vertex
/// `i >= 1` attaches to a uniformly random earlier vertex).
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    assert!(n > 0);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_unit_edge(p, i);
    }
    b.build()
}

/// Caterpillar tree: a spine of `spine` vertices, each with `legs` leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0);
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for i in 0..spine - 1 {
        b.add_unit_edge(i, i + 1);
    }
    let mut next = spine;
    for i in 0..spine {
        for _ in 0..legs {
            b.add_unit_edge(i, next);
            next += 1;
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` with unit weights (not necessarily connected).
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                b.add_unit_edge(i, j);
            }
        }
    }
    b.build()
}

/// Connected Erdős–Rényi: a random recursive tree backbone plus `G(n, p)`
/// extra edges. Weights are `1` unless `max_w > 1`, in which case each edge
/// weight is uniform in `1..=max_w`.
pub fn connected_random(n: usize, p: f64, max_w: u64, rng: &mut impl Rng) -> Graph {
    assert!(n > 0);
    let mut b = GraphBuilder::new(n);
    let w = |rng: &mut dyn rand::RngCore| {
        if max_w <= 1 {
            1
        } else {
            rng.gen_range(1..=max_w)
        }
    };
    // Random tree backbone over a shuffled vertex order so the tree is not
    // biased toward low ids.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let wt = w(rng);
        b.add_edge(order[i], order[j], wt);
    }
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                let wt = w(rng);
                b.add_edge(i, j, wt);
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m_attach + 1` seed vertices, then every new vertex attaches `m_attach`
/// edges to existing vertices sampled proportionally to their degree (via
/// the endpoint-list trick: picking a uniform endpoint of a uniform
/// existing edge is exactly degree-proportional sampling). Always
/// connected; matches the scale-free topology the DRFE-R experiments use
/// for their 1k–5k-node tables.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
pub fn barabasi_albert(n: usize, m_attach: usize, rng: &mut impl Rng) -> Graph {
    assert!(m_attach > 0, "attachment count must be positive");
    assert!(
        n > m_attach,
        "need more vertices than attachments per vertex"
    );
    let seed_n = m_attach + 1;
    let mut b = GraphBuilder::new(n);
    // Flat endpoint list: every edge contributes both endpoints, so a
    // uniform draw from it is a degree-proportional vertex draw.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * m_attach * n);
    for i in 0..seed_n {
        for j in i + 1..seed_n {
            b.add_unit_edge(i, j);
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    let mut targets: Vec<usize> = Vec::with_capacity(m_attach);
    for v in seed_n..n {
        targets.clear();
        while targets.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_unit_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// The stretch lower-bound gadget of Theorem 1.6 / Figure 4: `f + 1`
/// internally disjoint `s`–`t` paths, each with `len` edges.
///
/// Returns `(graph, s, t, last_edge_of_path)` where `last_edge_of_path[i]`
/// is the edge id of the final (t-adjacent) edge of path `i`; the adversary
/// fails all but one of these.
pub fn lower_bound_gadget(
    f: usize,
    len: usize,
) -> (Graph, VertexId, VertexId, Vec<crate::ids::EdgeId>) {
    assert!(len >= 1);
    let paths = f + 1;
    // s = 0, t = 1, then (len - 1) internal vertices per path.
    let n = 2 + paths * (len - 1);
    let mut b = GraphBuilder::new(n);
    let mut last_edges = Vec::with_capacity(paths);
    for pth in 0..paths {
        let mut prev = 0usize; // s
        for step in 0..len - 1 {
            let v = 2 + pth * (len - 1) + step;
            b.add_unit_edge(prev, v);
            prev = v;
        }
        let e = b.add_unit_edge(prev, 1); // final hop into t
        last_edges.push(e);
    }
    (b.build(), VertexId::new(0), VertexId::new(1), last_edges)
}

/// A small fat-tree-like three-level datacenter topology: `pods` pods, each
/// with `tors` top-of-rack switches and `hosts_per_tor` hosts, plus `cores`
/// core switches connected to every pod aggregation switch.
///
/// Returns the graph; hosts are the last `pods * tors * hosts_per_tor`
/// vertices.
pub fn fat_tree_like(pods: usize, tors: usize, hosts_per_tor: usize, cores: usize) -> Graph {
    assert!(pods > 0 && tors > 0 && cores > 0);
    // layout: [cores][pods aggregation][pods*tors ToR][hosts]
    let agg0 = cores;
    let tor0 = agg0 + pods;
    let host0 = tor0 + pods * tors;
    let n = host0 + pods * tors * hosts_per_tor;
    let mut b = GraphBuilder::new(n);
    for p in 0..pods {
        let agg = agg0 + p;
        for c in 0..cores {
            b.add_unit_edge(c, agg);
        }
        for t in 0..tors {
            let tor = tor0 + p * tors + t;
            b.add_unit_edge(agg, tor);
            for h in 0..hosts_per_tor {
                let host = host0 + (p * tors + t) * hosts_per_tor + h;
                b.add_unit_edge(tor, host);
            }
        }
    }
    b.build()
}

/// First host vertex index of [`fat_tree_like`] with the same parameters.
pub fn fat_tree_first_host(pods: usize, tors: usize, cores: usize) -> usize {
    cores + pods + pods * tors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert!(is_connected(&p));
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        for v in c.vertices() {
            assert_eq!(c.degree(v), 2);
        }
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(is_connected(&g));
    }

    #[test]
    fn star_degrees() {
        let g = star(7);
        assert_eq!(g.degree(VertexId::new(0)), 6);
        assert_eq!(g.degree(VertexId::new(3)), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // 3*3 horizontal + 2*4 vertical = 9 + 8
        assert_eq!(g.num_edges(), 17);
        assert!(is_connected(&g));
    }

    #[test]
    fn weighted_grid_weights() {
        let g = weighted_grid(2, 2, |i| (i + 1) as u64);
        assert!(g.edges().iter().all(|e| e.weight() >= 1));
        assert!(g.max_weight() >= 2);
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_tree(50, &mut rng);
        assert_eq!(g.num_edges(), 49);
        assert!(is_connected(&g));
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 15);
        assert!(is_connected(&g));
    }

    #[test]
    fn connected_random_is_connected() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1, 2, 10, 64] {
            let g = connected_random(n, 0.05, 8, &mut rng);
            assert!(is_connected(&g), "n = {n}");
            assert!(g.num_edges() >= n.saturating_sub(1));
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g0 = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn barabasi_albert_shape_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(9);
        let (n, m_attach) = (200, 3);
        let g = barabasi_albert(n, m_attach, &mut rng);
        assert_eq!(g.num_vertices(), n);
        // seed clique edges + m_attach per later vertex
        let seed_edges = (m_attach + 1) * m_attach / 2;
        assert_eq!(g.num_edges(), seed_edges + (n - m_attach - 1) * m_attach);
        assert!(is_connected(&g));
        // Preferential attachment is heavy-tailed: the max degree must be
        // well above the mean (2m/n ≈ 6); a uniform wiring of the same size
        // stays close to it.
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 3 * m_attach, "max degree {max_deg} not hub-like");
        // Every non-seed vertex got exactly distinct targets (no self
        // loops, no parallel edges from one attachment round).
        for v in g.vertices() {
            assert!(g.neighbors(v).iter().all(|nb| {
                let e = g.edge(nb.edge);
                e.u() != e.v()
            }));
        }
    }

    #[test]
    #[should_panic]
    fn barabasi_albert_rejects_tiny_n() {
        let mut rng = StdRng::seed_from_u64(1);
        barabasi_albert(3, 3, &mut rng);
    }

    #[test]
    fn lower_bound_gadget_shape() {
        let (g, s, t, last) = lower_bound_gadget(3, 5);
        assert_eq!(last.len(), 4);
        assert!(is_connected(&g));
        // Each path has `len` edges; s-t distance is len.
        let d = crate::shortest_path::distance_avoiding(&g, s, t, &[]);
        assert_eq!(d, Some(5));
        // Cutting the last edge of every path but one keeps distance len.
        let mask = crate::traversal::forbidden_mask(&g, &last[1..]);
        let d = crate::shortest_path::distance_avoiding(&g, s, t, &mask);
        assert_eq!(d, Some(5));
        // Cutting all last edges disconnects.
        let mask = crate::traversal::forbidden_mask(&g, &last);
        assert_eq!(
            crate::shortest_path::distance_avoiding(&g, s, t, &mask),
            None
        );
    }

    #[test]
    fn lower_bound_gadget_len_one() {
        let (g, s, t, last) = lower_bound_gadget(2, 1);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(last.len(), 3); // three parallel s-t edges
        assert_eq!(
            crate::shortest_path::distance_avoiding(&g, s, t, &[]),
            Some(1)
        );
    }

    #[test]
    fn fat_tree_connected() {
        let g = fat_tree_like(3, 2, 2, 2);
        assert!(is_connected(&g));
        let h0 = fat_tree_first_host(3, 2, 2);
        assert!(h0 < g.num_vertices());
        // hosts are leaves
        assert_eq!(g.degree(VertexId::new(h0)), 1);
    }
}
