//! Union-find (disjoint set union) with union by rank and path compression.
//!
//! Used by the Borůvka simulation in the sketch decoder (Claim 3.16) and by
//! several generators and tests.

/// Disjoint-set forest over `0..n`.
///
/// # Example
///
/// ```
/// use ftl_graph::union_find::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already merged
/// assert_eq!(uf.find(0), uf.find(1));
/// assert_ne!(uf.find(0), uf.find(2));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_sets(), 2);
        assert!(!uf.union(0, 3));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn chain_compresses() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        let r = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), r);
        }
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
        let uf = UnionFind::new(3);
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn singleton_self_union() {
        let mut uf = UnionFind::new(2);
        assert!(!uf.union(1, 1));
        assert_eq!(uf.num_sets(), 2);
    }
}
