//! The weighted undirected multigraph with port numbering.

use crate::error::GraphError;
use crate::ids::{EdgeId, VertexId};

/// An undirected edge with a positive integer weight.
///
/// The paper works with "positive polynomial weights"; we use `u64` weights
/// (`1` for unweighted graphs).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
    weight: u64,
}

impl Edge {
    /// Creates a new edge between `u` and `v` with the given weight.
    pub fn new(u: VertexId, v: VertexId, weight: u64) -> Self {
        Edge { u, v, weight }
    }

    /// First endpoint (as inserted).
    #[inline]
    pub fn u(&self) -> VertexId {
        self.u
    }

    /// Second endpoint (as inserted).
    #[inline]
    pub fn v(&self) -> VertexId {
        self.v
    }

    /// Edge weight (always positive).
    #[inline]
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Both endpoints, smaller index first.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        if self.u.index() <= self.v.index() {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "{x:?} is not an endpoint of edge ({:?},{:?})",
                self.u, self.v
            )
        }
    }

    /// Whether `x` is one of the endpoints.
    #[inline]
    pub fn is_incident_to(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

/// One entry of an adjacency list: the neighbor reached through this port and
/// the id of the connecting edge.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Neighbor {
    /// The vertex at the other end of the edge.
    pub vertex: VertexId,
    /// The id of the connecting edge.
    pub edge: EdgeId,
}

/// A weighted undirected multigraph.
///
/// The adjacency list of a vertex `u` defines its **port numbering**: port
/// `p` of `u` is `g.neighbors(u)[p]`. Routing tables in the paper's model
/// emit port numbers, so ports are first-class here.
///
/// `Graph` is immutable after construction; build one with [`GraphBuilder`].
///
/// # Example
///
/// ```
/// use ftl_graph::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 5);
/// b.add_edge(1, 2, 7);
/// let g: Graph = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(ftl_graph::VertexId::new(1)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    edges: Vec<Edge>,
    adj: Vec<Vec<Neighbor>>,
    total_weight: u128,
    max_weight: u64,
}

impl Graph {
    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges `m` (each undirected edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// All edges, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over `(EdgeId, &Edge)` pairs.
    pub fn edge_ids(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), e))
    }

    /// The adjacency list of `u`; index = port number.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[Neighbor] {
        &self.adj[u.index()]
    }

    /// Degree of `u` (number of incident edge endpoints; a self-loop counts
    /// twice because it occupies two ports).
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj[u.index()].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|i| self.adj[i].len())
            .max()
            .unwrap_or(0)
    }

    /// The neighbor behind port `p` of vertex `u`, if the port exists.
    #[inline]
    pub fn port(&self, u: VertexId, p: usize) -> Option<Neighbor> {
        self.adj[u.index()].get(p).copied()
    }

    /// The port number through which `u` reaches edge `e`, i.e. the index of
    /// `e` in `u`'s adjacency list.
    ///
    /// Returns `None` if `e` is not incident to `u`.
    pub fn port_of_edge(&self, u: VertexId, e: EdgeId) -> Option<usize> {
        self.adj[u.index()].iter().position(|nb| nb.edge == e)
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices()).map(VertexId::new)
    }

    /// Sum of all edge weights.
    #[inline]
    pub fn total_weight(&self) -> u128 {
        self.total_weight
    }

    /// Weight `W` of the heaviest edge (1 for an edgeless graph, so that
    /// `log(nW)` style scale counts stay well-defined).
    #[inline]
    pub fn max_weight(&self) -> u64 {
        self.max_weight.max(1)
    }

    /// `⌈log2(n·W)⌉ + 1`, the number `K` of distance scales used by the
    /// distance labeling and routing schemes (Section 4 of the paper).
    pub fn num_distance_scales(&self) -> u32 {
        let nw = (self.num_vertices() as u128).max(2) * self.max_weight() as u128;
        (128 - nw.leading_zeros()) + 1
    }

    /// Checks that a vertex index is in range.
    pub fn check_vertex(&self, u: VertexId) -> Result<(), GraphError> {
        if u.index() < self.num_vertices() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                index: u.index(),
                num_vertices: self.num_vertices(),
            })
        }
    }

    /// Checks that an edge index is in range.
    pub fn check_edge(&self, e: EdgeId) -> Result<(), GraphError> {
        if e.index() < self.num_edges() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfRange {
                index: e.index(),
                num_edges: self.num_edges(),
            })
        }
    }

    /// Returns some edge id connecting `u` and `v`, if one exists.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.adj[u.index()]
            .iter()
            .find(|nb| nb.vertex == v)
            .map(|nb| nb.edge)
    }
}

/// Incremental builder for [`Graph`].
///
/// Ports are assigned in insertion order: the `i`-th edge added at `u`
/// becomes port `i` of `u`.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}` with the given positive weight and
    /// returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `weight == 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: u64) -> EdgeId {
        assert!(u < self.n, "endpoint {u} out of range (n = {})", self.n);
        assert!(v < self.n, "endpoint {v} out of range (n = {})", self.n);
        assert!(weight > 0, "edge weights must be positive");
        let id = EdgeId::new(self.edges.len());
        self.edges
            .push(Edge::new(VertexId::new(u), VertexId::new(v), weight));
        id
    }

    /// Adds an unweighted (weight-1) edge.
    pub fn add_unit_edge(&mut self, u: usize, v: usize) -> EdgeId {
        self.add_edge(u, v, 1)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); self.n];
        let mut total: u128 = 0;
        let mut max_w: u64 = 0;
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId::new(i);
            adj[e.u().index()].push(Neighbor {
                vertex: e.v(),
                edge: id,
            });
            // A self-loop still occupies two ports, matching the usual
            // degree convention.
            adj[e.v().index()].push(Neighbor {
                vertex: e.u(),
                edge: id,
            });
            total += e.weight() as u128;
            max_w = max_w.max(e.weight());
        }
        Graph {
            edges: self.edges,
            adj,
            total_weight: total,
            max_weight: max_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 0, 3);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.max_weight(), 3);
    }

    #[test]
    fn ports_match_adjacency_order() {
        let g = triangle();
        let v0 = VertexId::new(0);
        // Vertex 0 got edge 0 (to 1) first, then edge 2 (to 2).
        assert_eq!(g.port(v0, 0).unwrap().vertex, VertexId::new(1));
        assert_eq!(g.port(v0, 1).unwrap().vertex, VertexId::new(2));
        assert_eq!(g.port(v0, 2), None);
        assert_eq!(g.port_of_edge(v0, EdgeId::new(0)), Some(0));
        assert_eq!(g.port_of_edge(v0, EdgeId::new(2)), Some(1));
        assert_eq!(g.port_of_edge(v0, EdgeId::new(1)), None);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId::new(1));
        assert_eq!(e.other(VertexId::new(1)), VertexId::new(2));
        assert_eq!(e.other(VertexId::new(2)), VertexId::new(1));
        assert!(e.is_incident_to(VertexId::new(1)));
        assert!(!e.is_incident_to(VertexId::new(0)));
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_on_non_endpoint() {
        let g = triangle();
        g.edge(EdgeId::new(0)).other(VertexId::new(2));
    }

    #[test]
    fn endpoints_are_normalized() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 1, 1);
        let g = b.build();
        assert_eq!(
            g.edge(EdgeId::new(0)).endpoints(),
            (VertexId::new(1), VertexId::new(3))
        );
    }

    #[test]
    fn multigraph_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        let e1 = b.add_edge(0, 1, 1);
        let e2 = b.add_edge(0, 1, 4);
        let g = b.build();
        assert_ne!(e1, e2);
        assert_eq!(g.degree(VertexId::new(0)), 2);
        assert_eq!(g.degree(VertexId::new(1)), 2);
        // find_edge returns one of the parallel edges.
        assert!(g.find_edge(VertexId::new(0), VertexId::new(1)).is_some());
    }

    #[test]
    fn self_loop_occupies_two_ports() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0, 1);
        let g = b.build();
        assert_eq!(g.degree(VertexId::new(0)), 2);
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn check_bounds() {
        let g = triangle();
        assert!(g.check_vertex(VertexId::new(2)).is_ok());
        assert!(g.check_vertex(VertexId::new(3)).is_err());
        assert!(g.check_edge(EdgeId::new(2)).is_ok());
        assert!(g.check_edge(EdgeId::new(3)).is_err());
    }

    #[test]
    fn distance_scales_grow_with_weight() {
        let g = triangle();
        let k1 = g.num_distance_scales();
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1_000_000);
        let g2 = b.build();
        assert!(g2.num_distance_scales() > k1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_weight(), 1);
    }

    #[test]
    fn edge_ids_enumerates_in_order() {
        let g = triangle();
        let ids: Vec<usize> = g.edge_ids().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
