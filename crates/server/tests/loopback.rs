//! End-to-end loopback tests: real sockets, real threads, BFS ground
//! truth. The headline scenario is the PR's acceptance criterion — 64
//! concurrent connections sharing 8 fault sets, every answer correct,
//! and far fewer engine executions than requests.

// Test code: panicking asserts are the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{store_from_cycle_space, EngineConfig, EpochStore};
use ftl_graph::generators;
use ftl_graph::{EdgeId, VertexId};
use ftl_labels::wire::WireLabel;
use ftl_seeded::Seed;
use ftl_server::{
    derive_fault_sets, frame, run_loadgen, LoadgenConfig, QueryRequestFrame, QueryResponseFrame,
    ResponseStatus, Server, ServerConfig, ServerHandle,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn spawn_server(g: &ftl_graph::Graph, config: ServerConfig) -> ServerHandle {
    let scheme = CycleSpaceScheme::label(g, 8, Seed::new(7)).expect("graph is connected");
    let store = store_from_cycle_space(&scheme, 8).unwrap();
    let epochs = Arc::new(EpochStore::new(Arc::new(store)));
    Server::spawn(epochs, EngineConfig::default(), config, "127.0.0.1:0").unwrap()
}

fn read_response(stream: &mut TcpStream) -> QueryResponseFrame {
    let stop = AtomicBool::new(false);
    let body = frame::read_frame(stream, frame::MAX_FRAME_BYTES_DEFAULT, &stop).unwrap();
    QueryResponseFrame::from_wire(&body).unwrap()
}

fn send_request(stream: &mut TcpStream, req: &QueryRequestFrame) {
    frame::write_frame(stream, &req.to_wire()).unwrap();
}

/// The acceptance scenario: 64 concurrent connections, a shared
/// vocabulary of 8 fault sets, every response checked against BFS, and
/// cross-connection batching actually collapsing the work.
#[test]
fn sixty_four_connections_eight_fault_sets_batched_and_correct() {
    let g = generators::grid(16, 16);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 2,
            engine_workers: 2,
            window: Duration::from_millis(4),
            ..ServerConfig::default()
        },
    );
    let sets = derive_fault_sets(&g, 8, 4, 99);
    let report = run_loadgen(
        handle.local_addr(),
        &g,
        &sets,
        LoadgenConfig {
            clients: 64,
            requests_per_client: 8,
            queries_per_request: 8,
            seed: 5,
            ..LoadgenConfig::default()
        },
    );
    let stats = handle.shutdown();

    assert_eq!(report.mismatches, 0, "answers must match BFS ground truth");
    assert_eq!(report.io_errors, 0);
    assert_eq!(report.unserved, 0);
    assert_eq!(report.requests_ok, 64 * 8);
    assert_eq!(report.queries_ok, 64 * 8 * 8);
    assert_eq!(stats.requests, 64 * 8);
    assert_eq!(stats.queries, 64 * 8 * 8);
    assert_eq!(stats.connections_accepted, 64);
    assert_eq!(stats.tenants.len(), 64);
    // Cross-connection batching: 512 requests over an 8-set vocabulary
    // must collapse into far fewer engine executions than requests.
    assert!(stats.batches >= 1);
    assert!(
        stats.groups < stats.requests / 2,
        "batching collapsed {} requests into {} groups across {} windows — not enough sharing",
        stats.requests,
        stats.groups,
        stats.batches
    );
    // Latency percentiles were recorded for every tenant.
    assert!(stats.tenants.iter().all(|t| t.p99_ms > 0.0));
}

/// Admission control: a tiny budget inside a long window rejects the
/// overflowing request with a typed `ServerBusy` carrying the budget.
#[test]
fn admission_control_answers_server_busy() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(300),
            pending_budget: 4,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Fills the budget exactly; sits in the accumulation window.
    let filler = QueryRequestFrame {
        request_id: 1,
        tenant_id: 9,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(1)); 4],
    };
    send_request(&mut stream, &filler);
    // One more query than the budget has room for: must bounce, and the
    // reject must come back *before* the window closes (admission is
    // synchronous, not queued).
    let overflow = QueryRequestFrame {
        request_id: 2,
        tenant_id: 9,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(2), VertexId::new(3))],
    };
    send_request(&mut stream, &overflow);

    let busy = read_response(&mut stream);
    assert_eq!(busy.request_id, 2);
    assert_eq!(busy.epoch, 0, "rejects never reach an engine");
    assert_eq!(
        busy.status,
        ResponseStatus::ServerBusy {
            pending: 4,
            budget: 4,
        }
    );
    // The filler is eventually served once its window closes.
    let ok = read_response(&mut stream);
    assert_eq!(ok.request_id, 1);
    assert!(matches!(&ok.status, ResponseStatus::Ok(a) if a.len() == 4));

    let stats = handle.shutdown();
    assert_eq!(stats.rejects, 1);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.tenants.first().map(|t| t.rejects), Some(1));
}

/// Graceful shutdown drains admitted requests: a request sitting in a
/// long accumulation window is still answered (on the pinned epoch)
/// after `shutdown` is called.
#[test]
fn shutdown_drains_in_flight_window() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = QueryRequestFrame {
        request_id: 77,
        tenant_id: 1,
        faults: vec![EdgeId::new(3)],
        queries: vec![(VertexId::new(0), VertexId::new(35))],
    };
    send_request(&mut stream, &req);
    // Let the reader thread admit it into the (minute-long) window.
    std::thread::sleep(Duration::from_millis(150));

    // Shutdown must flush the window instead of waiting out the minute;
    // bound the whole drain to keep a regression from hanging the suite.
    let (tx, rx) = std::sync::mpsc::channel();
    let drainer = std::thread::spawn(move || {
        let _ = tx.send(handle.shutdown());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("shutdown did not drain the in-flight window in time");
    drainer.join().unwrap();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.queries, 1);

    let resp = read_response(&mut stream);
    assert_eq!(resp.request_id, 77);
    assert_eq!(resp.epoch, 1, "drained on the pinned epoch");
    assert!(matches!(&resp.status, ResponseStatus::Ok(a) if a.len() == 1));
}

/// A frame that parses but is not a valid wire record closes the
/// connection (the stream can only contain garbage after a desync).
#[test]
fn malformed_frame_closes_connection() {
    let g = generators::grid(4, 4);
    let handle = spawn_server(&g, ServerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&8u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xDE; 8]).unwrap();
    stream.flush().unwrap();
    // The server hangs up: EOF, not a response.
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    let stats = handle.shutdown();
    assert_eq!(stats.frame_errors, 1);
    assert_eq!(stats.requests, 0);
}

/// An oversized declared length closes the connection before any
/// allocation or read of the body.
#[test]
fn oversized_frame_closes_connection() {
    let g = generators::grid(4, 4);
    let handle = spawn_server(
        &g,
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    let stats = handle.shutdown();
    assert_eq!(stats.frame_errors, 1);
}

/// A request whose *vertex* id is out of range fails alone even when it
/// shares its fault-set group with healthy requests: groups merge
/// queries from many connections, so per-query isolation inside the
/// group is what keeps one tenant's typo from failing everyone else's
/// co-batched answers.
#[test]
fn bad_vertex_isolated_within_shared_fault_set_group() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Same fault set — the popular, shared kind (here: one real edge) —
    // so both requests land in ONE group of one window.
    let bad = QueryRequestFrame {
        request_id: 1,
        tenant_id: 3,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(999_999), VertexId::new(1))],
    };
    let good = QueryRequestFrame {
        request_id: 2,
        tenant_id: 4,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(35))],
    };
    send_request(&mut stream, &bad);
    send_request(&mut stream, &good);
    let (a, b) = (read_response(&mut stream), read_response(&mut stream));
    let (bad_resp, good_resp) = if a.request_id == 1 { (a, b) } else { (b, a) };
    assert_eq!(bad_resp.status, ResponseStatus::EngineFailed);
    assert!(
        matches!(&good_resp.status, ResponseStatus::Ok(v) if v.len() == 1),
        "healthy request poisoned by a co-batched bad vertex id: {:?}",
        good_resp.status
    );
    let stats = handle.shutdown();
    // One window, one merged group: the isolation really happened inside
    // a shared group, not across two separate ones.
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.groups, 1);
    assert_eq!(stats.engine_errors, 1);
    assert_eq!(stats.requests, 1);
}

/// Response writes are bounded: a registered writer whose peer never
/// reads must surface an error after the write timeout, not block its
/// calling thread indefinitely.
#[test]
fn stalled_reader_write_times_out_instead_of_blocking() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let _stalled_peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (server_side, _) = listener.accept().unwrap();
    let registry = ftl_server::registry::Registry::new();
    let (_, writer) = registry
        .register(&server_side, Some(Duration::from_millis(50)))
        .unwrap();
    // 64 KiB frames overwhelm any sane socket buffering within a few
    // hundred sends; the peer reads nothing, so an error MUST arrive.
    let record = vec![0xA5u8; 1 << 16];
    let mut timed_out = false;
    for _ in 0..10_000 {
        if writer.send(&record).is_err() {
            timed_out = true;
            break;
        }
    }
    assert!(
        timed_out,
        "writes to a stalled reader never errored — an executor would block forever"
    );
}

/// A client that stops reading its responses is dropped after the write
/// timeout and costs only its own connection: other connections keep
/// being served, and shutdown still drains in bounded time.
#[test]
fn stalled_reader_costs_only_its_own_connection() {
    let g = generators::grid(8, 8);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 2,
            engine_workers: 0,
            window: Duration::from_micros(500),
            pending_budget: 1 << 12,
            write_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );

    // The stalled client floods single-query requests and never reads a
    // byte back. Its responses fill its TCP window; past the write
    // timeout the server drops the connection, which eventually fails
    // these sends (reset socket) — capped so the test terminates even if
    // kernel buffering absorbs everything.
    let mut stalled = TcpStream::connect(handle.local_addr()).unwrap();
    let flood = QueryRequestFrame {
        request_id: 0,
        tenant_id: 1,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(1))],
    };
    let record = flood.to_wire();
    for _ in 0..400_000 {
        if frame::write_frame(&mut stalled, &record).is_err() {
            break;
        }
    }

    // A well-behaved client on another connection is served normally
    // while (and after) the stalled one chokes.
    let mut live = TcpStream::connect(handle.local_addr()).unwrap();
    live.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let good = QueryRequestFrame {
        request_id: 7,
        tenant_id: 2,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(63))],
    };
    send_request(&mut live, &good);
    let resp = read_response(&mut live);
    assert_eq!(resp.request_id, 7);
    assert!(matches!(&resp.status, ResponseStatus::Ok(a) if a.len() == 1));

    // Shutdown must drain in bounded time despite the stalled backlog —
    // every write to the dropped connection is skipped or bounded.
    let (tx, rx) = std::sync::mpsc::channel();
    let drainer = std::thread::spawn(move || {
        let _ = tx.send(handle.shutdown());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown blocked behind a stalled reader");
    drainer.join().unwrap();
    assert!(stats.requests >= 1, "the live client's request was served");
}

/// Requests naming out-of-range edges or vertices get a typed
/// `EngineFailed` — isolated to their own fault-set group, never
/// poisoning co-batched requests.
#[test]
fn bad_fault_set_isolated_to_engine_failed() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Same window: one bad group, one good group.
    let bad = QueryRequestFrame {
        request_id: 1,
        tenant_id: 2,
        faults: vec![EdgeId::new(999_999)],
        queries: vec![(VertexId::new(0), VertexId::new(1))],
    };
    let good = QueryRequestFrame {
        request_id: 2,
        tenant_id: 2,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(35))],
    };
    send_request(&mut stream, &bad);
    send_request(&mut stream, &good);
    let (a, b) = (read_response(&mut stream), read_response(&mut stream));
    let (bad_resp, good_resp) = if a.request_id == 1 { (a, b) } else { (b, a) };
    assert_eq!(bad_resp.status, ResponseStatus::EngineFailed);
    assert!(matches!(&good_resp.status, ResponseStatus::Ok(v) if v.len() == 1));
    let stats = handle.shutdown();
    assert_eq!(stats.engine_errors, 1);
    assert_eq!(stats.requests, 1);
}
