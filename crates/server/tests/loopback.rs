//! End-to-end loopback tests: real sockets, real threads, BFS ground
//! truth. The headline scenario is the PR's acceptance criterion — 64
//! concurrent connections sharing 8 fault sets, every answer correct,
//! and far fewer engine executions than requests.

// Test code: panicking asserts are the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{store_from_cycle_space, EngineConfig, EpochStore};
use ftl_graph::generators;
use ftl_graph::{EdgeId, VertexId};
use ftl_labels::wire::WireLabel;
use ftl_seeded::Seed;
use ftl_server::{
    derive_fault_sets, frame, run_loadgen, LoadgenConfig, QueryRequestFrame, QueryResponseFrame,
    ResponseStatus, Server, ServerConfig, ServerHandle,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn spawn_server(g: &ftl_graph::Graph, config: ServerConfig) -> ServerHandle {
    let scheme = CycleSpaceScheme::label(g, 8, Seed::new(7)).expect("graph is connected");
    let store = store_from_cycle_space(&scheme, 8).unwrap();
    let epochs = Arc::new(EpochStore::new(Arc::new(store)));
    Server::spawn(epochs, EngineConfig::default(), config, "127.0.0.1:0").unwrap()
}

fn read_response(stream: &mut TcpStream) -> QueryResponseFrame {
    let stop = AtomicBool::new(false);
    let body = frame::read_frame(stream, frame::MAX_FRAME_BYTES_DEFAULT, &stop).unwrap();
    QueryResponseFrame::from_wire(&body).unwrap()
}

fn send_request(stream: &mut TcpStream, req: &QueryRequestFrame) {
    frame::write_frame(stream, &req.to_wire()).unwrap();
}

/// The acceptance scenario: 64 concurrent connections, a shared
/// vocabulary of 8 fault sets, every response checked against BFS, and
/// cross-connection batching actually collapsing the work.
#[test]
fn sixty_four_connections_eight_fault_sets_batched_and_correct() {
    let g = generators::grid(16, 16);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 2,
            engine_workers: 2,
            window: Duration::from_millis(4),
            ..ServerConfig::default()
        },
    );
    let sets = derive_fault_sets(&g, 8, 4, 99);
    let report = run_loadgen(
        handle.local_addr(),
        &g,
        &sets,
        LoadgenConfig {
            clients: 64,
            requests_per_client: 8,
            queries_per_request: 8,
            seed: 5,
            ..LoadgenConfig::default()
        },
    );
    let stats = handle.shutdown();

    assert_eq!(report.mismatches, 0, "answers must match BFS ground truth");
    assert_eq!(report.io_errors, 0);
    assert_eq!(report.unserved, 0);
    assert_eq!(report.requests_ok, 64 * 8);
    assert_eq!(report.queries_ok, 64 * 8 * 8);
    assert_eq!(stats.requests, 64 * 8);
    assert_eq!(stats.queries, 64 * 8 * 8);
    assert_eq!(stats.connections_accepted, 64);
    assert_eq!(stats.tenants.len(), 64);
    // Cross-connection batching: 512 requests over an 8-set vocabulary
    // must collapse into far fewer engine executions than requests.
    assert!(stats.batches >= 1);
    assert!(
        stats.groups < stats.requests / 2,
        "batching collapsed {} requests into {} groups across {} windows — not enough sharing",
        stats.requests,
        stats.groups,
        stats.batches
    );
    // Latency percentiles were recorded for every tenant.
    assert!(stats.tenants.iter().all(|t| t.p99_ms > 0.0));
}

/// Admission control: a tiny budget inside a long window rejects the
/// overflowing request with a typed `ServerBusy` carrying the budget.
#[test]
fn admission_control_answers_server_busy() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(300),
            pending_budget: 4,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Fills the budget exactly; sits in the accumulation window.
    let filler = QueryRequestFrame {
        request_id: 1,
        tenant_id: 9,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(1)); 4],
        ttl_ms: 0,
    };
    send_request(&mut stream, &filler);
    // One more query than the budget has room for: must bounce, and the
    // reject must come back *before* the window closes (admission is
    // synchronous, not queued).
    let overflow = QueryRequestFrame {
        request_id: 2,
        tenant_id: 9,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(2), VertexId::new(3))],
        ttl_ms: 0,
    };
    send_request(&mut stream, &overflow);

    let busy = read_response(&mut stream);
    assert_eq!(busy.request_id, 2);
    assert_eq!(busy.epoch, 0, "rejects never reach an engine");
    assert_eq!(
        busy.status,
        ResponseStatus::ServerBusy {
            pending: 4,
            budget: 4,
        }
    );
    // The filler is eventually served once its window closes.
    let ok = read_response(&mut stream);
    assert_eq!(ok.request_id, 1);
    assert!(matches!(&ok.status, ResponseStatus::Ok(a) if a.len() == 4));

    let stats = handle.shutdown();
    assert_eq!(stats.rejects, 1);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.tenants.first().map(|t| t.rejects), Some(1));
}

/// Graceful shutdown drains admitted requests: a request sitting in a
/// long accumulation window is still answered (on the pinned epoch)
/// after `shutdown` is called.
#[test]
fn shutdown_drains_in_flight_window() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = QueryRequestFrame {
        request_id: 77,
        tenant_id: 1,
        faults: vec![EdgeId::new(3)],
        queries: vec![(VertexId::new(0), VertexId::new(35))],
        ttl_ms: 0,
    };
    send_request(&mut stream, &req);
    // Let the reader thread admit it into the (minute-long) window.
    std::thread::sleep(Duration::from_millis(150));

    // Shutdown must flush the window instead of waiting out the minute;
    // bound the whole drain to keep a regression from hanging the suite.
    let (tx, rx) = std::sync::mpsc::channel();
    let drainer = std::thread::spawn(move || {
        let _ = tx.send(handle.shutdown());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("shutdown did not drain the in-flight window in time");
    drainer.join().unwrap();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.queries, 1);

    let resp = read_response(&mut stream);
    assert_eq!(resp.request_id, 77);
    assert_eq!(resp.epoch, 1, "drained on the pinned epoch");
    assert!(matches!(&resp.status, ResponseStatus::Ok(a) if a.len() == 1));
}

/// A request whose TTL expires inside the accumulation window is answered
/// with a typed `DeadlineExceeded` before elimination — no engine work is
/// spent on it, and a no-deadline request sharing the window is
/// unaffected.
#[test]
fn expired_ttl_answered_before_elimination() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Expires ~295ms before the 300ms window closes.
    let doomed = QueryRequestFrame {
        request_id: 1,
        tenant_id: 5,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(35)); 3],
        ttl_ms: 5,
    };
    // Same fault set, no deadline: must be served untouched.
    let live = QueryRequestFrame {
        request_id: 2,
        tenant_id: 5,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(35))],
        ttl_ms: 0,
    };
    send_request(&mut stream, &doomed);
    send_request(&mut stream, &live);
    let (a, b) = (read_response(&mut stream), read_response(&mut stream));
    let (doomed_resp, live_resp) = if a.request_id == 1 { (a, b) } else { (b, a) };
    assert_eq!(doomed_resp.status, ResponseStatus::DeadlineExceeded);
    assert_eq!(
        doomed_resp.epoch, 0,
        "expired requests never reach an engine"
    );
    assert!(matches!(&live_resp.status, ResponseStatus::Ok(v) if v.len() == 1));
    let stats = handle.shutdown();
    assert_eq!(stats.deadline_drops, 1);
    assert_eq!(stats.requests, 1, "only the live request was served");
    assert_eq!(
        stats.groups, 1,
        "the expired request must not have formed a group"
    );
    assert_eq!(
        stats.watchdog_fires, 0,
        "the executor caught this, not the watchdog"
    );
}

/// The batcher watchdog: when the only executor is parked on a response
/// write against a client that stopped reading, requests queued behind
/// it sit past `watchdog_factor × window` and are force-released and
/// answered `ServerBusy` by the watchdog thread instead of waiting for
/// the executor to come back.
///
/// Parking is real TCP backpressure: the stalled client floods enough
/// single-query requests that their responses (~30 bytes each) overflow
/// loopback socket buffering (a few MB), so the executor blocks inside a
/// response write for up to `write_timeout`. The timeout is finite (the
/// production shape) so the test also exercises the recovery path — the
/// stalled connection is eventually forfeited and the server heals.
#[test]
fn watchdog_force_releases_requests_stuck_behind_a_parked_executor() {
    const FLOOD: u64 = 150_000;
    let g = generators::grid(8, 8);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(20),
            // Big enough that the flood is admitted (charge = 1/request),
            // so `ServerBusy` can only come from the watchdog.
            pending_budget: 1 << 20,
            write_timeout: Duration::from_secs(1),
            watchdog_factor: 2, // stuck = older than 40ms
            ..ServerConfig::default()
        },
    );

    // The stalled client floods requests and never reads a byte back.
    // Blocking writes (no timeout): the server's reader always drains, so
    // the full flood lands. The stream is returned (not dropped) so the
    // connection stays open — an EOF would deregister it and instantly
    // unblock the executor's write.
    let addr = handle.local_addr();
    let flooder = std::thread::spawn(move || {
        let mut stalled = TcpStream::connect(addr).unwrap();
        let flood = QueryRequestFrame {
            request_id: 0,
            tenant_id: 1,
            faults: vec![EdgeId::new(0)],
            queries: vec![(VertexId::new(0), VertexId::new(1))],
            ttl_ms: 0,
        };
        let record = flood.to_wire();
        for _ in 0..FLOOD {
            if frame::write_frame(&mut stalled, &record).is_err() {
                break;
            }
        }
        stalled
    });

    // A live client keeps asking throughout. While the executor is parked
    // its requests sit in the batcher past the watchdog threshold and
    // come back `ServerBusy` from the watchdog thread.
    let mut live = TcpStream::connect(handle.local_addr()).unwrap();
    live.set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let mut rescued = false;
    let mut attempt = 0u64;
    while std::time::Instant::now() < deadline {
        attempt += 1;
        let req = QueryRequestFrame {
            request_id: attempt,
            tenant_id: 2,
            faults: vec![EdgeId::new(0)],
            queries: vec![(VertexId::new(0), VertexId::new(63))],
            ttl_ms: 0,
        };
        send_request(&mut live, &req);
        // Bound the wait: read_frame retries through socket timeouts, so
        // a timer flag is what actually limits it.
        let give_up = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&give_up);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(800));
            flag.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let Ok(body) = frame::read_frame(&mut live, frame::MAX_FRAME_BYTES_DEFAULT, &give_up)
        else {
            // No answer yet: the request was taken into the parked window
            // itself — the next attempt lands in the open queue.
            continue;
        };
        let resp = QueryResponseFrame::from_wire(&body).unwrap();
        if matches!(resp.status, ResponseStatus::ServerBusy { .. })
            && handle.stats().watchdog_fires > 0
        {
            rescued = true;
            break;
        }
    }
    assert!(
        rescued,
        "watchdog never rescued a stuck request (fires = {})",
        handle.stats().watchdog_fires
    );
    drop(live);
    drop(flooder.join().unwrap());
    // The finite write timeout means the parked executor recovers (the
    // stalled connection is forfeited), so a graceful shutdown works.
    let stats = handle.shutdown();
    assert!(stats.watchdog_fires > 0);
}

/// The loadgen's global run deadline: a black-holed server (accepts, then
/// never answers a byte) cannot hang a run — it ends at the bound with
/// the typed `timed_out` marker instead of blocking forever.
#[test]
fn loadgen_run_deadline_beats_a_black_holed_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let hole_stop = Arc::clone(&stop);
    let hole = std::thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        let mut conns = Vec::new();
        while !hole_stop.load(std::sync::atomic::Ordering::Relaxed) {
            match listener.accept() {
                Ok((conn, _)) => conns.push(conn),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        drop(conns);
    });

    let g = generators::grid(4, 4);
    let started = std::time::Instant::now();
    let report = run_loadgen(
        addr,
        &g,
        &[vec![EdgeId::new(0)]],
        LoadgenConfig {
            clients: 4,
            requests_per_client: 8,
            queries_per_request: 2,
            seed: 3,
            run_deadline: Duration::from_secs(2),
            ..LoadgenConfig::default()
        },
    );
    let elapsed = started.elapsed();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    hole.join().unwrap();

    assert!(report.timed_out, "the run deadline must be reported as hit");
    assert_eq!(report.requests_ok, 0, "a black hole answers nothing");
    assert_eq!(report.mismatches, 0);
    // Bounded wall-clock: deadline plus at most one attempt's grace, with
    // slack for a loaded CI machine — nowhere near the 10s per-attempt
    // timeout times the retry budget.
    assert!(
        elapsed < Duration::from_secs(8),
        "run took {elapsed:?}, the deadline did not bound it"
    );
}

/// A frame that parses but is not a valid wire record closes the
/// connection (the stream can only contain garbage after a desync).
#[test]
fn malformed_frame_closes_connection() {
    let g = generators::grid(4, 4);
    let handle = spawn_server(&g, ServerConfig::default());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&8u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xDE; 8]).unwrap();
    stream.flush().unwrap();
    // The server hangs up: EOF, not a response.
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    let stats = handle.shutdown();
    assert_eq!(stats.frame_errors, 1);
    assert_eq!(stats.requests, 0);
}

/// An oversized declared length closes the connection before any
/// allocation or read of the body.
#[test]
fn oversized_frame_closes_connection() {
    let g = generators::grid(4, 4);
    let handle = spawn_server(
        &g,
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    let stats = handle.shutdown();
    assert_eq!(stats.frame_errors, 1);
}

/// A request whose *vertex* id is out of range fails alone even when it
/// shares its fault-set group with healthy requests: groups merge
/// queries from many connections, so per-query isolation inside the
/// group is what keeps one tenant's typo from failing everyone else's
/// co-batched answers.
#[test]
fn bad_vertex_isolated_within_shared_fault_set_group() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Same fault set — the popular, shared kind (here: one real edge) —
    // so both requests land in ONE group of one window.
    let bad = QueryRequestFrame {
        request_id: 1,
        tenant_id: 3,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(999_999), VertexId::new(1))],
        ttl_ms: 0,
    };
    let good = QueryRequestFrame {
        request_id: 2,
        tenant_id: 4,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(35))],
        ttl_ms: 0,
    };
    send_request(&mut stream, &bad);
    send_request(&mut stream, &good);
    let (a, b) = (read_response(&mut stream), read_response(&mut stream));
    let (bad_resp, good_resp) = if a.request_id == 1 { (a, b) } else { (b, a) };
    assert_eq!(bad_resp.status, ResponseStatus::EngineFailed);
    assert!(
        matches!(&good_resp.status, ResponseStatus::Ok(v) if v.len() == 1),
        "healthy request poisoned by a co-batched bad vertex id: {:?}",
        good_resp.status
    );
    let stats = handle.shutdown();
    // One window, one merged group: the isolation really happened inside
    // a shared group, not across two separate ones.
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.groups, 1);
    assert_eq!(stats.engine_errors, 1);
    assert_eq!(stats.requests, 1);
}

/// Response writes are bounded: a registered writer whose peer never
/// reads must surface an error after the write timeout, not block its
/// calling thread indefinitely.
#[test]
fn stalled_reader_write_times_out_instead_of_blocking() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let _stalled_peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (server_side, _) = listener.accept().unwrap();
    let registry = ftl_server::registry::Registry::new();
    let (_, writer) = registry
        .register(&server_side, Some(Duration::from_millis(50)))
        .unwrap();
    // 64 KiB frames overwhelm any sane socket buffering within a few
    // hundred sends; the peer reads nothing, so an error MUST arrive.
    let record = vec![0xA5u8; 1 << 16];
    let mut timed_out = false;
    for _ in 0..10_000 {
        if writer.send(&record).is_err() {
            timed_out = true;
            break;
        }
    }
    assert!(
        timed_out,
        "writes to a stalled reader never errored — an executor would block forever"
    );
}

/// A client that stops reading its responses is dropped after the write
/// timeout and costs only its own connection: other connections keep
/// being served, and shutdown still drains in bounded time.
#[test]
fn stalled_reader_costs_only_its_own_connection() {
    let g = generators::grid(8, 8);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 2,
            engine_workers: 0,
            window: Duration::from_micros(500),
            pending_budget: 1 << 12,
            write_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );

    // The stalled client floods single-query requests and never reads a
    // byte back. Its responses fill its TCP window; past the write
    // timeout the server drops the connection, which eventually fails
    // these sends (reset socket) — capped so the test terminates even if
    // kernel buffering absorbs everything.
    let mut stalled = TcpStream::connect(handle.local_addr()).unwrap();
    let flood = QueryRequestFrame {
        request_id: 0,
        tenant_id: 1,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(1))],
        ttl_ms: 0,
    };
    let record = flood.to_wire();
    for _ in 0..400_000 {
        if frame::write_frame(&mut stalled, &record).is_err() {
            break;
        }
    }

    // A well-behaved client on another connection is served normally
    // while (and after) the stalled one chokes.
    let mut live = TcpStream::connect(handle.local_addr()).unwrap();
    live.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let good = QueryRequestFrame {
        request_id: 7,
        tenant_id: 2,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(63))],
        ttl_ms: 0,
    };
    send_request(&mut live, &good);
    let resp = read_response(&mut live);
    assert_eq!(resp.request_id, 7);
    assert!(matches!(&resp.status, ResponseStatus::Ok(a) if a.len() == 1));

    // Shutdown must drain in bounded time despite the stalled backlog —
    // every write to the dropped connection is skipped or bounded.
    let (tx, rx) = std::sync::mpsc::channel();
    let drainer = std::thread::spawn(move || {
        let _ = tx.send(handle.shutdown());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown blocked behind a stalled reader");
    drainer.join().unwrap();
    assert!(stats.requests >= 1, "the live client's request was served");
}

/// Requests naming out-of-range edges or vertices get a typed
/// `EngineFailed` — isolated to their own fault-set group, never
/// poisoning co-batched requests.
#[test]
fn bad_fault_set_isolated_to_engine_failed() {
    let g = generators::grid(6, 6);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 1,
            engine_workers: 0,
            window: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Same window: one bad group, one good group.
    let bad = QueryRequestFrame {
        request_id: 1,
        tenant_id: 2,
        faults: vec![EdgeId::new(999_999)],
        queries: vec![(VertexId::new(0), VertexId::new(1))],
        ttl_ms: 0,
    };
    let good = QueryRequestFrame {
        request_id: 2,
        tenant_id: 2,
        faults: vec![EdgeId::new(0)],
        queries: vec![(VertexId::new(0), VertexId::new(35))],
        ttl_ms: 0,
    };
    send_request(&mut stream, &bad);
    send_request(&mut stream, &good);
    let (a, b) = (read_response(&mut stream), read_response(&mut stream));
    let (bad_resp, good_resp) = if a.request_id == 1 { (a, b) } else { (b, a) };
    assert_eq!(bad_resp.status, ResponseStatus::EngineFailed);
    assert!(matches!(&good_resp.status, ResponseStatus::Ok(v) if v.len() == 1));
    let stats = handle.shutdown();
    assert_eq!(stats.engine_errors, 1);
    assert_eq!(stats.requests, 1);
}
