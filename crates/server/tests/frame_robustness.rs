//! Property tests for the serving envelope: round-trips, and the
//! guarantee that corrupted or truncated frames decode to typed errors —
//! never a panic, never a silent misparse, never a hang.

// Test code: panicking asserts are the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_graph::{EdgeId, VertexId};
use ftl_labels::wire::WireLabel;
use ftl_server::{
    frame, QueryRequestFrame, QueryResponseFrame, ResponseStatus, MAX_FRAME_BYTES_DEFAULT,
};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::atomic::AtomicBool;

fn request(
    request_id: u64,
    tenant: u32,
    faults: &[u32],
    queries: &[(u32, u32)],
) -> QueryRequestFrame {
    QueryRequestFrame {
        request_id,
        tenant_id: tenant,
        faults: faults.iter().map(|&e| EdgeId::new(e as usize)).collect(),
        queries: queries
            .iter()
            .map(|&(s, t)| (VertexId::new(s as usize), VertexId::new(t as usize)))
            .collect(),
        ttl_ms: 0,
    }
}

/// Encodes a request exactly as a v1 (pre-TTL) encoder did: the base
/// payload with no trailing extension.
fn encode_v1(r: &QueryRequestFrame) -> Vec<u8> {
    use ftl_labels::wire::{LabelKind, WireWriter};
    let mut w = WireWriter::new();
    w.write_word(r.request_id, 64);
    w.write_word(r.tenant_id as u64, 32);
    w.write_word(r.faults.len() as u64, 32);
    for e in &r.faults {
        w.write_word(e.index() as u64, 32);
    }
    w.write_word(r.queries.len() as u64, 32);
    for (s, t) in &r.queries {
        w.write_word(s.index() as u64, 32);
        w.write_word(t.index() as u64, 32);
    }
    w.finish(LabelKind::QueryRequest)
}

proptest! {
    /// Requests of any valid shape (at least one query) round-trip
    /// exactly.
    #[test]
    fn request_roundtrip(
        request_id in any::<u64>(),
        tenant in any::<u32>(),
        faults in proptest::collection::vec(any::<u32>(), 0..40),
        queries in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..40),
    ) {
        let r = request(request_id, tenant, &faults, &queries);
        prop_assert_eq!(QueryRequestFrame::from_wire(&r.to_wire()).unwrap(), r);
    }

    /// The TTL envelope extension round-trips for every TTL, and the
    /// zero-TTL encoding is bit-identical to the v1 envelope.
    #[test]
    fn ttl_envelope_roundtrip(
        request_id in any::<u64>(),
        ttl_ms in any::<u32>(),
        queries in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..40),
    ) {
        let r = QueryRequestFrame { ttl_ms, ..request(request_id, 3, &[5], &queries) };
        prop_assert_eq!(QueryRequestFrame::from_wire(&r.to_wire()).unwrap(), r.clone());
        if ttl_ms == 0 {
            prop_assert_eq!(r.to_wire(), encode_v1(&r));
        } else {
            // The extension costs exactly 40 bits: version byte + TTL.
            prop_assert!(r.to_wire().len() > encode_v1(&r).len());
        }
    }

    /// Version compat: any frame produced by a pre-TTL encoder decodes
    /// with `ttl_ms = 0` — old clients keep working unchanged.
    #[test]
    fn v1_encoders_decode_with_no_deadline(
        request_id in any::<u64>(),
        tenant in any::<u32>(),
        faults in proptest::collection::vec(any::<u32>(), 0..40),
        queries in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..40),
    ) {
        let r = request(request_id, tenant, &faults, &queries);
        let decoded = QueryRequestFrame::from_wire(&encode_v1(&r)).unwrap();
        prop_assert_eq!(decoded.ttl_ms, 0);
        prop_assert_eq!(decoded, r);
    }

    /// Zero-query requests are malformed whatever else they carry — a
    /// flood of them cannot slip past admission control (which charges by
    /// query count) while still paying for fault-set eliminations.
    #[test]
    fn zero_query_request_always_rejected(
        request_id in any::<u64>(),
        tenant in any::<u32>(),
        faults in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        let r = request(request_id, tenant, &faults, &[]);
        prop_assert!(QueryRequestFrame::from_wire(&r.to_wire()).is_err());
    }

    /// Responses of every status round-trip exactly.
    #[test]
    fn response_roundtrip(
        request_id in any::<u64>(),
        epoch in any::<u64>(),
        pick in 0u8..5,
        answers in proptest::collection::vec(any::<bool>(), 0..80),
        pending in any::<u32>(),
        budget in any::<u32>(),
    ) {
        let status = match pick {
            0 => ResponseStatus::Ok(answers),
            1 => ResponseStatus::ServerBusy { pending, budget },
            2 => ResponseStatus::EngineFailed,
            3 => ResponseStatus::ShuttingDown,
            _ => ResponseStatus::DeadlineExceeded,
        };
        let f = QueryResponseFrame { request_id, epoch, status };
        prop_assert_eq!(QueryResponseFrame::from_wire(&f.to_wire()).unwrap(), f);
    }

    /// Any single-byte smear of the 8-byte record header is rejected with
    /// a typed error — magic, version, kind, and bit-length corruption
    /// are all caught before any payload is interpreted.
    #[test]
    fn smeared_header_always_rejected(
        byte in 0usize..8,
        mask in 1u8..=255,
        faults in proptest::collection::vec(any::<u32>(), 0..10),
        queries in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..10),
    ) {
        let mut bytes = request(1, 2, &faults, &queries).to_wire();
        bytes[byte] ^= mask;
        prop_assert!(QueryRequestFrame::from_wire(&bytes).is_err());

        let mut bytes = QueryResponseFrame {
            request_id: 1,
            epoch: 2,
            status: ResponseStatus::Ok(vec![true; queries.len()]),
        }
        .to_wire();
        bytes[byte] ^= mask;
        prop_assert!(QueryResponseFrame::from_wire(&bytes).is_err());
    }

    /// Every strict prefix of a record fails to decode (typed error, no
    /// panic) — a cut-off stream can never yield a phantom frame.
    #[test]
    fn truncated_record_always_rejected(
        cut_permille in 0usize..1000,
        faults in proptest::collection::vec(any::<u32>(), 0..10),
        queries in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..10),
    ) {
        let bytes = request(1, 2, &faults, &queries).to_wire();
        let cut = (bytes.len() - 1) * cut_permille / 1000;
        prop_assert!(QueryRequestFrame::from_wire(&bytes[..cut]).is_err());
    }

    /// Arbitrary byte soup never decodes (or panics): without the magic
    /// pair it cannot even open.
    #[test]
    fn byte_soup_never_decodes(mut soup in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Some(first) = soup.first_mut() {
            if *first == 0xF7 {
                *first = 0;
            }
        }
        prop_assert!(QueryRequestFrame::from_wire(&soup).is_err());
        prop_assert!(QueryResponseFrame::from_wire(&soup).is_err());
    }

    /// A framed message cut at any point reads back as a typed error —
    /// `Closed` exactly at a frame boundary, `Truncated` anywhere inside.
    #[test]
    fn truncated_frame_stream_is_typed(
        cut_permille in 0usize..1000,
        queries in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..10),
    ) {
        let record = request(9, 9, &[1, 2], &queries).to_wire();
        let mut framed = Vec::new();
        frame::write_frame(&mut framed, &record).unwrap();
        let cut = (framed.len() - 1) * cut_permille / 1000;
        framed.truncate(cut);
        let stop = AtomicBool::new(false);
        let got = frame::read_frame(&mut Cursor::new(framed), MAX_FRAME_BYTES_DEFAULT, &stop);
        if cut == 0 {
            prop_assert_eq!(got, Err(frame::FrameError::Closed));
        } else {
            prop_assert_eq!(got, Err(frame::FrameError::Truncated));
        }
    }

    /// Declared lengths over the ceiling are rejected before the body is
    /// read or allocated, whatever the declared value.
    #[test]
    fn oversized_length_rejected(extra in 1u32..=1 << 16, max in 16u32..4096) {
        let len = max + extra;
        let mut framed = Vec::from(len.to_le_bytes());
        framed.resize(framed.len() + 32, 0xAB);
        let stop = AtomicBool::new(false);
        let got = frame::read_frame(&mut Cursor::new(framed), max as usize, &stop);
        prop_assert_eq!(got, Err(frame::FrameError::Oversized { len, max }));
    }
}
