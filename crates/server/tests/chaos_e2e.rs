//! The chaos acceptance scenario: `run_loadgen` driven *through* an
//! `ftl-chaos` proxy executing a seeded fault plan — resets (immediate
//! and mid-frame), black holes, garbage splices, split writes, byte-rate
//! throttling — against a live server with request TTLs and a batcher
//! watchdog. The run must complete (no hangs), audit perfectly against
//! BFS ground truth (no mismatches), and every fault the proxy fired
//! must be visible in a wire scrape of the co-resident obs registry,
//! with the client's retry machinery demonstrably engaged.

// The scenario reconciles injected faults against scraped counters;
// under `no-obs` every series reads zero by design.
#![cfg(not(feature = "no-obs"))]
// Test code: panicking asserts are the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_chaos::{ChaosProxy, ConnFault, PlanConfig};
use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{store_from_cycle_space, EngineConfig, EpochStore};
use ftl_graph::generators;
use ftl_seeded::Seed;
use ftl_server::{
    derive_fault_sets, run_loadgen, scrape_metrics, LoadgenConfig, Server, ServerConfig,
    ServerHandle,
};
use std::sync::Arc;
use std::time::Duration;

fn spawn_server(g: &ftl_graph::Graph, config: ServerConfig) -> ServerHandle {
    let scheme = CycleSpaceScheme::label(g, 8, Seed::new(7)).expect("graph is connected");
    let store = store_from_cycle_space(&scheme, 8).unwrap();
    let epochs = Arc::new(EpochStore::new(Arc::new(store)));
    Server::spawn(epochs, EngineConfig::default(), config, "127.0.0.1:0").unwrap()
}

/// Pulls one counter's value out of a text exposition.
fn scraped(text: &str, family: &str) -> u64 {
    let prefix = format!("{family} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("scrape is missing `{family}`:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("`{family}` is not an integer counter"))
}

/// A storm with every fault class enabled. ~37% of connections draw a
/// fault; half run shaped.
fn storm(seed: u64) -> PlanConfig {
    PlanConfig {
        seed,
        reset_immediate_pm: 80,
        reset_midstream_pm: 150,
        blackhole_pm: 60,
        garbage_pm: 80,
        split_pm: 350,
        throttle_pm: 150,
        reset_window_bytes: 200,
        garbage_window_bytes: 64,
        ..PlanConfig::default()
    }
}

const CLIENTS: usize = 8;
const REQUESTS: usize = 16;

#[test]
fn loadgen_through_seeded_chaos_completes_clean_and_accounts_every_fault() {
    let plan = storm(21);
    // Plan precondition (pure, deterministic): the initial wave of
    // connections must already contain a fault that fires without byte
    // preconditions, so the retry path is guaranteed to engage. If the
    // seed is ever changed, this fails loudly instead of the scenario
    // silently degrading into a fair-weather run.
    let unconditional = (0..CLIENTS as u64)
        .filter(|&c| {
            matches!(
                plan.plan_for(c).fault,
                ConnFault::ResetImmediate | ConnFault::Blackhole | ConnFault::InjectGarbage { .. }
            )
        })
        .count();
    assert!(
        unconditional > 0,
        "seed draws no unconditional fault in the first {CLIENTS} connections — pick another"
    );

    let g = generators::grid(8, 8);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 2,
            engine_workers: 2,
            window: Duration::from_millis(2),
            watchdog_factor: 8,
            ..ServerConfig::default()
        },
    );
    let proxy = ChaosProxy::spawn("127.0.0.1:0", handle.local_addr(), plan).unwrap();

    let sets = derive_fault_sets(&g, 4, 3, 21);
    let started = std::time::Instant::now();
    let report = run_loadgen(
        proxy.local_addr(),
        &g,
        &sets,
        LoadgenConfig {
            clients: CLIENTS,
            requests_per_client: REQUESTS,
            queries_per_request: 4,
            seed: 5,
            ttl_ms: 250,
            max_busy_retries: 2_000,
            request_timeout: Duration::from_millis(300),
            run_deadline: Duration::from_secs(60),
        },
    );
    let elapsed = started.elapsed();

    // 1. No hangs: the run finished on its own, far inside the deadline.
    assert!(!report.timed_out, "run hit the 60s global deadline");
    assert!(elapsed < Duration::from_secs(55), "run took {elapsed:?}");

    // 2. Perfect audit: chaos may delay answers, never corrupt them — a
    //    desynced or torn frame must surface as a retry, not a wrong bit.
    assert_eq!(report.mismatches, 0, "BFS audit diverged under chaos");

    // 3. Full completion: the resilient client path absorbed every
    //    fault; nothing was abandoned or errored out terminally.
    assert_eq!(report.requests_ok, (CLIENTS * REQUESTS) as u64);
    assert_eq!(report.unserved, 0);
    assert_eq!(report.io_errors, 0, "a client gave up on I/O errors");
    assert_eq!(report.engine_failures, 0);

    // 4. The retry machinery demonstrably engaged (the guaranteed
    //    unconditional fault above makes this deterministic), and the
    //    ISSUE's sum criterion holds.
    let chaos = proxy.shutdown();
    assert!(chaos.connections >= CLIENTS as u64);
    assert!(chaos.faults_fired() > 0, "the storm fired nothing");
    let stats = handle.stats();
    assert!(
        report.retries + report.deadline_rejects + stats.watchdog_fires > 0,
        "no retries, no deadline drops, no watchdog fires — chaos had no effect"
    );
    assert!(
        report.retries > 0,
        "faults fired but the client never retried"
    );
    assert!(
        report.reconnects > 0,
        "faults fired but the client never re-dialed"
    );

    // 5. Every fired fault is accounted for in the obs registry as seen
    //    through a *wire scrape* of the co-resident server — proxy-side
    //    truth and scraped counters must agree exactly.
    let text = scrape_metrics(handle.local_addr()).expect("scrape a live server");
    assert_eq!(
        scraped(&text, "ftl_chaos_connections_total"),
        chaos.connections
    );
    assert_eq!(
        scraped(&text, "ftl_chaos_resets_total"),
        chaos.resets_immediate + chaos.resets_midstream
    );
    assert_eq!(
        scraped(&text, "ftl_chaos_blackholes_total"),
        chaos.blackholes
    );
    assert_eq!(
        scraped(&text, "ftl_chaos_garbage_total"),
        chaos.garbage_injections
    );
    assert_eq!(scraped(&text, "ftl_chaos_shaped_total"), chaos.shaped);
    assert_eq!(scraped(&text, "ftl_client_retries_total"), report.retries);
    assert_eq!(
        scraped(&text, "ftl_client_reconnects_total"),
        report.reconnects
    );

    handle.shutdown();
}

// ---------------------------------------------------------------- soak mode

/// Time-boxed chaos soak: repeats the acceptance scenario with a fresh
/// storm seed each iteration until the `CHAOS_SOAK_MS` budget runs out,
/// requiring perfect audits and full completion throughout. Run
/// explicitly:
/// `CHAOS_SOAK_MS=30000 cargo test -p ftl-server --test chaos_e2e -- --ignored`.
#[test]
#[ignore = "time-boxed soak; enable via CHAOS_SOAK_MS"]
fn chaos_soak() {
    let budget_ms: u64 = std::env::var("CHAOS_SOAK_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let start = std::time::Instant::now();
    let g = generators::grid(8, 8);
    let sets = derive_fault_sets(&g, 4, 3, 21);
    let mut iteration = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        let handle = spawn_server(
            &g,
            ServerConfig {
                executors: 2,
                engine_workers: 2,
                window: Duration::from_millis(2),
                watchdog_factor: 8,
                ..ServerConfig::default()
            },
        );
        let proxy =
            ChaosProxy::spawn("127.0.0.1:0", handle.local_addr(), storm(1000 + iteration)).unwrap();
        let report = run_loadgen(
            proxy.local_addr(),
            &g,
            &sets,
            LoadgenConfig {
                clients: CLIENTS,
                requests_per_client: REQUESTS,
                queries_per_request: 4,
                seed: iteration,
                ttl_ms: 250,
                max_busy_retries: 2_000,
                request_timeout: Duration::from_millis(300),
                run_deadline: Duration::from_secs(60),
            },
        );
        let chaos = proxy.shutdown();
        handle.shutdown();
        assert!(
            !report.timed_out,
            "soak iteration {iteration} hit the deadline"
        );
        assert_eq!(
            report.mismatches, 0,
            "soak iteration {iteration} diverged from ground truth"
        );
        assert_eq!(
            report.requests_ok,
            (CLIENTS * REQUESTS) as u64,
            "soak iteration {iteration} abandoned requests (chaos: {chaos:?})"
        );
        iteration += 1;
    }
    assert!(iteration > 0, "soak budget too small to run one iteration");
    println!(
        "chaos_soak: {iteration} iterations in {:?}",
        start.elapsed()
    );
}
