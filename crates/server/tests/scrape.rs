//! Loopback tests for the metrics plane: a `MetricsRequest 0x50` scrape
//! against a live, loaded server must return every documented family,
//! parse into the per-stage table, and agree exactly with what the load
//! actually did.

// The whole file asserts on real metric values; under `no-obs` every
// series reads zero by design, so there is nothing to test.
#![cfg(not(feature = "no-obs"))]
// Test code: panicking asserts are the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{store_from_cycle_space, EngineConfig, EpochStore};
use ftl_graph::generators;
use ftl_seeded::Seed;
use ftl_server::{
    derive_fault_sets, parse_stage_table, run_loadgen, scrape_metrics, LoadgenConfig, Server,
    ServerConfig, ServerHandle,
};
use std::sync::Arc;
use std::time::Duration;

fn spawn_server(g: &ftl_graph::Graph, config: ServerConfig) -> ServerHandle {
    let scheme = CycleSpaceScheme::label(g, 8, Seed::new(7)).expect("graph is connected");
    let store = store_from_cycle_space(&scheme, 8).unwrap();
    let epochs = Arc::new(EpochStore::new(Arc::new(store)));
    Server::spawn(epochs, EngineConfig::default(), config, "127.0.0.1:0").unwrap()
}

/// Every series family docs/observability.md documents, in both the
/// pipeline (global-registry) and server (per-instance) halves.
const DOCUMENTED_FAMILIES: &[&str] = &[
    // Pipeline side.
    "# TYPE ftl_stage_ns summary",
    "ftl_engine_queries_total",
    "ftl_engine_eliminations_total",
    "ftl_engine_cache_hits_total",
    "ftl_engine_sidecar_fallbacks_total",
    "ftl_engine_cache_hit_ratio",
    "ftl_epoch_published",
    "ftl_epoch_pinned",
    "ftl_epoch_lag",
    "ftl_epoch_delta_swaps_total",
    "ftl_epoch_full_rebuilds_total",
    "# TYPE ftl_epoch_swap_ns summary",
    "ftl_live_relabels_total",
    // Chaos + resilient-client side (global registry; zero when the
    // process drove no chaos proxy or retrying client).
    "ftl_chaos_connections_total",
    "ftl_chaos_resets_total",
    "ftl_chaos_blackholes_total",
    "ftl_chaos_garbage_total",
    "ftl_chaos_shaped_total",
    "ftl_client_retries_total",
    "ftl_client_reconnects_total",
    "ftl_client_backoffs_total",
    "ftl_client_deadline_exceeded_total",
    "ftl_client_giveups_total",
    // Server side.
    "ftl_server_batches_total",
    "ftl_server_groups_total",
    "ftl_server_requests_total",
    "ftl_server_queries_total",
    "ftl_server_rejects_total",
    "ftl_server_engine_errors_total",
    "ftl_server_frame_errors_total",
    "ftl_server_slow_client_drops_total",
    "ftl_server_deadline_drops_total",
    "ftl_server_watchdog_fires_total",
    "ftl_server_connections_total",
    "ftl_server_tenant_requests_total",
    "ftl_server_tenant_queries_total",
    "ftl_server_tenant_rejects_total",
    "ftl_server_tenant_latency_ns",
];

#[test]
fn mid_load_scrape_returns_every_documented_series_and_parses() {
    let g = generators::grid(12, 12);
    let handle = spawn_server(
        &g,
        ServerConfig {
            executors: 2,
            engine_workers: 2,
            window: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let sets = derive_fault_sets(&g, 4, 3, 42);
    let load = {
        let g = g.clone();
        let sets = sets.clone();
        std::thread::spawn(move || {
            run_loadgen(
                addr,
                &g,
                &sets,
                LoadgenConfig {
                    clients: 16,
                    requests_per_client: 32,
                    queries_per_request: 8,
                    seed: 11,
                    ..LoadgenConfig::default()
                },
            )
        })
    };

    // Scrape while the clients are still running: retry until the server
    // has visibly answered traffic (the loadgen run outlasts this by a
    // wide margin, but don't race its first request).
    let mut mid = String::new();
    for _ in 0..200 {
        let text = scrape_metrics(addr).expect("scrape must succeed against a live server");
        if !text.contains("ftl_server_requests_total 0\n") {
            mid = text;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(!mid.is_empty(), "server answered no traffic while loaded");
    for family in DOCUMENTED_FAMILIES {
        assert!(mid.contains(family), "scrape is missing `{family}`:\n{mid}");
    }

    // The stage table parses out of the same text, one row per pipeline
    // stage, and the stages a loaded server must have exercised by the
    // time requests were answered have samples.
    let rows = parse_stage_table(&mid);
    let names: Vec<&str> = rows.iter().map(|r| r.stage.as_str()).collect();
    assert_eq!(
        names,
        [
            "frame_read",
            "admission",
            "window_wait",
            "elimination",
            "answer",
            "response_write"
        ],
        "stage table rows:\n{mid}"
    );
    for stage in ["frame_read", "admission", "window_wait", "response_write"] {
        let row = rows.iter().find(|r| r.stage == stage).unwrap();
        assert!(row.count > 0, "stage `{stage}` has no samples mid-load");
        assert!(row.p99_ns >= row.p50_ns, "quantiles out of order: {row:?}");
    }

    let report = load.join().unwrap();
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.io_errors, 0);

    // Post-load scrape: the per-instance server counters are *exact*
    // (this is why ServerStats is per server, not process-global).
    let done = scrape_metrics(addr).unwrap();
    let expect_requests = format!("ftl_server_requests_total {}\n", report.requests_ok);
    let expect_queries = format!("ftl_server_queries_total {}\n", report.queries_ok);
    assert!(done.contains(&expect_requests), "{done}");
    assert!(done.contains(&expect_queries), "{done}");
    // 16 loadgen clients + however many scrape connections this test made
    // (each scrape is its own connection).
    assert!(done.contains("ftl_server_tenant_requests_total{tenant=\"15\"}"));

    handle.shutdown();
}

#[test]
fn scrape_of_idle_server_is_well_formed() {
    let g = generators::grid(4, 4);
    let handle = spawn_server(&g, ServerConfig::default());
    let text = scrape_metrics(handle.local_addr()).unwrap();
    // Families render even with zero traffic; the server-side totals are
    // exactly zero on a fresh instance.
    assert!(text.contains("ftl_server_requests_total 0\n"), "{text}");
    assert!(text.contains("ftl_server_batches_total 0\n"), "{text}");
    assert_eq!(parse_stage_table(&text).len(), 6);
    // An idle scrape still parses as one sample line or TYPE line per
    // row, nothing else: every line is one of the two shapes.
    for line in text.lines() {
        assert!(
            line.starts_with("# TYPE ") || line.rsplit_once(' ').is_some(),
            "unparseable line `{line}`"
        );
    }
    handle.shutdown();
}
