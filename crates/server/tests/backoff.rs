//! Property tests for the resilient client's backoff schedule: the
//! nominal curve is monotone and capped for *any* base/cap pair, every
//! jittered delay stays inside its half-open band, and the whole
//! schedule is a pure function of the seed — two clients built from the
//! same config sleep identically, forever.

// Test code: panicking asserts are the point.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use ftl_server::{BackoffConfig, BackoffSchedule};
use proptest::prelude::*;
use std::time::Duration;

fn schedule(base_ns: u64, cap_ns: u64, seed: u64) -> BackoffSchedule {
    BackoffSchedule::new(BackoffConfig {
        base: Duration::from_nanos(base_ns),
        cap: Duration::from_nanos(cap_ns),
        seed,
    })
}

proptest! {
    /// The nominal curve never decreases, never exceeds the cap, and
    /// once it reaches the cap it stays there — for any base/cap pair,
    /// including degenerate ones (cap below base) and attempt counts
    /// far past where a shift would overflow.
    #[test]
    fn nominal_is_monotone_and_capped(
        base_ns in 1u64..=1_000_000_000,
        cap_ns in 1u64..=60_000_000_000,
        seed in any::<u64>(),
    ) {
        let s = schedule(base_ns, cap_ns, seed);
        let cap = Duration::from_nanos(cap_ns);
        let mut prev = Duration::ZERO;
        let mut saturated = false;
        for attempt in 0..140u32 {
            let n = s.nominal(attempt);
            prop_assert!(n >= prev, "nominal dipped at attempt {attempt}");
            prop_assert!(n <= cap, "nominal exceeded the cap at attempt {attempt}");
            if saturated {
                prop_assert_eq!(n, cap, "nominal left the cap at attempt {}", attempt);
            }
            saturated |= n == cap;
            prev = n;
        }
        // 140 doublings from any base >= 1ns is astronomically past any
        // cap we generate: the tail of the curve is always saturated.
        prop_assert!(saturated, "curve never reached the cap");
        // Huge attempt numbers must not wrap back below the cap.
        prop_assert_eq!(s.nominal(u32::MAX), cap);
    }

    /// Every jittered delay lands in `[nominal/2, nominal]` — full
    /// jitter over the top half of the nominal value, never more, never
    /// a sub-half sleep that would defeat the backoff.
    #[test]
    fn jitter_stays_inside_the_band(
        base_ns in 1_000u64..=1_000_000_000,
        cap_mul in 1u64..=4_096,
        seed in any::<u64>(),
    ) {
        let cap_ns = base_ns.saturating_mul(cap_mul);
        let s = schedule(base_ns, cap_ns, seed);
        for attempt in 0..64u32 {
            let nominal = s.nominal(attempt);
            let d = s.delay(attempt);
            prop_assert!(
                d >= nominal / 2,
                "attempt {attempt}: delay {d:?} below half of nominal {nominal:?}"
            );
            prop_assert!(
                d <= nominal,
                "attempt {attempt}: delay {d:?} above nominal {nominal:?}"
            );
        }
    }

    /// The schedule is deterministic: rebuilding it from the same config
    /// reproduces every delay exactly. This is what makes a chaos run
    /// replayable — client sleep patterns are part of the seed.
    #[test]
    fn same_config_reproduces_every_delay(
        base_ns in 1u64..=1_000_000_000,
        cap_ns in 1u64..=60_000_000_000,
        seed in any::<u64>(),
    ) {
        let a = schedule(base_ns, cap_ns, seed);
        let b = schedule(base_ns, cap_ns, seed);
        for attempt in 0..96u32 {
            prop_assert_eq!(a.delay(attempt), b.delay(attempt));
        }
    }
}
