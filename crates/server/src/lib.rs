//! `ftl-server` — the batched TCP serving front end.
//!
//! The engine answers fault-tolerant connectivity queries in batches; this
//! crate puts a socket in front of it. The design goal is
//! **cross-connection batching**: many clients ask about a few distinct
//! fault sets (faults change rarely, queries arrive constantly), so the
//! server collects queries from *all* connections in a short accumulation
//! window, groups them by canonical fault-set hash, and executes each
//! group once on the engine — one GF(2) elimination per distinct fault
//! set per window, no matter how many connections share it.
//!
//! The protocol and request lifecycle are specified in `docs/serving.md`;
//! the failure-mode catalogue lives in `docs/robustness.md`. In short:
//!
//! * [`frame`] — the envelope codec. Each message is a `u32` length
//!   prefix followed by one [`ftl_labels::wire`] record (kinds
//!   `QueryRequest` / `QueryResponse`), so the serving path inherits the
//!   wire format's header versioning and corruption rejection.
//! * [`server`] — the front end itself: a blocking accept loop (no async
//!   runtime), one reader thread per connection, a sharded connection
//!   registry, the accumulation-window batcher with a bounded
//!   pending-query budget (admission control answers `ServerBusy` instead
//!   of queueing unboundedly), and executor threads that pin an epoch per
//!   window via `over_epochs` engines. Shutdown drains in-flight windows
//!   before the executors exit.
//! * [`stats`] — per-tenant counters (requests, queries, rejects) with
//!   nearest-rank p50/p99 service latency, plus server-wide batch and
//!   error counters.
//! * [`client`] — the resilient client: per-request deadlines, capped
//!   exponential backoff with seeded jitter, reconnect-and-retry (safe:
//!   queries are pure and responses are request-id-keyed).
//! * [`loadgen`] — a loopback load-generating client with a BFS
//!   [`loadgen::ConnectivityOracle`], used by the `ftl-loadgen` binary,
//!   the loopback tests, and the `bench_pr8` scenario. Built on
//!   [`client::ResilientClient`], with a global run deadline so a stalled
//!   server can never hang a run.
//! * [`spec`] — the tiny graph/fault-set spec language (`grid:16x16`,
//!   `er:1024:8`) that lets `ftl-serve` and `ftl-loadgen` agree on a
//!   topology from the command line.
//!
//! Like `ftl-engine`, the crate is panic-free on the serving path
//! (analyzer rule FTL003), holds no lock outside the annotated sites in
//! `locked.rs` and the batcher (FTL002), and hashes deterministically
//! (FTL004).

#![forbid(unsafe_code)]

pub mod batcher;
pub mod client;
pub mod frame;
pub mod loadgen;
mod locked;
pub mod registry;
pub mod server;
pub mod spec;
pub mod stats;

pub use client::{
    AttemptError, AttemptLog, BackoffConfig, BackoffSchedule, ClientConfig, QueryError, QueryReply,
    ResilientClient,
};
pub use frame::{
    FrameError, MetricsRequestFrame, MetricsResponseFrame, QueryRequestFrame, QueryResponseFrame,
    ResponseStatus, MAX_FAULTS_PER_REQUEST, MAX_FRAME_BYTES_DEFAULT, MAX_METRICS_BYTES,
    MAX_QUERIES_PER_REQUEST,
};
pub use loadgen::{
    parse_stage_table, run_loadgen, scrape_metrics, ConnectivityOracle, LoadgenConfig,
    LoadgenReport, StageRow,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use spec::{derive_fault_sets, parse_graph_spec};
pub use stats::{StatsSnapshot, TenantSnapshot};
