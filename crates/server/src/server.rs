//! The serving front end: accept loop, per-connection readers, and the
//! batch executors.
//!
//! Thread model (no async runtime — plain blocking I/O):
//!
//! ```text
//! acceptor ──spawns──▶ reader (1 per connection)
//!                         │ decode frame → admission check → submit
//!                         ▼
//!                      Batcher (accumulation window, bounded budget)
//!                         │ take window
//!                         ▼
//!                      executor (config.executors threads)
//!                         │ group by canonical fault-set hash
//!                         │ ParEngine/Engine::execute_grouped (epoch-pinned)
//!                         ▼
//!                      Registry ──▶ response frames, demuxed by request id
//! ```
//!
//! The acceptor polls a nonblocking listener so it can observe the stop
//! flag; readers use a short read timeout for the same reason (the frame
//! codec keeps partial fills across timeouts, so this never corrupts a
//! stream). Response writes are bounded the same way: every registered
//! write half carries [`ServerConfig::write_timeout`], and a write that
//! times out (a client that stopped reading its responses) drops that
//! connection — deregistered, socket shut down — instead of parking the
//! executor. Shutdown is graceful by construction: stop flag → acceptor
//! joins every reader (no further submissions) → batcher closes →
//! executors drain every queued window on the epoch each window pins →
//! handle joins the executors.

use crate::batcher::{Batcher, Pending, SubmitError};
use crate::frame::{
    read_frame, FrameError, MetricsRequestFrame, MetricsResponseFrame, QueryRequestFrame,
    QueryResponseFrame, ResponseStatus, MAX_FRAME_BYTES_DEFAULT,
};
use crate::registry::Registry;
use crate::stats::{ServerStats, StatsSnapshot};
use ftl_engine::{
    canonical_fault_hash, Engine, EngineConfig, EpochStore, FaultSetBatch, GroupedResponse,
    ParEngine,
};
use ftl_labels::wire::{LabelKind, WireLabel};
use ftl_obs::{Span, Stage};
use ftl_seeded::DetHashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Copy, Clone)]
pub struct ServerConfig {
    /// Batch-executor threads. Each owns its own epoch-following engine;
    /// more executors overlap window execution with window accumulation.
    pub executors: usize,
    /// `ParEngine` workers inside each executor (`<= 1` means a serial
    /// engine).
    pub engine_workers: usize,
    /// How long an executor holds a non-empty window open for more
    /// connections to join.
    pub window: Duration,
    /// Admission-control budget: most queries that may be pending across
    /// all connections before submissions bounce with `ServerBusy`.
    pub pending_budget: usize,
    /// Per-frame byte ceiling; larger declared lengths close the
    /// connection before any allocation.
    pub max_frame_bytes: usize,
    /// Socket read timeout — the granularity at which an idle reader
    /// notices shutdown.
    pub read_timeout: Duration,
    /// Bound on any single response write. A client that stops reading
    /// its responses fills its TCP window; past this bound the write
    /// errors out and the connection is dropped (deregistered, socket
    /// shut down), so a stalled reader costs its own connection — never
    /// an executor thread, never co-batched connections, never shutdown.
    /// Zero disables the bound (not recommended outside tests).
    pub write_timeout: Duration,
    /// Batcher-watchdog threshold, in multiples of
    /// [`window`](ServerConfig::window): a queued request older than
    /// `watchdog_factor × window` is force-released and answered
    /// (`DeadlineExceeded` if it carried a TTL, `ServerBusy` otherwise)
    /// instead of waiting for an executor that may be parked on a slow
    /// client's write. Zero disables the watchdog.
    pub watchdog_factor: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            executors: 2,
            engine_workers: 2,
            window: Duration::from_micros(500),
            pending_budget: 1 << 16,
            max_frame_bytes: MAX_FRAME_BYTES_DEFAULT,
            read_timeout: Duration::from_millis(5),
            write_timeout: Duration::from_secs(2),
            watchdog_factor: 0,
        }
    }
}

/// Serial or parallel executor engine, chosen by
/// [`ServerConfig::engine_workers`].
enum ExecEngine {
    Serial(Box<Engine>),
    Par(ParEngine),
}

impl ExecEngine {
    fn new(epochs: Arc<EpochStore>, config: EngineConfig, workers: usize) -> Self {
        if workers > 1 {
            ExecEngine::Par(ParEngine::over_epochs(epochs, config, workers))
        } else {
            ExecEngine::Serial(Box::new(Engine::over_epochs(epochs, config)))
        }
    }

    fn execute_grouped(&mut self, groups: &[FaultSetBatch]) -> GroupedResponse {
        match self {
            ExecEngine::Serial(e) => e.execute_grouped(groups),
            ExecEngine::Par(e) => e.execute_grouped(groups),
        }
    }
}

/// Namespace for [`Server::spawn`].
pub struct Server;

/// A running server; dropping it signals the threads to stop, calling
/// [`shutdown`](ServerHandle::shutdown) stops them *gracefully* and
/// returns the final counters.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    batcher: Arc<Batcher>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and spawns the acceptor plus the executor pool.
    pub fn spawn(
        epochs: Arc<EpochStore>,
        engine_config: EngineConfig,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let batcher = Arc::new(Batcher::new(config.pending_budget, config.window));
        let registry = Arc::new(Registry::new());
        let stats = Arc::new(ServerStats::new());

        let mut executors = Vec::with_capacity(config.executors.max(1));
        for i in 0..config.executors.max(1) {
            let epochs = Arc::clone(&epochs);
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let workers = config.engine_workers;
            let handle = std::thread::Builder::new()
                .name(format!("ftl-exec-{i}"))
                .spawn(move || {
                    let mut engine = ExecEngine::new(epochs, engine_config, workers);
                    while let Some(window) = batcher.next_window() {
                        execute_window(&mut engine, &window, &registry, &stats);
                        // Only now — responses written — does the window
                        // stop counting against the admission budget.
                        batcher.release(window.iter().map(Batcher::charge).sum());
                    }
                })?;
            executors.push(handle);
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("ftl-accept".to_string())
                .spawn(move || {
                    accept_loop(&listener, &stop, &batcher, &registry, &stats, config);
                })?
        };

        let watchdog = if config.watchdog_factor > 0 {
            let stop = Arc::clone(&stop);
            let batcher = Arc::clone(&batcher);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            Some(
                std::thread::Builder::new()
                    .name("ftl-watchdog".to_string())
                    .spawn(move || {
                        watchdog_loop(&stop, &batcher, &registry, &stats, config);
                    })?,
            )
        } else {
            None
        };

        Ok(ServerHandle {
            addr: local,
            stop,
            batcher,
            stats,
            acceptor: Some(acceptor),
            executors,
            watchdog,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The full metrics exposition, exactly as a `MetricsRequest 0x50`
    /// scrape over the wire would serve it: the process-wide pipeline
    /// families plus this server's `ftl_server_*` counters.
    pub fn metrics_text(&self) -> String {
        self.stats.render_text()
    }

    /// Graceful shutdown: stop accepting, join the readers, drain every
    /// window already admitted, join the executors, and return the final
    /// counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // All readers have exited: nothing can submit anymore. Close the
        // batcher so executors flush what was admitted and then exit.
        self.batcher.close();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Signal only — a dropped handle must not block, but its threads
        // must die promptly.
        self.stop.store(true, Ordering::Relaxed);
        self.batcher.close();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    batcher: &Arc<Batcher>,
    registry: &Arc<Registry>,
    stats: &Arc<ServerStats>,
    config: ServerConfig,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        // Sweep handles of readers that already exited, so a long-lived
        // server holds one handle per *live* connection, not one per
        // connection ever accepted.
        readers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                stats.record_connection();
                let stop = Arc::clone(stop);
                let batcher = Arc::clone(batcher);
                let registry = Arc::clone(registry);
                let stats = Arc::clone(stats);
                let spawned = std::thread::Builder::new()
                    .name("ftl-conn".to_string())
                    .spawn(move || {
                        serve_connection(stream, &stop, &batcher, &registry, &stats, config);
                    });
                if let Ok(h) = spawned {
                    readers.push(h);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    for h in readers {
        let _ = h.join();
    }
}

/// One connection's read loop: frame → decode → admission → submit.
/// Every protocol violation (bad magic, wrong version, oversize length,
/// truncation, malformed payload) closes the connection — a client that
/// desynced once can only send garbage afterwards.
fn serve_connection(
    mut stream: TcpStream,
    stop: &AtomicBool,
    batcher: &Batcher,
    registry: &Registry,
    stats: &ServerStats,
    config: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.read_timeout)).is_err() {
        return;
    }
    let write_timeout = (!config.write_timeout.is_zero()).then_some(config.write_timeout);
    let Ok((conn, writer)) = registry.register(&stream, write_timeout) else {
        return;
    };
    // On shutdown (stop flag) the connection stays registered: executors
    // drain admitted windows *after* readers exit, and the drained
    // responses still need this connection's writer. Registry teardown is
    // the handle's problem, not the reader's.
    let mut keep_registered = false;
    let obs = ftl_obs::global();
    loop {
        let frame = {
            // The frame-read stage brackets the blocking read, so on a
            // lightly loaded connection it includes the wait for the
            // client's next request — see docs/observability.md.
            let _span = Span::enter(&obs.stages, Stage::FrameRead);
            read_frame(&mut stream, config.max_frame_bytes, stop)
        };
        match frame {
            // The admin plane: a metrics scrape is answered inline by the
            // reader thread, bypassing admission control and the batching
            // pipeline (it must work *because* the data plane is full).
            Ok(record) if record.get(3) == Some(&(LabelKind::MetricsRequest as u8)) => {
                match MetricsRequestFrame::from_wire(&record) {
                    Ok(req) => {
                        let frame = MetricsResponseFrame {
                            request_id: req.request_id,
                            text: stats.render_text(),
                        };
                        if writer.send(&frame.to_wire()).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        stats.record_frame_error();
                        break;
                    }
                }
            }
            Ok(record) => match QueryRequestFrame::from_wire(&record) {
                Ok(req) => {
                    let (request_id, tenant) = (req.request_id, req.tenant_id);
                    // The TTL is anchored here, at decode: the server's
                    // clock, not the client's, measures the budget.
                    let now = Instant::now();
                    let deadline =
                        (req.ttl_ms > 0).then(|| now + Duration::from_millis(req.ttl_ms as u64));
                    let submitted = {
                        let _span = Span::enter(&obs.stages, Stage::Admission);
                        batcher.submit(Pending {
                            conn,
                            request_id,
                            tenant,
                            faults: req.faults,
                            queries: req.queries,
                            enqueued: now,
                            deadline,
                        })
                    };
                    let reject = match submitted {
                        Ok(()) => continue,
                        Err(SubmitError::Busy { pending, budget }) => {
                            stats.record_reject(tenant);
                            ResponseStatus::ServerBusy { pending, budget }
                        }
                        Err(SubmitError::ShuttingDown) => ResponseStatus::ShuttingDown,
                    };
                    let done = matches!(reject, ResponseStatus::ShuttingDown);
                    let frame = QueryResponseFrame {
                        request_id,
                        epoch: 0,
                        status: reject,
                    };
                    if writer.send(&frame.to_wire()).is_err() || done {
                        break;
                    }
                }
                Err(_) => {
                    stats.record_frame_error();
                    break;
                }
            },
            Err(FrameError::Closed) => break,
            Err(FrameError::Stopped) => {
                keep_registered = true;
                break;
            }
            Err(_) => {
                stats.record_frame_error();
                break;
            }
        }
    }
    if !keep_registered {
        registry.deregister(conn);
    }
}

/// Executes one accumulation window: group by canonical fault-set hash,
/// run the engine once per distinct fault set, demux responses by
/// request id.
fn execute_window(
    engine: &mut ExecEngine,
    window: &[Pending],
    registry: &Registry,
    stats: &ServerStats,
) {
    let obs = ftl_obs::global();
    // Window-wait stage: admission to the executor picking the window up.
    for p in window {
        obs.stages
            .record(Stage::WindowWait, p.enqueued.elapsed().as_nanos() as u64);
    }
    // Expired requests are answered *before* grouping: a request whose
    // caller stopped waiting must not cost an elimination, and must not
    // widen a shared group's fault set for the live requests batched with
    // it.
    let now = Instant::now();
    for p in window.iter().filter(|p| p.expired_at(now)) {
        stats.record_deadline_drop();
        respond(registry, p, 0, ResponseStatus::DeadlineExceeded, stats);
    }
    let mut by_hash: DetHashMap<u64, usize> = DetHashMap::default();
    let mut groups: Vec<FaultSetBatch> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (i, p) in window.iter().enumerate() {
        if p.expired_at(now) {
            continue;
        }
        let hash = canonical_fault_hash(&p.faults);
        // A canonical-hash collision between *different* fault sets must
        // not merge them; such a request gets its own unregistered group.
        let gi = match by_hash.get(&hash) {
            Some(&gi) if groups.get(gi).is_some_and(|g| g.faults == p.faults) => gi,
            Some(_) => fresh_group(&mut groups, &mut members, p),
            None => {
                let gi = fresh_group(&mut groups, &mut members, p);
                by_hash.insert(hash, gi);
                gi
            }
        };
        if let (Some(g), Some(m)) = (groups.get_mut(gi), members.get_mut(gi)) {
            g.queries.extend(p.queries.iter().copied());
            m.push(i);
        }
    }

    if groups.is_empty() {
        // Every request in the window had expired — nothing to execute.
        return;
    }
    let engine_t0 = Instant::now();
    let resp = engine.execute_grouped(&groups);
    // Answer stage: engine time amortized per query, recorded once per
    // window (per-query clock reads would dominate the ~16 ns answers).
    let total_queries: u64 = groups.iter().map(|g| g.queries.len() as u64).sum();
    if let Some(per_query) = (engine_t0.elapsed().as_nanos() as u64).checked_div(total_queries) {
        obs.stages.record(Stage::Answer, per_query);
    }
    stats.record_batch(groups.len());
    let epoch = resp.stats.epoch;

    for (gi, result) in resp.groups.iter().enumerate() {
        let Some(member_idxs) = members.get(gi) else {
            continue;
        };
        match result {
            Ok(answers) => {
                let mut cursor = 0usize;
                for &wi in member_idxs {
                    let Some(p) = window.get(wi) else { continue };
                    let n = p.queries.len();
                    let slice = answers.get(cursor..cursor + n);
                    cursor += n;
                    // Per-query isolation: a request fails alone if any of
                    // *its own* queries errored (out-of-range vertex id);
                    // co-batched requests sharing the fault set keep their
                    // answers.
                    let status = match slice {
                        Some(rs) if rs.iter().all(|r| r.is_ok()) => ResponseStatus::Ok(
                            rs.iter()
                                .map(|r| r.as_ref().is_ok_and(|q| q.connected))
                                .collect(),
                        ),
                        _ => ResponseStatus::EngineFailed,
                    };
                    let ok_queries = matches!(status, ResponseStatus::Ok(_)).then_some(n);
                    respond(registry, p, epoch, status, stats);
                    match ok_queries {
                        Some(n) => {
                            stats.record_ok(p.tenant, n, p.enqueued.elapsed().as_nanos() as u64)
                        }
                        None => stats.record_engine_error(),
                    }
                }
            }
            Err(_) => {
                for &wi in member_idxs {
                    let Some(p) = window.get(wi) else { continue };
                    stats.record_engine_error();
                    respond(registry, p, epoch, ResponseStatus::EngineFailed, stats);
                }
            }
        }
    }
}

/// The batcher watchdog: force-releases requests stuck in the queue
/// beyond `watchdog_factor ×` the accumulation window.
///
/// Under healthy load an executor takes every window within one window
/// duration, so the threshold only trips when every executor is parked —
/// in practice on response writes against clients that stopped reading
/// (each bounded by [`ServerConfig::write_timeout`], but a window's worth
/// of them stack). Stuck requests are answered directly from this thread:
/// `DeadlineExceeded` when the request's TTL has expired, `ServerBusy`
/// otherwise (the honest signal that the server could not schedule it —
/// retryable, and both are retried by the resilient client). Their budget charge is
/// released only after the answers are written, mirroring the executor
/// flow so admission control never over-admits during a flush.
fn watchdog_loop(
    stop: &AtomicBool,
    batcher: &Batcher,
    registry: &Registry,
    stats: &ServerStats,
    config: ServerConfig,
) {
    let max_age = config
        .window
        .saturating_mul(config.watchdog_factor)
        .max(Duration::from_millis(1));
    let poll = (max_age / 2).max(Duration::from_millis(1));
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        let stale = batcher.take_stale(max_age);
        if stale.is_empty() {
            continue;
        }
        let now = Instant::now();
        for p in &stale {
            stats.record_watchdog_fire();
            let status = if p.expired_at(now) {
                stats.record_deadline_drop();
                ResponseStatus::DeadlineExceeded
            } else {
                ResponseStatus::ServerBusy {
                    pending: batcher.pending_queries() as u32,
                    budget: config.pending_budget as u32,
                }
            };
            respond(registry, p, 0, status, stats);
        }
        batcher.release(stale.iter().map(Batcher::charge).sum());
    }
}

fn fresh_group(
    groups: &mut Vec<FaultSetBatch>,
    members: &mut Vec<Vec<usize>>,
    p: &Pending,
) -> usize {
    groups.push(FaultSetBatch {
        faults: p.faults.clone(),
        queries: Vec::new(),
    });
    members.push(Vec::new());
    groups.len() - 1
}

/// Writes one response; a vanished connection (already deregistered)
/// just drops the frame — the client is gone.
///
/// A *failed* write forfeits the connection: the write half carries
/// [`ServerConfig::write_timeout`], so a client that stopped reading its
/// responses (full TCP window) surfaces here as a timeout after at most
/// that bound, and a timed-out write may have left a partial frame on the
/// stream. The connection is deregistered — responses still queued for it
/// in this or other executors' windows are dropped instantly instead of
/// each eating another timeout — and the socket is shut down so the
/// reader thread exits too.
fn respond(
    registry: &Registry,
    p: &Pending,
    epoch: u64,
    status: ResponseStatus,
    stats: &ServerStats,
) {
    let frame = QueryResponseFrame {
        request_id: p.request_id,
        epoch,
        status,
    };
    if let Some(writer) = registry.get(p.conn) {
        let _span = Span::enter(&ftl_obs::global().stages, Stage::ResponseWrite);
        if writer.send(&frame.to_wire()).is_err() {
            stats.record_slow_drop();
            registry.deregister(p.conn);
            writer.shutdown();
        }
    }
}
