//! Per-tenant and server-wide serving counters.
//!
//! Hot-path updates are cheap: server-wide counters are single atomic
//! adds, per-tenant counters take one short `locked::Slot` hold. Latency is
//! recorded as raw nanosecond samples (capped per tenant so a long-lived
//! server cannot grow without bound) and summarized to nearest-rank
//! p50/p99 — the same estimator the bench harness uses
//! (`ftl_engine::percentile_nearest_rank`) — only at snapshot time.

use crate::locked::Slot;
use ftl_engine::percentile_nearest_rank;
use ftl_seeded::DetHashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Most latency samples kept per tenant; later samples still count but
/// stop being sampled for percentiles.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

#[derive(Debug, Default)]
struct TenantCounters {
    requests: u64,
    queries: u64,
    rejects: u64,
    latencies_ns: Vec<u64>,
}

/// One tenant's snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSnapshot {
    /// The tenant id from the request frames.
    pub tenant: u32,
    /// Requests answered `Ok`.
    pub requests: u64,
    /// Queries answered across those requests.
    pub queries: u64,
    /// Requests rejected by admission control (`ServerBusy`).
    pub rejects: u64,
    /// Nearest-rank median service latency (submit → response written),
    /// milliseconds.
    pub p50_ms: f64,
    /// Nearest-rank 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
}

/// A point-in-time view of every counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Accumulation windows executed.
    pub batches: u64,
    /// Fault-set groups executed across those windows (`batches <=
    /// groups <= requests` when batching is working).
    pub groups: u64,
    /// Queries answered `Ok`, all tenants.
    pub queries: u64,
    /// Requests answered `Ok`, all tenants.
    pub requests: u64,
    /// `ServerBusy` rejects, all tenants.
    pub rejects: u64,
    /// Requests that came back `EngineFailed`.
    pub engine_errors: u64,
    /// Connections dropped for protocol violations (bad magic, oversize
    /// frame, truncation, malformed payload).
    pub frame_errors: u64,
    /// Connections dropped because a response write failed — in practice
    /// a write timeout against a client that stopped reading its
    /// responses (counts drop *events*; concurrent executors may record
    /// more than one for the same connection).
    pub slow_client_drops: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Per-tenant breakdown, sorted by tenant id.
    pub tenants: Vec<TenantSnapshot>,
}

/// The live counters, shared by readers, executors, and the acceptor.
#[derive(Debug, Default)]
pub struct ServerStats {
    batches: AtomicU64,
    groups: AtomicU64,
    queries: AtomicU64,
    requests: AtomicU64,
    rejects: AtomicU64,
    engine_errors: AtomicU64,
    frame_errors: AtomicU64,
    slow_client_drops: AtomicU64,
    connections_accepted: AtomicU64,
    tenants: Slot<DetHashMap<u32, TenantCounters>>,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Records a request answered `Ok`.
    pub fn record_ok(&self, tenant: u32, queries: usize, latency_ns: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(queries as u64, Ordering::Relaxed);
        self.tenants.with(|t| {
            let c = t.entry(tenant).or_default();
            c.requests += 1;
            c.queries += queries as u64;
            if c.latencies_ns.len() < MAX_LATENCY_SAMPLES {
                c.latencies_ns.push(latency_ns);
            }
        });
    }

    /// Records an admission-control reject.
    pub fn record_reject(&self, tenant: u32) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
        self.tenants
            .with(|t| t.entry(tenant).or_default().rejects += 1);
    }

    /// Records one executed accumulation window of `groups` fault-set
    /// groups.
    pub fn record_batch(&self, groups: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.groups.fetch_add(groups as u64, Ordering::Relaxed);
    }

    /// Records a request whose group failed in the engine.
    pub fn record_engine_error(&self) {
        self.engine_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection dropped for a protocol violation.
    pub fn record_frame_error(&self) {
        self.frame_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection dropped because a response write failed
    /// (write timeout against a stalled reader).
    pub fn record_slow_drop(&self) {
        self.slow_client_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted connection.
    pub fn record_connection(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots every counter, summarizing latencies to p50/p99.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut tenants: Vec<TenantSnapshot> = self.tenants.with(|t| {
            t.iter()
                .map(|(&tenant, c)| {
                    let mut sorted: Vec<f64> = c.latencies_ns.iter().map(|&ns| ns as f64).collect();
                    sorted.sort_by(f64::total_cmp);
                    TenantSnapshot {
                        tenant,
                        requests: c.requests,
                        queries: c.queries,
                        rejects: c.rejects,
                        p50_ms: percentile_nearest_rank(&sorted, 0.5) / 1e6,
                        p99_ms: percentile_nearest_rank(&sorted, 0.99) / 1e6,
                    }
                })
                .collect()
        });
        tenants.sort_by_key(|t| t.tenant);
        StatsSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            engine_errors: self.engine_errors.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            slow_client_drops: self.slow_client_drops.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_counters_aggregate_per_tenant() {
        let s = ServerStats::new();
        for i in 1..=100u64 {
            s.record_ok(7, 4, i * 1_000_000); // 1ms..100ms
        }
        s.record_reject(7);
        s.record_ok(9, 1, 5_000_000);
        s.record_batch(3);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 101);
        assert_eq!(snap.queries, 401);
        assert_eq!(snap.rejects, 1);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.groups, 3);
        assert_eq!(snap.tenants.len(), 2);
        let t7 = &snap.tenants[0];
        assert_eq!((t7.tenant, t7.requests, t7.rejects), (7, 100, 1));
        assert_eq!(t7.p50_ms, 50.0);
        assert_eq!(t7.p99_ms, 99.0);
    }
}
