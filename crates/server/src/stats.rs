//! Per-tenant and server-wide serving counters, built on `ftl-obs`.
//!
//! One metrics system: every counter here is an [`ftl_obs::Counter`] and
//! every latency distribution an [`ftl_obs::Histogram`], the same
//! primitives the pipeline's stage spans and engine counters use — so
//! the shutdown [`StatsSnapshot`] is a *view* over the registry, and
//! [`ServerStats::render_text`] appends the `ftl_server_*` families to
//! the process-wide exposition to answer a `MetricsRequest 0x50` scrape.
//!
//! Hot-path updates are cheap: server-wide counters are single relaxed
//! atomic adds, per-tenant counters take one short `locked::Slot` hold.
//! Latency goes straight into a fixed log-bucket histogram — there is no
//! raw-sample buffer, so (unlike the first-N-samples cap this replaced)
//! a long run's percentiles reflect *every* sample, not the warm-up.
//! Readout is nearest-rank (`ftl_engine::percentile_nearest_rank`
//! semantics over the buckets, ≤ 12.5 % bucketization error). Under the
//! `no-obs` feature the obs primitives are compiled-out stubs and every
//! series reads zero.

use crate::locked::Slot;
use ftl_obs::{expo, Counter, Histogram};
use ftl_seeded::DetHashMap;

#[derive(Debug, Default)]
struct TenantCounters {
    requests: Counter,
    queries: Counter,
    rejects: Counter,
    // Boxed: ~4 KiB of buckets per tenant, allocated once on the
    // tenant's first request (under the Slot hold, off the record path's
    // steady state).
    latency_ns: Box<Histogram>,
}

/// One tenant's snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSnapshot {
    /// The tenant id from the request frames.
    pub tenant: u32,
    /// Requests answered `Ok`.
    pub requests: u64,
    /// Queries answered across those requests.
    pub queries: u64,
    /// Requests rejected by admission control (`ServerBusy`).
    pub rejects: u64,
    /// Nearest-rank median service latency (submit → response written),
    /// milliseconds.
    pub p50_ms: f64,
    /// Nearest-rank 99th-percentile service latency, milliseconds.
    pub p99_ms: f64,
}

/// A point-in-time view of every counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Accumulation windows executed.
    pub batches: u64,
    /// Fault-set groups executed across those windows (`batches <=
    /// groups <= requests` when batching is working).
    pub groups: u64,
    /// Queries answered `Ok`, all tenants.
    pub queries: u64,
    /// Requests answered `Ok`, all tenants.
    pub requests: u64,
    /// `ServerBusy` rejects, all tenants.
    pub rejects: u64,
    /// Requests that came back `EngineFailed`.
    pub engine_errors: u64,
    /// Connections dropped for protocol violations (bad magic, oversize
    /// frame, truncation, malformed payload).
    pub frame_errors: u64,
    /// Connections dropped because a response write failed — in practice
    /// a write timeout against a client that stopped reading its
    /// responses (counts drop *events*; concurrent executors may record
    /// more than one for the same connection).
    pub slow_client_drops: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Requests answered `DeadlineExceeded` because their TTL expired
    /// before execution (window-boundary expiry plus watchdog releases).
    pub deadline_drops: u64,
    /// Requests force-released by the batcher watchdog (stuck beyond N×
    /// the window duration).
    pub watchdog_fires: u64,
    /// Per-tenant breakdown, sorted by tenant id.
    pub tenants: Vec<TenantSnapshot>,
}

/// The live counters, shared by readers, executors, and the acceptor.
///
/// Per-server-instance (not process-global) so co-resident servers —
/// every loopback test, or two `ftl-serve`s in one process — keep exact,
/// independent counts. The process-global pipeline metrics (stages,
/// engine, epochs) live in [`ftl_obs::global`]; a scrape stitches both.
#[derive(Debug, Default)]
pub struct ServerStats {
    batches: Counter,
    groups: Counter,
    queries: Counter,
    requests: Counter,
    rejects: Counter,
    engine_errors: Counter,
    frame_errors: Counter,
    slow_client_drops: Counter,
    connections_accepted: Counter,
    deadline_drops: Counter,
    watchdog_fires: Counter,
    tenants: Slot<DetHashMap<u32, TenantCounters>>,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Records a request answered `Ok`.
    pub fn record_ok(&self, tenant: u32, queries: usize, latency_ns: u64) {
        self.requests.inc();
        self.queries.add(queries as u64);
        self.tenants.with(|t| {
            let c = t.entry(tenant).or_default();
            c.requests.inc();
            c.queries.add(queries as u64);
            c.latency_ns.record(latency_ns);
        });
    }

    /// Records an admission-control reject.
    pub fn record_reject(&self, tenant: u32) {
        self.rejects.inc();
        self.tenants
            .with(|t| t.entry(tenant).or_default().rejects.inc());
    }

    /// Records one executed accumulation window of `groups` fault-set
    /// groups.
    pub fn record_batch(&self, groups: usize) {
        self.batches.inc();
        self.groups.add(groups as u64);
    }

    /// Records a request whose group failed in the engine.
    pub fn record_engine_error(&self) {
        self.engine_errors.inc();
    }

    /// Records a connection dropped for a protocol violation.
    pub fn record_frame_error(&self) {
        self.frame_errors.inc();
    }

    /// Records a connection dropped because a response write failed
    /// (write timeout against a stalled reader).
    pub fn record_slow_drop(&self) {
        self.slow_client_drops.inc();
    }

    /// Records an accepted connection.
    pub fn record_connection(&self) {
        self.connections_accepted.inc();
    }

    /// Records a request answered `DeadlineExceeded` (TTL expired before
    /// execution).
    pub fn record_deadline_drop(&self) {
        self.deadline_drops.inc();
    }

    /// Records a request force-released by the batcher watchdog.
    pub fn record_watchdog_fire(&self) {
        self.watchdog_fires.inc();
    }

    /// Snapshots every counter, summarizing latencies to p50/p99.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut tenants: Vec<TenantSnapshot> = self.tenants.with(|t| {
            t.iter()
                .map(|(&tenant, c)| TenantSnapshot {
                    tenant,
                    requests: c.requests.get(),
                    queries: c.queries.get(),
                    rejects: c.rejects.get(),
                    p50_ms: c.latency_ns.percentile(0.5) as f64 / 1e6,
                    p99_ms: c.latency_ns.percentile(0.99) as f64 / 1e6,
                })
                .collect()
        });
        tenants.sort_by_key(|t| t.tenant);
        StatsSnapshot {
            batches: self.batches.get(),
            groups: self.groups.get(),
            queries: self.queries.get(),
            requests: self.requests.get(),
            rejects: self.rejects.get(),
            engine_errors: self.engine_errors.get(),
            frame_errors: self.frame_errors.get(),
            slow_client_drops: self.slow_client_drops.get(),
            connections_accepted: self.connections_accepted.get(),
            deadline_drops: self.deadline_drops.get(),
            watchdog_fires: self.watchdog_fires.get(),
            tenants,
        }
    }

    /// The full scrape text: the process-wide pipeline families
    /// ([`ftl_obs::Registry::render_into`] on the global registry — stage
    /// latencies, engine cache counters, epoch gauges) followed by this
    /// server's `ftl_server_*` families and the per-tenant breakdown.
    /// This is what a `MetricsRequest 0x50` gets back.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(8 << 10);
        ftl_obs::global().render_into(&mut out);
        expo::counter(&mut out, "ftl_server_batches_total", self.batches.get());
        expo::counter(&mut out, "ftl_server_groups_total", self.groups.get());
        expo::counter(&mut out, "ftl_server_requests_total", self.requests.get());
        expo::counter(&mut out, "ftl_server_queries_total", self.queries.get());
        expo::counter(&mut out, "ftl_server_rejects_total", self.rejects.get());
        expo::counter(
            &mut out,
            "ftl_server_engine_errors_total",
            self.engine_errors.get(),
        );
        expo::counter(
            &mut out,
            "ftl_server_frame_errors_total",
            self.frame_errors.get(),
        );
        expo::counter(
            &mut out,
            "ftl_server_slow_client_drops_total",
            self.slow_client_drops.get(),
        );
        expo::counter(
            &mut out,
            "ftl_server_connections_total",
            self.connections_accepted.get(),
        );
        expo::counter(
            &mut out,
            "ftl_server_deadline_drops_total",
            self.deadline_drops.get(),
        );
        expo::counter(
            &mut out,
            "ftl_server_watchdog_fires_total",
            self.watchdog_fires.get(),
        );
        self.tenants.with(|t| {
            let mut ids: Vec<u32> = t.keys().copied().collect();
            ids.sort_unstable();
            for family in [
                "ftl_server_tenant_requests_total",
                "ftl_server_tenant_queries_total",
                "ftl_server_tenant_rejects_total",
            ] {
                expo::type_line(&mut out, family, "counter");
            }
            expo::type_line(&mut out, "ftl_server_tenant_latency_ns", "summary");
            for id in ids {
                let Some(c) = t.get(&id) else { continue };
                let tenant = id.to_string();
                let labels = [("tenant", tenant.as_str())];
                expo::sample(
                    &mut out,
                    "ftl_server_tenant_requests_total",
                    &labels,
                    c.requests.get(),
                );
                expo::sample(
                    &mut out,
                    "ftl_server_tenant_queries_total",
                    &labels,
                    c.queries.get(),
                );
                expo::sample(
                    &mut out,
                    "ftl_server_tenant_rejects_total",
                    &labels,
                    c.rejects.get(),
                );
                expo::histogram(
                    &mut out,
                    "ftl_server_tenant_latency_ns",
                    &labels,
                    &c.latency_ns,
                );
            }
        });
        out
    }
}

#[cfg(all(test, not(feature = "no-obs")))]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_counters_aggregate_per_tenant() {
        let s = ServerStats::new();
        for i in 1..=100u64 {
            s.record_ok(7, 4, i * 1_000_000); // 1ms..100ms
        }
        s.record_reject(7);
        s.record_ok(9, 1, 5_000_000);
        s.record_batch(3);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 101);
        assert_eq!(snap.queries, 401);
        assert_eq!(snap.rejects, 1);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.groups, 3);
        assert_eq!(snap.tenants.len(), 2);
        let t7 = &snap.tenants[0];
        assert_eq!((t7.tenant, t7.requests, t7.rejects), (7, 100, 1));
        // Nearest-rank over log buckets: within the 12.5% bucket bound of
        // the exact sample percentiles (50ms, 99ms).
        assert!((t7.p50_ms - 50.0).abs() <= 50.0 * 0.125, "{}", t7.p50_ms);
        assert!((t7.p99_ms - 99.0).abs() <= 99.0 * 0.125, "{}", t7.p99_ms);
    }

    #[test]
    fn late_run_latencies_still_influence_percentiles() {
        // Regression for the first-N-samples cap this module used to
        // carry: a warm-up of fast requests followed by a much longer
        // steady state of slow ones must report steady-state percentiles.
        // (With a capped buffer keeping only the earliest samples, p99
        // would stay at the 1ms warm-up value forever.)
        let s = ServerStats::new();
        for _ in 0..1_000 {
            s.record_ok(3, 1, 1_000_000); // 1ms warm-up
        }
        for _ in 0..99_000 {
            s.record_ok(3, 1, 100_000_000); // 100ms steady state
        }
        let snap = s.snapshot();
        let t = &snap.tenants[0];
        assert_eq!(t.requests, 100_000);
        assert!(t.p50_ms >= 80.0, "p50 stuck at warm-up: {}", t.p50_ms);
        assert!(t.p99_ms >= 80.0, "p99 stuck at warm-up: {}", t.p99_ms);
    }

    #[test]
    fn scrape_text_carries_server_and_pipeline_families() {
        let s = ServerStats::new();
        s.record_ok(2, 8, 2_000_000);
        s.record_connection();
        let text = s.render_text();
        for series in [
            // Pipeline side, from the global registry.
            "# TYPE ftl_stage_ns summary",
            "ftl_engine_cache_hit_ratio",
            "ftl_epoch_lag",
            // Server side, from this instance.
            "ftl_server_requests_total 1",
            "ftl_server_queries_total 8",
            "ftl_server_connections_total 1",
            "ftl_server_tenant_requests_total{tenant=\"2\"} 1",
            "ftl_server_tenant_latency_ns_count{tenant=\"2\"} 1",
        ] {
            assert!(text.contains(series), "missing `{series}` in:\n{text}");
        }
    }
}
