//! The accumulation window: where cross-connection batching happens.
//!
//! Reader threads [`submit`](Batcher::submit) decoded requests; executor
//! threads [`next_window`](Batcher::next_window) them back out. An
//! executor that finds work waits one configured window first, so
//! requests from *other* connections can pile in — that pile is what
//! turns 64 connections asking about 8 fault sets into 8 eliminations
//! instead of 64.
//!
//! Admission control lives here too: `submit` rejects (with the typed
//! [`SubmitError::Busy`]) once the charged-query total would exceed the
//! budget, so a flood degrades into fast, explicit `ServerBusy` responses
//! instead of unbounded memory growth and unbounded latency. Two details
//! make the budget a real bound rather than a suggestion:
//!
//! * every request is charged at least one query ([`Batcher::charge`]),
//!   so a degenerate zero-query request (already rejected at decode, but
//!   belt and braces here) cannot ride through admission for free while
//!   still carrying a full fault set's worth of elimination work;
//! * the charge is released only when the request's window **finishes
//!   executing** ([`Batcher::release`], called by the executor), not when
//!   the window is taken — so the budget bounds queued *plus in-flight*
//!   queries, and N executors cannot stack N extra budgets of admitted
//!   work behind the one being executed.
//!
//! This is the one condvar in the crate (the wrapper in `locked.rs`
//! covers plain mutation; a window needs *waiting*). Both sides recover
//! from poisoning the same way `locked::Slot` does.

use ftl_graph::{EdgeId, VertexId};
use std::time::{Duration, Instant};

// ftl-analyzer: allow(lock-free) the batcher's window condvar; front-end queueing, not the read path
#[allow(clippy::disallowed_types)]
use std::sync::{Condvar, Mutex, MutexGuard};

/// One decoded request waiting for a window.
#[derive(Debug)]
pub struct Pending {
    /// Registry id of the submitting connection.
    pub conn: u64,
    /// The client's request id, echoed in the response.
    pub request_id: u64,
    /// Accounting principal.
    pub tenant: u32,
    /// The request's fault set.
    pub faults: Vec<EdgeId>,
    /// The request's queries.
    pub queries: Vec<(VertexId, VertexId)>,
    /// When `submit` accepted it (service latency starts here).
    pub enqueued: Instant,
    /// The request's TTL expiry, if the client set one (`ttl_ms` in the
    /// envelope, anchored at decode time). Expired entries are answered
    /// `DeadlineExceeded` at the window boundary instead of entering
    /// elimination.
    pub deadline: Option<Instant>,
}

impl Pending {
    /// Whether the request's deadline (if any) has passed as of `now`.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending-query budget is full.
    Busy {
        /// Queries already pending.
        pending: u32,
        /// The configured budget.
        budget: u32,
    },
    /// The batcher is closed (server draining).
    ShuttingDown,
}

#[derive(Debug, Default)]
struct State {
    pending: Vec<Pending>,
    pending_queries: usize,
    open: bool,
}

/// The shared accumulation window.
#[derive(Debug)]
pub struct Batcher {
    // ftl-analyzer: allow(lock-free) window state + condvar; see module docs
    #[allow(clippy::disallowed_types)]
    state: Mutex<State>,
    cv: Condvar,
    budget: usize,
    window: Duration,
}

impl Batcher {
    /// A new, open batcher with the given pending-query budget and
    /// accumulation window.
    // ftl-analyzer: allow(lock-free) constructing the window state
    #[allow(clippy::disallowed_types)]
    pub fn new(budget: usize, window: Duration) -> Self {
        Batcher {
            state: Mutex::new(State {
                pending: Vec::new(),
                pending_queries: 0,
                open: true,
            }),
            cv: Condvar::new(),
            budget,
            window,
        }
    }

    // ftl-analyzer: allow(lock-free) the batcher's own lock acquisition
    fn locked(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// What one request costs against the budget: its query count, with a
    /// floor of one so no request is ever free to admit.
    pub fn charge(p: &Pending) -> usize {
        p.queries.len().max(1)
    }

    /// Queues a request, or rejects it if the budget is full or the
    /// batcher is draining.
    pub fn submit(&self, p: Pending) -> Result<(), SubmitError> {
        let mut g = self.locked();
        if !g.open {
            return Err(SubmitError::ShuttingDown);
        }
        if g.pending_queries + Batcher::charge(&p) > self.budget {
            return Err(SubmitError::Busy {
                pending: g.pending_queries as u32,
                budget: self.budget as u32,
            });
        }
        g.pending_queries += Batcher::charge(&p);
        g.pending.push(p);
        drop(g);
        self.cv.notify_all();
        Ok(())
    }

    /// Queries charged against the budget — queued plus in-flight (for
    /// observability and tests).
    pub fn pending_queries(&self) -> usize {
        self.locked().pending_queries
    }

    /// Returns a finished window's charge to the budget. Called by the
    /// executor after [`next_window`](Batcher::next_window)'s window has
    /// fully executed (responses written), so the budget keeps covering
    /// in-flight work, not just the not-yet-taken queue.
    pub fn release(&self, charge: usize) {
        let mut g = self.locked();
        g.pending_queries = g.pending_queries.saturating_sub(charge);
    }

    /// Blocks until work exists, lets the accumulation window elapse, and
    /// takes everything queued. Returns `None` only when the batcher is
    /// closed *and* fully drained — the executor's signal to exit.
    // ftl-analyzer: allow(lock-free) condvar waits for the accumulation window
    pub fn next_window(&self) -> Option<Vec<Pending>> {
        let mut g = self.locked();
        loop {
            if !g.pending.is_empty() {
                break;
            }
            if !g.open {
                return None;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        // Work exists. Hold the window open so concurrent connections can
        // add to it — unless we're draining, in which case flush fast.
        if g.open && !self.window.is_zero() {
            let deadline = Instant::now() + self.window;
            loop {
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now) else {
                    break;
                };
                if left.is_zero() || !g.open {
                    break;
                }
                g = match self.cv.wait_timeout(g, left) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }
        // The taken window's charge stays on the budget until the executor
        // calls `release` after executing it — admission control bounds
        // in-flight work too, not just the queue.
        Some(std::mem::take(&mut g.pending))
    }

    /// Removes and returns every queued request older than `max_age` (the
    /// watchdog's view of "stuck": a window that should have been taken
    /// within one window duration has sat for N of them).
    ///
    /// The removed entries' charges stay on the budget — exactly like
    /// [`next_window`](Batcher::next_window), the caller answers them and
    /// then returns the charge via [`release`](Batcher::release), so a
    /// force-released pile can't admit a second pile mid-flush.
    pub fn take_stale(&self, max_age: Duration) -> Vec<Pending> {
        let now = Instant::now();
        let mut g = self.locked();
        let mut stale = Vec::new();
        let mut i = 0;
        while i < g.pending.len() {
            let too_old = g
                .pending
                .get(i)
                .is_some_and(|p| now.duration_since(p.enqueued) > max_age);
            if too_old {
                stale.push(g.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        stale
    }

    /// Closes the batcher: future submits fail with
    /// [`SubmitError::ShuttingDown`]; executors drain what is queued and
    /// then see `None`.
    pub fn close(&self) {
        self.locked().open = false;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pending(queries: usize) -> Pending {
        Pending {
            conn: 1,
            request_id: 1,
            tenant: 0,
            faults: Vec::new(),
            queries: vec![(VertexId::new(0), VertexId::new(1)); queries],
            enqueued: Instant::now(),
            deadline: None,
        }
    }

    #[test]
    fn budget_rejects_with_typed_busy() {
        let b = Batcher::new(10, Duration::ZERO);
        b.submit(pending(6)).unwrap();
        b.submit(pending(4)).unwrap();
        assert_eq!(
            b.submit(pending(1)),
            Err(SubmitError::Busy {
                pending: 10,
                budget: 10,
            })
        );
        // Taking the window does NOT free the budget — the work is now
        // in flight, and the budget bounds that too.
        let w = b.next_window().unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(b.pending_queries(), 10);
        assert!(matches!(
            b.submit(pending(10)),
            Err(SubmitError::Busy { .. })
        ));
        // Releasing the executed window's charge does.
        b.release(w.iter().map(Batcher::charge).sum());
        assert_eq!(b.pending_queries(), 0);
        b.submit(pending(10)).unwrap();
    }

    #[test]
    fn zero_query_request_still_charged() {
        // Decode already rejects zero-query requests; the batcher floors
        // the charge at 1 anyway so nothing is ever free to admit.
        let b = Batcher::new(2, Duration::ZERO);
        b.submit(pending(0)).unwrap();
        b.submit(pending(0)).unwrap();
        assert_eq!(b.pending_queries(), 2);
        assert!(matches!(
            b.submit(pending(0)),
            Err(SubmitError::Busy {
                pending: 2,
                budget: 2,
            })
        ));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let b = Batcher::new(100, Duration::ZERO);
        b.submit(pending(3)).unwrap();
        b.close();
        assert_eq!(b.submit(pending(1)), Err(SubmitError::ShuttingDown));
        assert_eq!(b.next_window().map(|w| w.len()), Some(1));
        assert!(b.next_window().is_none());
    }

    #[test]
    fn take_stale_removes_old_entries_but_keeps_their_charge() {
        let b = Batcher::new(100, Duration::ZERO);
        let old = Pending {
            enqueued: Instant::now() - Duration::from_millis(50),
            ..pending(3)
        };
        b.submit(old).unwrap();
        b.submit(pending(2)).unwrap();
        let stale = b.take_stale(Duration::from_millis(10));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale.first().map(|p| p.queries.len()), Some(3));
        // The charge is NOT released by the take — the watchdog releases
        // it after answering, like an executor would.
        assert_eq!(b.pending_queries(), 5);
        b.release(stale.iter().map(Batcher::charge).sum());
        assert_eq!(b.pending_queries(), 2);
        // The fresh entry is still queued for a real window.
        assert_eq!(b.next_window().map(|w| w.len()), Some(1));
    }

    #[test]
    fn expired_at_tracks_the_deadline() {
        let now = Instant::now();
        let mut p = pending(1);
        assert!(!p.expired_at(now), "no deadline never expires");
        p.deadline = Some(now + Duration::from_secs(1));
        assert!(!p.expired_at(now));
        assert!(p.expired_at(now + Duration::from_secs(2)));
    }

    #[test]
    fn window_accumulates_across_threads() {
        let b = Arc::new(Batcher::new(1000, Duration::from_millis(40)));
        let b2 = Arc::clone(&b);
        b.submit(pending(1)).unwrap();
        let late = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            b2.submit(pending(1)).unwrap();
        });
        // The window opened on the first submit but must still include the
        // one that lands 10ms later.
        let w = b.next_window().unwrap();
        late.join().unwrap();
        assert_eq!(w.len(), 2);
    }
}
