//! The sharded connection registry: who is connected, and how to write
//! back to them.
//!
//! Reader threads register on accept and deregister on exit; executor
//! threads look writers up by connection id when demultiplexing
//! responses. Ids are dense and strictly increasing, routed to a shard by
//! low bits, so registration from many reader threads contends on
//! different shards.
//!
//! A [`ConnWriter`] holds the write half (a `try_clone` of the stream)
//! behind a poison-recovering slot (`locked::Slot`), because two executors can finish windows carrying
//! responses for the *same* connection concurrently — the slot makes each
//! response frame atomic on the stream.
//!
//! Frame atomicity survives *failure*, too: a write that errors mid-frame
//! (a timeout against a stalled reader, a reset) may have left a torn
//! frame on the stream, so the writer latches a dead flag under the same
//! slot and every later [`send`](ConnWriter::send) is refused without
//! touching the socket. The torn frame is therefore the last bytes the
//! client can ever observe — no complete-looking frame can follow garbage.

use crate::frame::write_frame;
use crate::locked::Slot;
use ftl_seeded::DetHashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 16;

/// The write half plus its torn-frame latch, guarded as one unit so the
/// flag can never lag the write that poisoned the stream.
#[derive(Debug)]
struct WriteState<S> {
    stream: S,
    dead: bool,
}

/// Sends one frame, refusing if an earlier send failed (the stream may
/// carry a torn frame) and latching the dead flag if this one fails.
/// Generic over the sink so the every-byte-boundary kill test below can
/// drive it without a socket.
fn send_locked<S: Write>(state: &mut WriteState<S>, record: &[u8]) -> std::io::Result<()> {
    if state.dead {
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "write half poisoned by an earlier failed write",
        ));
    }
    match write_frame(&mut state.stream, record) {
        Ok(()) => Ok(()),
        Err(e) => {
            state.dead = true;
            Err(e)
        }
    }
}

/// The write half of one registered connection.
#[derive(Debug)]
pub struct ConnWriter {
    state: Slot<WriteState<TcpStream>>,
}

impl ConnWriter {
    /// Writes one length-prefixed frame; concurrent senders serialize on
    /// the slot so frames never interleave.
    ///
    /// The write half carries the registration's write timeout, so a
    /// client that stopped reading its responses makes this return a
    /// timeout error instead of blocking the calling executor forever.
    /// A timed-out write may have sent a partial frame — the stream is
    /// unrecoverable afterwards, so this writer refuses every subsequent
    /// send (`BrokenPipe`) and the caller must drop the connection.
    pub fn send(&self, record: &[u8]) -> std::io::Result<()> {
        self.state.with(|s| send_locked(s, record))
    }

    /// Shuts both halves of the socket down (best effort), so the
    /// connection's reader thread observes EOF and exits even though it
    /// holds its own clone of the stream.
    pub fn shutdown(&self) {
        self.state.with(|s| {
            let _ = s.stream.shutdown(Shutdown::Both);
        });
    }
}

/// The registry proper.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Slot<DetHashMap<u64, Arc<ConnWriter>>>>,
    next_id: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| Slot::default()).collect(),
            next_id: AtomicU64::new(1),
        }
    }

    fn shard(&self, id: u64) -> Option<&Slot<DetHashMap<u64, Arc<ConnWriter>>>> {
        self.shards.get(id as usize % SHARDS)
    }

    /// Registers a connection's write half, returning its id and writer
    /// handle. `write_timeout` bounds every [`ConnWriter::send`] on this
    /// connection (`None` = block indefinitely — test-only; the server
    /// always passes a bound so a stalled reader cannot park an
    /// executor).
    pub fn register(
        &self,
        stream: &TcpStream,
        write_timeout: Option<Duration>,
    ) -> std::io::Result<(u64, Arc<ConnWriter>)> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let write_half = stream.try_clone()?;
        write_half.set_write_timeout(write_timeout)?;
        let writer = Arc::new(ConnWriter {
            state: Slot::new(WriteState {
                stream: write_half,
                dead: false,
            }),
        });
        if let Some(shard) = self.shard(id) {
            shard.with(|m| m.insert(id, Arc::clone(&writer)));
        }
        Ok((id, writer))
    }

    /// Removes a connection; responses demuxed to it afterwards are
    /// dropped silently (the client is gone).
    pub fn deregister(&self, id: u64) {
        if let Some(shard) = self.shard(id) {
            shard.with(|m| m.remove(&id));
        }
    }

    /// Looks a live connection's writer up.
    pub fn get(&self, id: u64) -> Option<Arc<ConnWriter>> {
        self.shard(id)?.with(|m| m.get(&id).map(Arc::clone))
    }

    /// Live connections.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.with(|m| m.len())).sum()
    }

    /// Whether no connection is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts exactly `budget` bytes and then fails every
    /// write with `TimedOut` — the shape of a response write dying
    /// against a stalled reader at an arbitrary byte boundary.
    struct KillAt {
        out: Vec<u8>,
        budget: usize,
    }

    impl Write for KillAt {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.budget == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "peer stopped reading",
                ));
            }
            let n = buf.len().min(self.budget);
            self.out.extend_from_slice(buf.get(..n).unwrap_or(buf));
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// The frame-atomicity proof: kill the write at *every* byte boundary
    /// of a frame and check that (a) the stream holds a strict prefix of
    /// that frame, and (b) a second send is refused without writing a
    /// byte — so a torn frame is always the end of the stream, never
    /// followed by something complete-looking.
    #[test]
    fn killed_write_never_leaves_bytes_after_a_torn_frame() {
        let record: Vec<u8> = (0u8..32).collect();
        let mut framed = Vec::new();
        write_frame(&mut framed, &record).unwrap();

        for cut in 0..framed.len() {
            let mut state = WriteState {
                stream: KillAt {
                    out: Vec::new(),
                    budget: cut,
                },
                dead: false,
            };
            let err = send_locked(&mut state, &record).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
            assert!(state.dead, "a failed send must latch the dead flag");
            assert_eq!(
                state.stream.out,
                framed.get(..cut).unwrap_or(&framed),
                "cut at byte {cut}: stream must hold a strict prefix of the frame"
            );

            // The second frame must be refused outright: no byte of it may
            // appear after the torn frame, even though the sink would now
            // accept writes again.
            state.stream.budget = usize::MAX;
            let refused = send_locked(&mut state, &record).unwrap_err();
            assert_eq!(refused.kind(), std::io::ErrorKind::BrokenPipe);
            assert_eq!(
                state.stream.out,
                framed.get(..cut).unwrap_or(&framed),
                "cut at byte {cut}: refused send must not touch the stream"
            );
        }
    }

    /// The complement: sends that complete keep the writer healthy, and
    /// consecutive frames land back to back.
    #[test]
    fn healthy_sends_stay_healthy() {
        let record: Vec<u8> = (0u8..32).collect();
        let mut framed = Vec::new();
        write_frame(&mut framed, &record).unwrap();

        let mut state = WriteState {
            stream: KillAt {
                out: Vec::new(),
                budget: usize::MAX,
            },
            dead: false,
        };
        send_locked(&mut state, &record).unwrap();
        send_locked(&mut state, &record).unwrap();
        assert!(!state.dead);
        assert_eq!(state.stream.out.len(), framed.len() * 2);
    }
}
