//! The sharded connection registry: who is connected, and how to write
//! back to them.
//!
//! Reader threads register on accept and deregister on exit; executor
//! threads look writers up by connection id when demultiplexing
//! responses. Ids are dense and strictly increasing, routed to a shard by
//! low bits, so registration from many reader threads contends on
//! different shards.
//!
//! A [`ConnWriter`] holds the write half (a `try_clone` of the stream)
//! behind a poison-recovering slot (`locked::Slot`), because two executors can finish windows carrying
//! responses for the *same* connection concurrently — the slot makes each
//! response frame atomic on the stream.

use crate::frame::write_frame;
use crate::locked::Slot;
use ftl_seeded::DetHashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 16;

/// The write half of one registered connection.
#[derive(Debug)]
pub struct ConnWriter {
    stream: Slot<TcpStream>,
}

impl ConnWriter {
    /// Writes one length-prefixed frame; concurrent senders serialize on
    /// the slot so frames never interleave.
    ///
    /// The write half carries the registration's write timeout, so a
    /// client that stopped reading its responses makes this return a
    /// timeout error instead of blocking the calling executor forever.
    /// A timed-out write may have sent a partial frame — the stream is
    /// unrecoverable afterwards and the caller must drop the connection.
    pub fn send(&self, record: &[u8]) -> std::io::Result<()> {
        self.stream.with(|s| write_frame(s, record))
    }

    /// Shuts both halves of the socket down (best effort), so the
    /// connection's reader thread observes EOF and exits even though it
    /// holds its own clone of the stream.
    pub fn shutdown(&self) {
        self.stream.with(|s| {
            let _ = s.shutdown(Shutdown::Both);
        });
    }
}

/// The registry proper.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Slot<DetHashMap<u64, Arc<ConnWriter>>>>,
    next_id: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| Slot::default()).collect(),
            next_id: AtomicU64::new(1),
        }
    }

    fn shard(&self, id: u64) -> Option<&Slot<DetHashMap<u64, Arc<ConnWriter>>>> {
        self.shards.get(id as usize % SHARDS)
    }

    /// Registers a connection's write half, returning its id and writer
    /// handle. `write_timeout` bounds every [`ConnWriter::send`] on this
    /// connection (`None` = block indefinitely — test-only; the server
    /// always passes a bound so a stalled reader cannot park an
    /// executor).
    pub fn register(
        &self,
        stream: &TcpStream,
        write_timeout: Option<Duration>,
    ) -> std::io::Result<(u64, Arc<ConnWriter>)> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let write_half = stream.try_clone()?;
        write_half.set_write_timeout(write_timeout)?;
        let writer = Arc::new(ConnWriter {
            stream: Slot::new(write_half),
        });
        if let Some(shard) = self.shard(id) {
            shard.with(|m| m.insert(id, Arc::clone(&writer)));
        }
        Ok((id, writer))
    }

    /// Removes a connection; responses demuxed to it afterwards are
    /// dropped silently (the client is gone).
    pub fn deregister(&self, id: u64) {
        if let Some(shard) = self.shard(id) {
            shard.with(|m| m.remove(&id));
        }
    }

    /// Looks a live connection's writer up.
    pub fn get(&self, id: u64) -> Option<Arc<ConnWriter>> {
        self.shard(id)?.with(|m| m.get(&id).map(Arc::clone))
    }

    /// Live connections.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.with(|m| m.len())).sum()
    }

    /// Whether no connection is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
