//! The one place in `ftl-server` allowed to name a lock.
//!
//! Everything mutable-and-shared in the front end (connection writers,
//! registry shards, tenant counters) funnels through [`Slot`], so the
//! analyzer's lock audit (FTL002) and clippy's `disallowed_types` wall
//! have exactly one module to bless. The serving *data* path — store
//! reads, elimination, query answering — never touches this module; locks
//! here guard front-end plumbing only, and every hold is a short critical
//! section around a closure (no I/O-free guarantee is claimed: a
//! connection writer deliberately holds its slot across the socket write
//! so response frames from concurrent executors cannot interleave).
//!
//! Poisoning is recovered, not propagated: a panicking thread (already
//! contained by the engine's catch_unwind or fatal to its own connection)
//! must not wedge every other connection, so [`Slot::with`] takes the
//! inner value out of a poisoned lock and carries on.

// ftl-analyzer: allow(lock-free) the blessed front-end lock wrapper; see module docs
#[allow(clippy::disallowed_types)]
use std::sync::Mutex;

/// A mutex the rest of the crate can use without naming one.
#[derive(Debug, Default)]
pub(crate) struct Slot<T> {
    // ftl-analyzer: allow(lock-free) the blessed front-end lock wrapper
    #[allow(clippy::disallowed_types)]
    inner: Mutex<T>,
}

impl<T> Slot<T> {
    /// Wraps a value.
    // ftl-analyzer: allow(lock-free) constructor of the blessed wrapper
    #[allow(clippy::disallowed_types)]
    pub fn new(value: T) -> Self {
        Slot {
            inner: Mutex::new(value),
        }
    }

    /// Runs `f` with the value locked, recovering from poisoning.
    // ftl-analyzer: allow(lock-free) the one lock acquisition in the front end
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }
}
