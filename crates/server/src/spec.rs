//! A tiny topology spec language, so `ftl-serve` and `ftl-loadgen` can
//! agree on a graph (and the loadgen's BFS oracle on the ground truth)
//! from nothing but command-line flags.
//!
//! Specs: `grid:ROWSxCOLS` · `er:N:AVG_DEG` (connected Erdős–Rényi,
//! `p = AVG_DEG / N`) · `ba:N:M` (Barabási–Albert, `M` attachments per
//! vertex). The random families are deterministic in the given seed, so
//! the same `(spec, seed)` pair names the same graph on both sides of
//! the socket.

use ftl_graph::{generators, EdgeId, Graph};
use ftl_seeded::{splitmix64, DetHashSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parses a topology spec (see module docs).
pub fn parse_graph_spec(spec: &str, seed: u64) -> Result<Graph, String> {
    let mut parts = spec.split(':');
    let family = parts.next().unwrap_or_default();
    match family {
        "grid" => {
            let dims = parts.next().ok_or("grid spec needs ROWSxCOLS")?;
            let (rows, cols) = dims
                .split_once('x')
                .ok_or_else(|| format!("bad grid dims `{dims}` (want ROWSxCOLS)"))?;
            let rows: usize = rows.parse().map_err(|_| format!("bad rows `{rows}`"))?;
            let cols: usize = cols.parse().map_err(|_| format!("bad cols `{cols}`"))?;
            if rows * cols == 0 {
                return Err("grid must be non-empty".to_string());
            }
            Ok(generators::grid(rows, cols))
        }
        "er" => {
            let n: usize = parse_field(parts.next(), "er spec needs N")?;
            let deg: f64 = parse_field(parts.next(), "er spec needs AVG_DEG")?;
            if n == 0 || deg <= 0.0 {
                return Err("er needs N > 0 and AVG_DEG > 0".to_string());
            }
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(generators::connected_random(n, deg / n as f64, 1, &mut rng))
        }
        "ba" => {
            let n: usize = parse_field(parts.next(), "ba spec needs N")?;
            let m: usize = parse_field(parts.next(), "ba spec needs M")?;
            if n == 0 || m == 0 {
                return Err("ba needs N > 0 and M > 0".to_string());
            }
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(generators::barabasi_albert(n, m, &mut rng))
        }
        other => Err(format!(
            "unknown graph family `{other}` (want grid | er | ba)"
        )),
    }
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, missing: &str) -> Result<T, String> {
    let raw = field.ok_or_else(|| missing.to_string())?;
    raw.parse().map_err(|_| format!("bad field `{raw}`"))
}

/// Derives `count` distinct fault sets of `per_set` distinct edges each,
/// deterministically in `seed` — the shared vocabulary of a loadgen run:
/// every client draws its per-request fault set from this list, which is
/// exactly what makes cross-connection batching effective.
pub fn derive_fault_sets(g: &Graph, count: usize, per_set: usize, seed: u64) -> Vec<Vec<EdgeId>> {
    let m = g.num_edges();
    let per_set = per_set.min(m);
    let mut state = splitmix64(seed ^ 0xFA11_5E75);
    (0..count)
        .map(|_| {
            let mut seen = DetHashSet::default();
            let mut set = Vec::with_capacity(per_set);
            while set.len() < per_set {
                state = splitmix64(state);
                let e = EdgeId::new((state % m as u64) as usize);
                if seen.insert(e) {
                    set.push(e);
                }
            }
            set
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_are_seed_deterministic() {
        let g = parse_graph_spec("grid:4x5", 0).unwrap();
        assert_eq!(g.num_vertices(), 20);
        let a = parse_graph_spec("er:64:4", 7).unwrap();
        let b = parse_graph_spec("er:64:4", 7).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(parse_graph_spec("er:0:4", 7).is_err());
        assert!(parse_graph_spec("mesh:9", 7).is_err());
        assert!(parse_graph_spec("grid:9", 7).is_err());
    }

    #[test]
    fn fault_sets_are_distinct_edges_and_deterministic() {
        let g = parse_graph_spec("grid:8x8", 0).unwrap();
        let sets = derive_fault_sets(&g, 8, 4, 99);
        assert_eq!(sets.len(), 8);
        for s in &sets {
            assert_eq!(s.len(), 4);
            let uniq: DetHashSet<_> = s.iter().collect();
            assert_eq!(uniq.len(), 4);
        }
        assert_eq!(sets, derive_fault_sets(&g, 8, 4, 99));
    }
}
