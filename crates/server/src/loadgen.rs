//! The load-generating client: many concurrent connections, a shared
//! fault-set vocabulary, and a BFS ground-truth oracle.
//!
//! Every answer the server returns is checked against
//! [`ConnectivityOracle`] — plain BFS connected components on `G \ F` —
//! so a loadgen run is simultaneously a throughput measurement and an
//! end-to-end correctness audit of the whole stack (framing, batching,
//! grouping, demux, engine, labels). Each worker drives a
//! [`ResilientClient`], so `ServerBusy` and `DeadlineExceeded` answers
//! are retried with capped jittered backoff, I/O errors reconnect, and
//! every retry/reconnect is counted — never silently dropped.
//!
//! A run can carry a **global deadline**
//! ([`LoadgenConfig::run_deadline`]): a watcher raises a stop flag at the
//! bound and every in-flight request's attempt loop observes it, so a
//! stalled or black-holed server can never hang a run — it ends with
//! [`LoadgenReport::timed_out`] set, which the `ftl-loadgen` binary turns
//! into a typed non-zero exit.

use crate::client::{AttemptError, BackoffConfig, ClientConfig, ResilientClient};
use crate::frame::{
    read_frame, write_frame, MetricsRequestFrame, MetricsResponseFrame, MAX_FRAME_BYTES_DEFAULT,
};
use ftl_engine::percentile_nearest_rank;
use ftl_graph::traversal::{connected_components, forbidden_mask};
use ftl_graph::{EdgeId, Graph, VertexId};
use ftl_labels::wire::WireLabel;
use ftl_seeded::splitmix64;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ground truth for a fixed vocabulary of fault sets: component ids per
/// vertex in `G \ F`, computed once by BFS.
#[derive(Debug)]
pub struct ConnectivityOracle {
    comps: Vec<Vec<usize>>,
}

impl ConnectivityOracle {
    /// Precomputes components for every fault set.
    pub fn new(g: &Graph, fault_sets: &[Vec<EdgeId>]) -> Self {
        let comps = fault_sets
            .iter()
            .map(|faults| {
                let mask = forbidden_mask(g, faults);
                connected_components(g, &mask).0
            })
            .collect();
        ConnectivityOracle { comps }
    }

    /// Whether `s` and `t` are connected in `G \ F` for fault set `set`.
    /// Out-of-range inputs answer `false`.
    pub fn connected(&self, set: usize, s: VertexId, t: VertexId) -> bool {
        let Some(comp) = self.comps.get(set) else {
            return false;
        };
        match (comp.get(s.index()), comp.get(t.index())) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

/// Loadgen shape knobs.
#[derive(Debug, Copy, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Queries per request.
    pub queries_per_request: usize,
    /// PRNG seed (per-client streams are derived from it).
    pub seed: u64,
    /// Most times one request is retried (through `ServerBusy`,
    /// `DeadlineExceeded`, or an I/O error + reconnect) before the client
    /// gives up and counts it unserved.
    pub max_busy_retries: usize,
    /// TTL stamped into every request envelope (milliseconds; 0 = none).
    pub ttl_ms: u32,
    /// Global wall-clock bound on the whole run (`ZERO` = unbounded).
    /// When it passes, workers stop between requests *and* mid-retry, and
    /// the report comes back with [`LoadgenReport::timed_out`] set.
    pub run_deadline: Duration,
    /// Bound on one request attempt (send + wait for the response).
    pub request_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 8,
            requests_per_client: 32,
            queries_per_request: 16,
            seed: 1,
            max_busy_retries: 10_000,
            ttl_ms: 0,
            run_deadline: Duration::ZERO,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// What a loadgen run observed, aggregated over every client.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenReport {
    /// Requests answered `Ok`.
    pub requests_ok: u64,
    /// Queries answered across those requests.
    pub queries_ok: u64,
    /// Answers that disagreed with the BFS oracle (must be 0).
    pub mismatches: u64,
    /// `ServerBusy` responses observed (each retried).
    pub busy_rejects: u64,
    /// Requests dropped after exhausting busy retries.
    pub unserved: u64,
    /// `EngineFailed` responses.
    pub engine_failures: u64,
    /// `ShuttingDown` responses.
    pub shutdown_notices: u64,
    /// Requests dropped after exhausting I/O retries (server unreachable
    /// or persistently desynced).
    pub io_errors: u64,
    /// Attempts beyond the first, any cause (busy, deadline, I/O).
    pub retries: u64,
    /// Fresh connections established after a worker's first.
    pub reconnects: u64,
    /// `DeadlineExceeded` answers observed (each retried).
    pub deadline_rejects: u64,
    /// Whether the global run deadline cut the run short.
    pub timed_out: bool,
    /// Wall-clock of the whole run, nanoseconds.
    pub wall_ns: u64,
    /// Nearest-rank median end-to-end request latency, milliseconds.
    pub p50_ms: f64,
    /// Nearest-rank p99 end-to-end request latency, milliseconds.
    pub p99_ms: f64,
    /// Answered queries per wall-clock second.
    pub queries_per_sec: f64,
}

#[derive(Debug, Default)]
struct ClientOutcome {
    requests_ok: u64,
    queries_ok: u64,
    mismatches: u64,
    busy_rejects: u64,
    unserved: u64,
    engine_failures: u64,
    shutdown_notices: u64,
    io_errors: u64,
    retries: u64,
    reconnects: u64,
    deadline_rejects: u64,
    timed_out: bool,
    latencies_ns: Vec<u64>,
}

/// Runs the full loadgen against `addr`, checking every answer against a
/// fresh BFS oracle over `(g, fault_sets)`.
pub fn run_loadgen(
    addr: SocketAddr,
    g: &Graph,
    fault_sets: &[Vec<EdgeId>],
    config: LoadgenConfig,
) -> LoadgenReport {
    let oracle = Arc::new(ConnectivityOracle::new(g, fault_sets));
    let sets: Arc<Vec<Vec<EdgeId>>> = Arc::new(fault_sets.to_vec());
    let n = g.num_vertices();
    let started = Instant::now();
    // The global run deadline: an instant every worker's retry loop
    // checks, so even a black-holed server can't hang the run.
    let give_up = (!config.run_deadline.is_zero()).then(|| started + config.run_deadline);
    let mut joins = Vec::with_capacity(config.clients);
    for c in 0..config.clients {
        let oracle = Arc::clone(&oracle);
        let sets = Arc::clone(&sets);
        let spawned = std::thread::Builder::new()
            .name(format!("ftl-load-{c}"))
            .spawn(move || run_client(c, addr, n, &oracle, &sets, config, give_up));
        joins.push(spawned);
    }
    let mut report = LoadgenReport::default();
    let mut latencies: Vec<f64> = Vec::new();
    for j in joins {
        let outcome = match j.map(|h| h.join()) {
            Ok(Ok(o)) => o,
            // A client thread failed to spawn or died; its requests count
            // as client-side errors, not server successes.
            _ => ClientOutcome {
                io_errors: 1,
                ..ClientOutcome::default()
            },
        };
        report.requests_ok += outcome.requests_ok;
        report.queries_ok += outcome.queries_ok;
        report.mismatches += outcome.mismatches;
        report.busy_rejects += outcome.busy_rejects;
        report.unserved += outcome.unserved;
        report.engine_failures += outcome.engine_failures;
        report.shutdown_notices += outcome.shutdown_notices;
        report.io_errors += outcome.io_errors;
        report.retries += outcome.retries;
        report.reconnects += outcome.reconnects;
        report.deadline_rejects += outcome.deadline_rejects;
        report.timed_out |= outcome.timed_out;
        latencies.extend(outcome.latencies_ns.iter().map(|&ns| ns as f64));
    }
    report.wall_ns = started.elapsed().as_nanos() as u64;
    latencies.sort_by(f64::total_cmp);
    report.p50_ms = percentile_nearest_rank(&latencies, 0.5) / 1e6;
    report.p99_ms = percentile_nearest_rank(&latencies, 0.99) / 1e6;
    let secs = (report.wall_ns as f64 / 1e9).max(1e-9);
    report.queries_per_sec = report.queries_ok as f64 / secs;
    report
}

/// Scrapes the server's metrics exposition over the wire: one
/// `MetricsRequest 0x50` envelope out, one `MetricsResponse 0x51` back —
/// the same admin plane a monitoring agent would use. Works mid-load on
/// its own connection; the server answers it from the reader thread
/// without touching the batching pipeline.
///
/// # Errors
///
/// Fails on connect/socket errors, or (as `InvalidData`) when the
/// response frame is malformed or answers a different request id.
pub fn scrape_metrics(addr: SocketAddr) -> std::io::Result<String> {
    use std::io::{Error, ErrorKind};
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let request_id = 0x0B5E_55C4_A9E0_0001;
    write_frame(&mut stream, &MetricsRequestFrame { request_id }.to_wire())?;
    let never_stop = AtomicBool::new(false);
    let body = read_frame(&mut stream, MAX_FRAME_BYTES_DEFAULT, &never_stop)
        .map_err(|e| Error::new(ErrorKind::InvalidData, format!("scrape read: {e}")))?;
    let resp = MetricsResponseFrame::from_wire(&body)
        .map_err(|e| Error::new(ErrorKind::InvalidData, format!("scrape decode: {e}")))?;
    if resp.request_id != request_id {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "scrape response answered a different request id",
        ));
    }
    Ok(resp.text)
}

/// One row of the per-stage latency table parsed out of a scrape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageRow {
    /// Stage name as exposed (`frame_read`, `admission`, ...).
    pub stage: String,
    /// Samples recorded into the stage histogram.
    pub count: u64,
    /// Sum of all recorded values, nanoseconds.
    pub sum_ns: u64,
    /// Nearest-rank median, nanoseconds (bucket upper bound).
    pub p50_ns: u64,
    /// Nearest-rank p99, nanoseconds (bucket upper bound).
    pub p99_ns: u64,
}

/// Extracts the `ftl_stage_ns` family from a text exposition into table
/// rows, one per stage, in first-appearance order. Lines that are not
/// stage samples (other families, `# TYPE` headers, malformed input) are
/// skipped — a scrape of a server built with `no-obs` parses to rows with
/// every field zero.
pub fn parse_stage_table(text: &str) -> Vec<StageRow> {
    fn label_value<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
        labels.split(',').find_map(|part| {
            let (k, v) = part.split_once('=')?;
            (k == key).then(|| v.trim_matches('"'))
        })
    }
    let mut rows: Vec<StageRow> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("ftl_stage_ns") else {
            continue;
        };
        let (Some(open), Some(close)) = (rest.find('{'), rest.find('}')) else {
            continue;
        };
        let (Some(field), Some(labels), Some(tail)) = (
            rest.get(..open),
            rest.get(open + 1..close),
            rest.get(close + 1..),
        ) else {
            continue;
        };
        let Some(stage) = label_value(labels, "stage") else {
            continue;
        };
        let Ok(value) = tail.trim().parse::<u64>() else {
            continue;
        };
        let idx = rows
            .iter()
            .position(|r| r.stage == stage)
            .unwrap_or_else(|| {
                rows.push(StageRow {
                    stage: stage.to_string(),
                    ..StageRow::default()
                });
                rows.len() - 1
            });
        let Some(row) = rows.get_mut(idx) else {
            continue;
        };
        match (field, label_value(labels, "quantile")) {
            ("", Some("0.5")) => row.p50_ns = value,
            ("", Some("0.99")) => row.p99_ns = value,
            ("_count", None) => row.count = value,
            ("_sum", None) => row.sum_ns = value,
            _ => {}
        }
    }
    rows
}

fn run_client(
    id: usize,
    addr: SocketAddr,
    num_vertices: usize,
    oracle: &ConnectivityOracle,
    sets: &[Vec<EdgeId>],
    config: LoadgenConfig,
    give_up: Option<Instant>,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: config.request_timeout,
            max_attempts: config
                .max_busy_retries
                .saturating_add(1)
                .min(u32::MAX as usize) as u32,
            backoff: BackoffConfig {
                base: Duration::from_micros(200),
                cap: Duration::from_millis(5),
                // Every worker jitters differently, deterministically.
                seed: config.seed ^ ((id as u64) << 32 | 0xBAC0_FF01),
            },
            ttl_ms: config.ttl_ms,
        },
    );
    let mut state = splitmix64(config.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    'requests: for _ in 0..config.requests_per_client {
        if give_up.is_some_and(|hard| Instant::now() >= hard) {
            out.timed_out = true;
            break 'requests;
        }
        state = splitmix64(state);
        let set_idx = if sets.is_empty() {
            0
        } else {
            (state % sets.len() as u64) as usize
        };
        let faults = sets.get(set_idx).cloned().unwrap_or_default();
        let mut queries = Vec::with_capacity(config.queries_per_request);
        for _ in 0..config.queries_per_request {
            state = splitmix64(state);
            let s = (state % num_vertices.max(1) as u64) as usize;
            state = splitmix64(state);
            let t = (state % num_vertices.max(1) as u64) as usize;
            queries.push((VertexId::new(s), VertexId::new(t)));
        }
        let sent_at = Instant::now();
        match client.query_before(id as u32, &faults, &queries, give_up) {
            Ok(reply) => {
                out.latencies_ns.push(sent_at.elapsed().as_nanos() as u64);
                out.requests_ok += 1;
                out.busy_rejects += reply.log.busy as u64;
                out.deadline_rejects += reply.log.deadline_exceeded as u64;
                out.retries += reply.log.attempts.saturating_sub(1) as u64;
                out.reconnects += reply.log.reconnects as u64;
                if reply.answers.len() != queries.len() {
                    out.mismatches += 1;
                    continue;
                }
                for (&(s, t), &got) in queries.iter().zip(&reply.answers) {
                    out.queries_ok += 1;
                    if got != oracle.connected(set_idx, s, t) {
                        out.mismatches += 1;
                    }
                }
            }
            Err(err) => {
                out.busy_rejects += err.log.busy as u64;
                out.deadline_rejects += err.log.deadline_exceeded as u64;
                out.retries += err.log.attempts.saturating_sub(1) as u64;
                out.reconnects += err.log.reconnects as u64;
                if give_up.is_some_and(|hard| Instant::now() >= hard) {
                    out.timed_out = true;
                    out.unserved += 1;
                    break 'requests;
                }
                match err.last {
                    AttemptError::Busy | AttemptError::DeadlineExceeded => {
                        out.unserved += 1;
                    }
                    AttemptError::EngineFailed => {
                        out.engine_failures += 1;
                    }
                    AttemptError::ShuttingDown => {
                        out.shutdown_notices += 1;
                        break 'requests;
                    }
                    AttemptError::Io(_) | AttemptError::Protocol(_) => {
                        // The client already retried and reconnected up to
                        // its attempt budget; a give-up here means the
                        // server is genuinely unreachable.
                        out.io_errors += 1;
                        break 'requests;
                    }
                }
            }
        }
    }
    out
}
