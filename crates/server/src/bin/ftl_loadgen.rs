//! `ftl-loadgen` — drive a running `ftl-serve` and audit every answer.
//!
//! The loadgen rebuilds the server's topology from the same `--graph` /
//! `--seed` pair, derives the shared fault-set vocabulary, precomputes
//! BFS ground truth, and then hammers the server with `--clients`
//! concurrent connections. Any answer disagreeing with BFS is a
//! mismatch; the process exits non-zero if there is even one.
//!
//! ```text
//! ftl-loadgen --addr 127.0.0.1:7411 --graph er:1024:8 --seed 1 \
//!             --clients 64 --requests 32 --queries 16 --fault-sets 8
//! ```

use ftl_server::{
    derive_fault_sets, parse_graph_spec, parse_stage_table, run_loadgen, scrape_metrics,
    LoadgenConfig,
};
use std::net::ToSocketAddrs;

struct Args {
    addr: String,
    graph: String,
    seed: u64,
    fault_sets: usize,
    faults_per_set: usize,
    clients: usize,
    requests: usize,
    queries: usize,
    loadgen_seed: u64,
    scrape_delay_ms: u64,
    ttl_ms: u32,
    max_retries: usize,
    request_timeout_ms: u64,
    run_deadline_secs: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7411".to_string(),
            graph: "grid:32x32".to_string(),
            seed: 1,
            fault_sets: 8,
            faults_per_set: 4,
            clients: 64,
            requests: 32,
            queries: 16,
            loadgen_seed: 1,
            scrape_delay_ms: 0,
            ttl_ms: 0,
            max_retries: 10_000,
            request_timeout_ms: 10_000,
            run_deadline_secs: 0,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--graph" => args.graph = value("--graph")?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--fault-sets" => args.fault_sets = parse(&value("--fault-sets")?)?,
            "--faults-per-set" => args.faults_per_set = parse(&value("--faults-per-set")?)?,
            "--clients" => args.clients = parse(&value("--clients")?)?,
            "--requests" => args.requests = parse(&value("--requests")?)?,
            "--queries" => args.queries = parse(&value("--queries")?)?,
            "--loadgen-seed" => args.loadgen_seed = parse(&value("--loadgen-seed")?)?,
            "--scrape-delay-ms" => args.scrape_delay_ms = parse(&value("--scrape-delay-ms")?)?,
            "--ttl-ms" => args.ttl_ms = parse(&value("--ttl-ms")?)?,
            "--max-retries" => args.max_retries = parse(&value("--max-retries")?)?,
            "--request-timeout-ms" => {
                args.request_timeout_ms = parse(&value("--request-timeout-ms")?)?;
            }
            "--run-deadline-secs" => {
                args.run_deadline_secs = parse(&value("--run-deadline-secs")?)?;
            }
            "--help" | "-h" => {
                println!(
                    "ftl-loadgen [--addr A] [--graph SPEC] [--seed N] [--fault-sets N]\n\
                     \x20           [--faults-per-set N] [--clients N] [--requests N]\n\
                     \x20           [--queries N] [--loadgen-seed N] [--scrape-delay-ms N]\n\
                     \x20           [--ttl-ms N] [--max-retries N] [--request-timeout-ms N]\n\
                     \x20           [--run-deadline-secs N]\n\
                     \x20           (--scrape-delay-ms: scrape server metrics that long\n\
                     \x20            into the run and print the per-stage latency table;\n\
                     \x20            --ttl-ms: stamp request TTLs; --run-deadline-secs:\n\
                     \x20            hard wall-clock bound on the whole run, exit 3 on\n\
                     \x20            timeout; 0 = unbounded)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad value `{raw}`"))
}

fn run() -> Result<Outcome, String> {
    let args = parse_args()?;
    let addr = args
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("bad addr {}: {e}", args.addr))?
        .next()
        .ok_or(format!("addr {} resolves to nothing", args.addr))?;
    let g = parse_graph_spec(&args.graph, args.seed)?;
    let sets = derive_fault_sets(&g, args.fault_sets, args.faults_per_set, args.seed);
    println!(
        "{}: {} vertices, {} edges; {} fault sets x {} faults; \
         {} clients x {} requests x {} queries",
        args.graph,
        g.num_vertices(),
        g.num_edges(),
        sets.len(),
        args.faults_per_set,
        args.clients,
        args.requests,
        args.queries
    );
    // Mid-run scrape: a thread waits out the delay, then pulls the
    // metrics exposition over the wire while the clients are still
    // hammering — the table below is what the server looked like *under*
    // load, not after the fact.
    let scraper = (args.scrape_delay_ms > 0).then(|| {
        let delay = std::time::Duration::from_millis(args.scrape_delay_ms);
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            scrape_metrics(addr)
        })
    });
    let report = run_loadgen(
        addr,
        &g,
        &sets,
        LoadgenConfig {
            clients: args.clients,
            requests_per_client: args.requests,
            queries_per_request: args.queries,
            seed: args.loadgen_seed,
            ttl_ms: args.ttl_ms,
            max_busy_retries: args.max_retries,
            request_timeout: std::time::Duration::from_millis(args.request_timeout_ms),
            run_deadline: std::time::Duration::from_secs(args.run_deadline_secs),
        },
    );
    let scrape = scraper.map(|j| match j.join() {
        Ok(Ok(text)) => Ok(text),
        Ok(Err(e)) => Err(format!("scrape failed: {e}")),
        Err(_) => Err("scrape thread panicked".to_string()),
    });
    println!(
        "{} requests ok / {} queries ok in {:.1} ms — {:.0} queries/s, \
         p50 {:.3} ms, p99 {:.3} ms",
        report.requests_ok,
        report.queries_ok,
        report.wall_ns as f64 / 1e6,
        report.queries_per_sec,
        report.p50_ms,
        report.p99_ms
    );
    println!(
        "{} mismatches, {} busy rejects ({} unserved), {} engine failures, \
         {} shutdown notices, {} io errors",
        report.mismatches,
        report.busy_rejects,
        report.unserved,
        report.engine_failures,
        report.shutdown_notices,
        report.io_errors
    );
    println!(
        "{} retries, {} reconnects, {} deadline rejects",
        report.retries, report.reconnects, report.deadline_rejects
    );
    match scrape {
        Some(Ok(text)) => print_stage_table(&text, args.scrape_delay_ms),
        Some(Err(e)) => eprintln!("ftl-loadgen: {e}"),
        None => {}
    }
    if report.timed_out {
        return Ok(Outcome::TimedOut);
    }
    Ok(if report.mismatches == 0 {
        Outcome::Clean
    } else {
        Outcome::Mismatches
    })
}

enum Outcome {
    Clean,
    Mismatches,
    TimedOut,
}

/// Prints the per-stage latency breakdown from a mid-run scrape.
fn print_stage_table(text: &str, delay_ms: u64) {
    let rows = parse_stage_table(text);
    println!("per-stage latency at +{delay_ms} ms (from MetricsRequest scrape):");
    println!(
        "  {:<14} {:>12} {:>12} {:>12} {:>14}",
        "stage", "count", "p50", "p99", "total"
    );
    for r in &rows {
        println!(
            "  {:<14} {:>12} {:>12} {:>12} {:>14}",
            r.stage,
            r.count,
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            fmt_ns(r.sum_ns)
        );
    }
    if rows.is_empty() {
        println!("  (no ftl_stage_ns series in scrape — server built with no-obs?)");
    }
}

/// Human-scaled nanoseconds: `850ns`, `12.3us`, `4.56ms`, `1.20s`.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

fn main() {
    match run() {
        Ok(Outcome::Clean) => {}
        Ok(Outcome::Mismatches) => {
            eprintln!("ftl-loadgen: MISMATCHES against BFS ground truth");
            std::process::exit(1);
        }
        Ok(Outcome::TimedOut) => {
            eprintln!("ftl-loadgen: TIMEOUT — global run deadline passed before completion");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("ftl-loadgen: {e}");
            std::process::exit(2);
        }
    }
}
