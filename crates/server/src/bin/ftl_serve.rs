//! `ftl-serve` — stand up the batched serving front end over a labeled
//! topology.
//!
//! The server and its clients agree on the topology via the spec
//! language (`--graph grid:32x32 --seed 1` must match on both sides; see
//! `ftl_server::spec`). Labels are built once at startup, frozen into a
//! sharded store, and published as epoch 1 of an `EpochStore` — each
//! accumulation window pins whatever epoch is current when it executes.
//!
//! ```text
//! ftl-serve --addr 127.0.0.1:7411 --graph er:1024:8 --seed 1 --duration-secs 30
//! ftl-serve --graph grid:32x32 --duration-secs 0     # run until Enter
//! ```

use ftl_cycle_space::CycleSpaceScheme;
use ftl_engine::{store_from_cycle_space, EngineConfig, EpochStore};
use ftl_seeded::Seed;
use ftl_server::{parse_graph_spec, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    graph: String,
    seed: u64,
    width: usize,
    shards: usize,
    executors: usize,
    workers: usize,
    window_us: u64,
    budget: usize,
    watchdog_factor: u32,
    duration_secs: u64,
    stats_interval: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7411".to_string(),
            graph: "grid:32x32".to_string(),
            seed: 1,
            width: 8,
            shards: 16,
            executors: 2,
            workers: 2,
            window_us: 500,
            budget: 1 << 16,
            watchdog_factor: 16,
            duration_secs: 10,
            stats_interval: 0,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--graph" => args.graph = value("--graph")?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--width" => args.width = parse(&value("--width")?)?,
            "--shards" => args.shards = parse(&value("--shards")?)?,
            "--executors" => args.executors = parse(&value("--executors")?)?,
            "--workers" => args.workers = parse(&value("--workers")?)?,
            "--window-us" => args.window_us = parse(&value("--window-us")?)?,
            "--budget" => args.budget = parse(&value("--budget")?)?,
            "--watchdog-factor" => args.watchdog_factor = parse(&value("--watchdog-factor")?)?,
            "--duration-secs" => args.duration_secs = parse(&value("--duration-secs")?)?,
            "--stats-interval" => args.stats_interval = parse(&value("--stats-interval")?)?,
            "--help" | "-h" => {
                println!(
                    "ftl-serve [--addr A] [--graph SPEC] [--seed N] [--width B] [--shards N]\n\
                     \x20         [--executors N] [--workers N] [--window-us N] [--budget N]\n\
                     \x20         [--watchdog-factor N] (force-release requests stuck longer\n\
                     \x20          than N accumulation windows; 0 = no watchdog)\n\
                     \x20         [--duration-secs N]   (0 = run until Enter on stdin)\n\
                     \x20         [--stats-interval S]  (dump the metrics exposition to\n\
                     \x20          stdout every S seconds while serving; 0 = off)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad value `{raw}`"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let g = parse_graph_spec(&args.graph, args.seed)?;
    println!(
        "labeling {} ({} vertices, {} edges), width {}...",
        args.graph,
        g.num_vertices(),
        g.num_edges(),
        args.width
    );
    let t0 = Instant::now();
    let scheme = CycleSpaceScheme::label(&g, args.width, Seed::new(args.seed))
        .map_err(|e| format!("labeling failed: {e}"))?;
    let store =
        store_from_cycle_space(&scheme, args.shards).map_err(|e| format!("freeze failed: {e}"))?;
    println!(
        "labeled + frozen in {:.1} ms ({} records, {} wire bytes, {} shards)",
        t0.elapsed().as_secs_f64() * 1e3,
        store.len(),
        store.bytes_total(),
        store.num_shards()
    );

    let epochs = Arc::new(EpochStore::new(Arc::new(store)));
    let server_config = ServerConfig {
        executors: args.executors,
        engine_workers: args.workers,
        window: Duration::from_micros(args.window_us),
        pending_budget: args.budget,
        watchdog_factor: args.watchdog_factor,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(
        epochs,
        EngineConfig::default(),
        server_config,
        args.addr.as_str(),
    )
    .map_err(|e| format!("bind {} failed: {e}", args.addr))?;
    println!(
        "serving on {} — {} executors x {} engine workers, {}us window, budget {}",
        handle.local_addr(),
        args.executors,
        args.workers,
        args.window_us,
        args.budget
    );

    // Optional periodic metrics dump: a scoped thread prints the same
    // text exposition a MetricsRequest scrape would return, so a run
    // without any monitoring client still leaves a latency/cache trace
    // on stdout.
    let stop_dump = std::sync::atomic::AtomicBool::new(false);
    let serve_t0 = Instant::now();
    std::thread::scope(|scope| {
        if args.stats_interval > 0 {
            let handle = &handle;
            let stop = &stop_dump;
            let interval = Duration::from_secs(args.stats_interval);
            scope.spawn(move || {
                let mut next = Instant::now() + interval;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(50));
                    if Instant::now() >= next {
                        println!(
                            "--- metrics @ +{:.1}s ---",
                            serve_t0.elapsed().as_secs_f64()
                        );
                        print!("{}", handle.metrics_text());
                        next = Instant::now() + interval;
                    }
                }
            });
        }
        if args.duration_secs == 0 {
            println!("press Enter to stop");
            let mut line = String::new();
            let _ = std::io::stdin().read_line(&mut line);
        } else {
            std::thread::sleep(Duration::from_secs(args.duration_secs));
        }
        stop_dump.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    println!("draining...");
    let stats = handle.shutdown();
    println!(
        "served {} requests / {} queries in {} windows ({} fault-set groups); \
         {} busy rejects, {} engine errors, {} frame errors, {} connections",
        stats.requests,
        stats.queries,
        stats.batches,
        stats.groups,
        stats.rejects,
        stats.engine_errors,
        stats.frame_errors,
        stats.connections_accepted
    );
    for t in &stats.tenants {
        println!(
            "  tenant {:>4}: {} requests, {} queries, {} rejects, p50 {:.3} ms, p99 {:.3} ms",
            t.tenant, t.requests, t.queries, t.rejects, t.p50_ms, t.p99_ms
        );
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ftl-serve: {e}");
        std::process::exit(2);
    }
}
