//! The resilient client: per-request deadlines, capped exponential
//! backoff with seeded jitter, and reconnect-and-retry.
//!
//! Retrying is *safe* here by construction: queries are pure (connectivity
//! under `G \ F` — re-asking cannot change server state), and responses
//! are keyed by `request_id`, so a retry can never be double-applied and a
//! stale answer can never be mistaken for a fresh one. The client leans on
//! both properties:
//!
//! * every attempt gets a **fresh request id**, so a late response to a
//!   timed-out attempt is recognizable as stale;
//! * any attempt that ends in an I/O error, a timeout, or a response for
//!   the wrong id **drops the connection** — the stream may be
//!   desynchronized (a torn frame, a stale response in flight) and
//!   reconnecting is the only way back to a clean framing boundary;
//! * `ServerBusy` and `DeadlineExceeded` answers keep the connection (the
//!   server is healthy, just loaded) and retry after a backoff.
//!
//! The backoff schedule is exponential with a cap and **seeded jitter**:
//! `nominal(n) = min(cap, base · 2ⁿ)`, and the actual delay is drawn
//! deterministically from `[nominal/2, nominal]` by a splitmix64 stream
//! over `(seed, attempt)`. Determinism keeps chaos runs reproducible —
//! the same seed yields the same retry cadence — while jitter still
//! decorrelates real fleets (each client derives its own seed).
//!
//! Every retry, reconnect, backoff sleep, and deadline rejection is
//! counted in the process-wide [`ftl_obs`] registry (`ftl_client_*`
//! families), so a chaos run can account for every injected fault from
//! the outside.

use crate::frame::{
    read_frame_deadline, write_frame, FrameError, QueryRequestFrame, QueryResponseFrame,
    ResponseStatus, MAX_FRAME_BYTES_DEFAULT,
};
use ftl_labels::wire::WireLabel;
use ftl_seeded::splitmix64;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Backoff shape: exponential from `base` to `cap`, jittered by `seed`.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First delay (attempt 0 nominal).
    pub base: Duration,
    /// Ceiling every nominal delay saturates at.
    pub cap: Duration,
    /// Jitter seed; the same seed reproduces the same delay sequence.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(50),
            seed: 1,
        }
    }
}

/// The deterministic backoff schedule; see the module docs for the shape.
#[derive(Debug, Copy, Clone)]
pub struct BackoffSchedule {
    config: BackoffConfig,
}

impl BackoffSchedule {
    /// A schedule with the given shape.
    pub fn new(config: BackoffConfig) -> Self {
        BackoffSchedule { config }
    }

    /// The un-jittered delay for `attempt`: `min(cap, base · 2^attempt)`.
    /// Monotone non-decreasing in `attempt` and saturating at the cap.
    pub fn nominal(&self, attempt: u32) -> Duration {
        let base = self.config.base.as_nanos();
        let cap = self.config.cap.as_nanos();
        // `saturating_mul`, not a shift: a checked shift only checks the
        // shift amount, silently wrapping the value out the top.
        let scaled = base.saturating_mul(1u128 << attempt.min(126));
        let ns = scaled.min(cap).min(u64::MAX as u128) as u64;
        Duration::from_nanos(ns)
    }

    /// The jittered delay for `attempt`, deterministically drawn from
    /// `[nominal/2, nominal]` by the schedule's seed.
    pub fn delay(&self, attempt: u32) -> Duration {
        let nominal = self.nominal(attempt).as_nanos() as u64;
        let half = nominal / 2;
        // One splitmix64 draw per (seed, attempt): a 32-bit fixed-point
        // fraction scales the jitterable half of the nominal delay.
        let draw = splitmix64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(attempt as u64),
        );
        let frac = draw >> 32;
        let jitter = ((half as u128 * frac as u128) >> 32) as u64;
        Duration::from_nanos(half + jitter)
    }
}

/// Client knobs. The defaults suit a loopback test; real deployments
/// raise the timeouts.
#[derive(Debug, Copy, Clone)]
pub struct ClientConfig {
    /// Bound on establishing one TCP connection.
    pub connect_timeout: Duration,
    /// Bound on one attempt: send plus wait-for-response. An attempt that
    /// overruns drops the connection (the response may be in flight; the
    /// stream is no longer trustworthy) and retries.
    pub request_timeout: Duration,
    /// Most attempts per logical request, including the first. At least 1.
    pub max_attempts: u32,
    /// Backoff shape between attempts.
    pub backoff: BackoffConfig,
    /// TTL stamped into every request envelope (milliseconds; 0 = none).
    /// Lets the server shed work the client has already given up on.
    pub ttl_ms: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            max_attempts: 8,
            backoff: BackoffConfig::default(),
            ttl_ms: 0,
        }
    }
}

/// What one logical request cost in attempts, by disposition. Carried on
/// both success and failure so callers can aggregate without scraping.
#[derive(Debug, Copy, Clone, Default, PartialEq, Eq)]
pub struct AttemptLog {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// `ServerBusy` answers retried through.
    pub busy: u32,
    /// `DeadlineExceeded` answers retried through.
    pub deadline_exceeded: u32,
    /// Attempts that died on I/O (connect, send, read, timeout, desync).
    pub io: u32,
    /// Fresh connections established after the first.
    pub reconnects: u32,
}

/// A served request: the answers plus how hard they were to get.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// One connectivity bit per query, in request order.
    pub answers: Vec<bool>,
    /// The label epoch that answered.
    pub epoch: u64,
    /// Attempt accounting for this request.
    pub log: AttemptLog,
}

/// The last thing that went wrong when a request ran out of attempts.
#[derive(Debug)]
pub enum AttemptError {
    /// Socket-level failure (connect, send, read, or timeout).
    Io(std::io::Error),
    /// The server kept answering `ServerBusy`.
    Busy,
    /// The server kept answering `DeadlineExceeded`.
    DeadlineExceeded,
    /// The server answered `EngineFailed` — not retryable (the same input
    /// will fail the same way).
    EngineFailed,
    /// The server answered `ShuttingDown` — not retryable here (a fleet
    /// client would re-resolve and try another backend).
    ShuttingDown,
    /// The response could not be decoded or answered the wrong id.
    Protocol(&'static str),
}

impl std::fmt::Display for AttemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptError::Io(e) => write!(f, "i/o: {e}"),
            AttemptError::Busy => write!(f, "server busy"),
            AttemptError::DeadlineExceeded => write!(f, "deadline exceeded"),
            AttemptError::EngineFailed => write!(f, "engine failed"),
            AttemptError::ShuttingDown => write!(f, "server shutting down"),
            AttemptError::Protocol(what) => write!(f, "protocol: {what}"),
        }
    }
}

/// Why [`ResilientClient::query`] gave up.
#[derive(Debug)]
pub struct QueryError {
    /// The final attempt's failure.
    pub last: AttemptError,
    /// Attempt accounting up to the give-up.
    pub log: AttemptLog,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gave up after {} attempts: {}",
            self.log.attempts, self.last
        )
    }
}

impl std::error::Error for QueryError {}

/// A deadline-aware, reconnecting client for the query plane.
///
/// Connections are lazy: nothing touches the network until the first
/// [`query`](ResilientClient::query). Not `Sync` — one client per thread,
/// like a raw `TcpStream`.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    config: ClientConfig,
    backoff: BackoffSchedule,
    conn: Option<TcpStream>,
    ever_connected: bool,
    next_seq: u64,
    nonce: u64,
}

impl ResilientClient {
    /// A client for `addr`. Does not connect yet.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        ResilientClient {
            addr,
            config,
            backoff: BackoffSchedule::new(config.backoff),
            conn: None,
            ever_connected: false,
            next_seq: 0,
            // Request ids must not collide across reconnects or with other
            // clients talking to the same server; fold the jitter seed in.
            nonce: splitmix64(config.backoff.seed ^ 0xC11E_4700_0000_0001),
        }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn ensure_connected(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
            let _ = stream.set_nodelay(true);
            // Short socket timeout so `read_frame_deadline` can observe
            // its wall-clock deadline promptly.
            stream.set_read_timeout(Some(Duration::from_millis(5)))?;
            if self.ever_connected {
                ftl_obs::global().client.reconnects.inc();
            }
            self.ever_connected = true;
            self.conn = Some(stream);
        }
        self.conn
            .as_mut()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotConnected, "no connection"))
    }

    /// One attempt: send the request, wait for *its* response until
    /// `deadline`. Any error return means the connection was dropped.
    fn attempt(
        &mut self,
        faults: &[ftl_graph::EdgeId],
        queries: &[(ftl_graph::VertexId, ftl_graph::VertexId)],
        tenant_id: u32,
        deadline: Instant,
    ) -> Result<QueryResponseFrame, AttemptError> {
        self.next_seq = self.next_seq.wrapping_add(1);
        let request = QueryRequestFrame {
            request_id: self.nonce.wrapping_add(self.next_seq),
            tenant_id,
            faults: faults.to_vec(),
            queries: queries.to_vec(),
            ttl_ms: self.config.ttl_ms,
        };
        let record = request.to_wire();
        let stream = match self.ensure_connected() {
            Ok(s) => s,
            Err(e) => return Err(AttemptError::Io(e)),
        };
        if let Err(e) = write_frame(stream, &record) {
            self.conn = None;
            return Err(AttemptError::Io(e));
        }
        let body = match read_frame_deadline(stream, MAX_FRAME_BYTES_DEFAULT, deadline) {
            Ok(body) => body,
            Err(FrameError::TimedOut) => {
                self.conn = None;
                return Err(AttemptError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request timed out",
                )));
            }
            Err(e) => {
                self.conn = None;
                return Err(AttemptError::Io(std::io::Error::other(format!(
                    "read: {e}"
                ))));
            }
        };
        let resp = match QueryResponseFrame::from_wire(&body) {
            Ok(resp) => resp,
            Err(_) => {
                self.conn = None;
                return Err(AttemptError::Protocol("undecodable response"));
            }
        };
        if resp.request_id != request.request_id {
            // A late answer to an attempt this client already abandoned:
            // the stream's framing is fine but its *correlation* is stale.
            // Reconnect to flush it.
            self.conn = None;
            return Err(AttemptError::Protocol("response for a different request"));
        }
        Ok(resp)
    }

    /// Asks one connectivity request and retries it to completion:
    /// reconnecting through I/O errors, backing off through `ServerBusy`
    /// and `DeadlineExceeded`, and giving up (typed) after
    /// [`ClientConfig::max_attempts`].
    pub fn query(
        &mut self,
        tenant_id: u32,
        faults: &[ftl_graph::EdgeId],
        queries: &[(ftl_graph::VertexId, ftl_graph::VertexId)],
    ) -> Result<QueryReply, QueryError> {
        self.query_before(tenant_id, faults, queries, None)
    }

    /// [`query`](ResilientClient::query) with an additional wall-clock
    /// bound: no attempt reads past `give_up`, and no backoff sleep
    /// starts once it has passed — the loadgen's global run deadline
    /// plumbs through here so a stalled server can never hang a run.
    pub fn query_before(
        &mut self,
        tenant_id: u32,
        faults: &[ftl_graph::EdgeId],
        queries: &[(ftl_graph::VertexId, ftl_graph::VertexId)],
        give_up: Option<Instant>,
    ) -> Result<QueryReply, QueryError> {
        let mut log = AttemptLog::default();
        let max_attempts = self.config.max_attempts.max(1);
        loop {
            log.attempts += 1;
            if self.ever_connected && self.conn.is_none() {
                // This attempt will have to re-establish the connection a
                // previous attempt burned.
                log.reconnects += 1;
            }
            let mut deadline = Instant::now() + self.config.request_timeout;
            if let Some(hard) = give_up {
                deadline = deadline.min(hard);
            }
            let outcome = self.attempt(faults, queries, tenant_id, deadline);
            let last = match outcome {
                Ok(QueryResponseFrame {
                    epoch,
                    status: ResponseStatus::Ok(answers),
                    ..
                }) => {
                    return Ok(QueryReply {
                        answers,
                        epoch,
                        log,
                    });
                }
                Ok(QueryResponseFrame {
                    status: ResponseStatus::ServerBusy { .. },
                    ..
                }) => {
                    log.busy += 1;
                    AttemptError::Busy
                }
                Ok(QueryResponseFrame {
                    status: ResponseStatus::DeadlineExceeded,
                    ..
                }) => {
                    log.deadline_exceeded += 1;
                    ftl_obs::global().client.deadline_exceeded.inc();
                    AttemptError::DeadlineExceeded
                }
                Ok(QueryResponseFrame {
                    status: ResponseStatus::EngineFailed,
                    ..
                }) => {
                    ftl_obs::global().client.giveups.inc();
                    return Err(QueryError {
                        last: AttemptError::EngineFailed,
                        log,
                    });
                }
                Ok(QueryResponseFrame {
                    status: ResponseStatus::ShuttingDown,
                    ..
                }) => {
                    ftl_obs::global().client.giveups.inc();
                    return Err(QueryError {
                        last: AttemptError::ShuttingDown,
                        log,
                    });
                }
                Err(e) => {
                    log.io += 1;
                    e
                }
            };
            if log.attempts >= max_attempts {
                ftl_obs::global().client.giveups.inc();
                return Err(QueryError { last, log });
            }
            if give_up.is_some_and(|hard| Instant::now() >= hard) {
                // The caller's hard bound passed mid-request: stop here
                // rather than burn more attempts nobody is waiting for.
                ftl_obs::global().client.giveups.inc();
                return Err(QueryError { last, log });
            }
            ftl_obs::global().client.retries.inc();
            ftl_obs::global().client.backoffs.inc();
            std::thread::sleep(self.backoff.delay(log.attempts - 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_schedule_doubles_then_caps() {
        let s = BackoffSchedule::new(BackoffConfig {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            seed: 7,
        });
        assert_eq!(s.nominal(0), Duration::from_millis(1));
        assert_eq!(s.nominal(1), Duration::from_millis(2));
        assert_eq!(s.nominal(3), Duration::from_millis(8));
        assert_eq!(s.nominal(4), Duration::from_millis(10));
        assert_eq!(s.nominal(63), Duration::from_millis(10));
        assert_eq!(s.nominal(u32::MAX), Duration::from_millis(10));
    }

    #[test]
    fn jitter_stays_inside_the_half_open_band() {
        let s = BackoffSchedule::new(BackoffConfig {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(100),
            seed: 42,
        });
        for attempt in 0..32 {
            let d = s.delay(attempt);
            let nominal = s.nominal(attempt);
            assert!(d >= nominal / 2, "attempt {attempt}: {d:?} < half nominal");
            assert!(d <= nominal, "attempt {attempt}: {d:?} > nominal");
        }
    }

    #[test]
    fn same_seed_same_delays_different_seed_diverges() {
        let mk = |seed| {
            BackoffSchedule::new(BackoffConfig {
                base: Duration::from_micros(100),
                cap: Duration::from_millis(100),
                seed,
            })
        };
        let (a, b, c) = (mk(9), mk(9), mk(10));
        let delays = |s: &BackoffSchedule| (0..16).map(|n| s.delay(n)).collect::<Vec<_>>();
        assert_eq!(delays(&a), delays(&b));
        assert_ne!(delays(&a), delays(&c));
    }

    #[test]
    fn attempt_log_starts_empty() {
        assert_eq!(AttemptLog::default().attempts, 0);
    }
}
