//! The serving envelope: length-prefixed wire records on a TCP stream.
//!
//! Byte layout of one message (full spec in `docs/serving.md`):
//!
//! ```text
//! byte 0..4   frame length N in bytes, u32 little-endian
//! byte 4..4+N one ftl wire record (see ftl_labels::wire):
//!             magic 0xF7 0x4C · version · kind 0x40/0x41 · bit length ·
//!             bit-packed payload
//! ```
//!
//! Reusing the wire record as the frame body means the envelope inherits
//! the label format's guarantees for free: versioning (a future protocol
//! bump is a `WIRE_VERSION` bump), magic/kind checks, exact bit-length
//! accounting, and zero-padding enforcement. A corrupted frame decodes to
//! a typed [`WireError`] — never a panic, never a silent misparse.
//!
//! Reads are *interruptible*: [`read_frame`] tolerates read timeouts
//! (polling the caller's stop flag between attempts) and keeps partial
//! fills, so a socket configured with a short read timeout can observe
//! server shutdown without ever desynchronizing mid-frame.

use ftl_graph::{EdgeId, VertexId};
use ftl_labels::wire::{LabelKind, WireError, WireLabel, WireReader, WireWriter};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};

/// Default ceiling on a single frame's byte length. A request of
/// [`MAX_FAULTS_PER_REQUEST`] faults and [`MAX_QUERIES_PER_REQUEST`]
/// queries fits comfortably; anything larger is a protocol violation (or
/// an attack) and closes the connection before any allocation happens.
pub const MAX_FRAME_BYTES_DEFAULT: usize = 1 << 20;

/// Most faults one request may name.
pub const MAX_FAULTS_PER_REQUEST: usize = 4096;

/// Most queries one request may carry.
pub const MAX_QUERIES_PER_REQUEST: usize = u16::MAX as usize;

/// Why a frame could not be read or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the stream cleanly (EOF at a frame boundary).
    Closed,
    /// The caller's stop flag was raised while waiting for bytes.
    Stopped,
    /// The caller's deadline passed while waiting for bytes
    /// ([`read_frame_deadline`]). The stream may hold a partial frame and
    /// must not be reused for framing.
    TimedOut,
    /// The stream ended mid-frame.
    Truncated,
    /// The declared frame length exceeds the configured ceiling.
    Oversized {
        /// Declared length.
        len: u32,
        /// Configured ceiling.
        max: u32,
    },
    /// A socket error other than a timeout.
    Io(ErrorKind),
    /// The frame body is not a valid wire record of the expected kind.
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the stream"),
            FrameError::Stopped => write!(f, "stopped while waiting for a frame"),
            FrameError::TimedOut => write!(f, "deadline passed while waiting for a frame"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "declared frame length {len} exceeds the ceiling {max}")
            }
            FrameError::Io(kind) => write!(f, "socket error: {kind:?}"),
            FrameError::Wire(e) => write!(f, "bad frame body: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, record: &[u8]) -> std::io::Result<()> {
    w.write_all(&(record.len() as u32).to_le_bytes())?;
    w.write_all(record)?;
    w.flush()
}

/// Reads one length-prefixed frame body (the wire record bytes).
///
/// Timeouts (`WouldBlock` / `TimedOut`) are retried after checking
/// `stop`; partial fills are kept across retries, so a frame split over
/// many reads still assembles correctly. EOF exactly at a frame boundary
/// is a clean [`FrameError::Closed`]; EOF anywhere inside a frame is
/// [`FrameError::Truncated`].
pub fn read_frame(
    r: &mut impl Read,
    max_bytes: usize,
    stop: &AtomicBool,
) -> Result<Vec<u8>, FrameError> {
    read_frame_with(r, max_bytes, &mut || {
        stop.load(Ordering::Relaxed).then_some(FrameError::Stopped)
    })
}

/// Reads one frame like [`read_frame`], but gives up at a wall-clock
/// `deadline` instead of on a stop flag — the client-side shape of a
/// per-request timeout. The socket still needs a short read timeout for
/// the deadline to be observed promptly.
///
/// A [`FrameError::TimedOut`] return means the stream may hold a partial
/// frame: the caller must drop the connection, not retry the read.
pub fn read_frame_deadline(
    r: &mut impl Read,
    max_bytes: usize,
    deadline: std::time::Instant,
) -> Result<Vec<u8>, FrameError> {
    read_frame_with(r, max_bytes, &mut || {
        (std::time::Instant::now() >= deadline).then_some(FrameError::TimedOut)
    })
}

fn read_frame_with(
    r: &mut impl Read,
    max_bytes: usize,
    give_up: &mut impl FnMut() -> Option<FrameError>,
) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    read_full(r, &mut len_buf, give_up, true)?;
    let len = u32::from_le_bytes(len_buf);
    if len as usize > max_bytes {
        return Err(FrameError::Oversized {
            len,
            max: max_bytes as u32,
        });
    }
    let mut body = vec![0u8; len as usize];
    read_full(r, &mut body, give_up, false)?;
    Ok(body)
}

/// Fills `buf` completely, retrying through timeouts. `at_boundary` marks
/// whether EOF before the first byte is a clean close.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    give_up: &mut impl FnMut() -> Option<FrameError>,
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        if let Some(e) = give_up() {
            return Err(e);
        }
        let Some(rest) = buf.get_mut(filled..) else {
            return Err(FrameError::Io(ErrorKind::InvalidInput));
        };
        match r.read(rest) {
            Ok(0) if filled == 0 && at_boundary => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(())
}

/// One connectivity request: a fault set and a list of `(s, t)` queries,
/// answered together under `G \ F`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryRequestFrame {
    /// Client-chosen id echoed verbatim in the response; the demux key
    /// when responses come back out of submission order.
    pub request_id: u64,
    /// Accounting principal for per-tenant stats.
    pub tenant_id: u32,
    /// The fault set `F`, as edge ids (may be empty: fault-free
    /// connectivity).
    pub faults: Vec<EdgeId>,
    /// Connectivity queries `(s, t)` under `G \ F`. Must be non-empty on
    /// the wire: the decoder rejects zero-query requests as malformed, so
    /// admission control always has something to charge.
    pub queries: Vec<(VertexId, VertexId)>,
    /// Time-to-live in milliseconds, measured from the server decoding the
    /// frame. `0` means "no deadline" and encodes exactly as the original
    /// envelope (no trailing extension), so old decoders keep working; a
    /// non-zero TTL rides in a versioned trailing extension (see
    /// `docs/serving.md`). A request still queued when its TTL expires is
    /// answered with [`ResponseStatus::DeadlineExceeded`] instead of
    /// burning an elimination.
    pub ttl_ms: u32,
}

/// The envelope-extension version byte introducing the TTL field. The
/// base request payload is unversioned (it predates extensions); any
/// trailing bytes must start with a known extension version.
const REQUEST_EXT_TTL: u64 = 2;

impl WireLabel for QueryRequestFrame {
    const KIND: LabelKind = LabelKind::QueryRequest;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_word(self.request_id, 64);
        w.write_word(self.tenant_id as u64, 32);
        w.write_word(self.faults.len() as u64, 32);
        for e in &self.faults {
            w.write_word(e.index() as u64, 32);
        }
        w.write_word(self.queries.len() as u64, 32);
        for (s, t) in &self.queries {
            w.write_word(s.index() as u64, 32);
            w.write_word(t.index() as u64, 32);
        }
        // TTL rides in a trailing extension only when set: the common
        // no-deadline encoding stays bit-identical to the v1 envelope.
        if self.ttl_ms != 0 {
            w.write_word(REQUEST_EXT_TTL, 8);
            w.write_word(self.ttl_ms as u64, 32);
        }
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        let request_id = r.read_word(64)?;
        let tenant_id = r.read_word(32)? as u32;
        let num_faults = r.read_word(32)? as usize;
        if num_faults > MAX_FAULTS_PER_REQUEST {
            return Err(WireError::Malformed("fault count over limit"));
        }
        if num_faults * 32 > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut faults = Vec::with_capacity(num_faults);
        for _ in 0..num_faults {
            faults.push(EdgeId::new(r.read_word(32)? as usize));
        }
        let num_queries = r.read_word(32)? as usize;
        if num_queries == 0 {
            // A request that asks nothing has no well-defined response and
            // would otherwise ride through admission control for free
            // while still carrying up to MAX_FAULTS_PER_REQUEST faults
            // (a full elimination's worth of work): malformed.
            return Err(WireError::Malformed("request carries no queries"));
        }
        if num_queries > MAX_QUERIES_PER_REQUEST {
            return Err(WireError::Malformed("query count over limit"));
        }
        if num_queries * 64 > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let s = VertexId::new(r.read_word(32)? as usize);
            let t = VertexId::new(r.read_word(32)? as usize);
            queries.push((s, t));
        }
        // Version-compat: a v1 encoder stops here (remaining() == 0 —
        // the wire header's exact bit length makes this check sound). A
        // TTL-aware encoder appends the extension-version byte and the
        // TTL; anything else trailing is a framing error, not padding.
        let ttl_ms = if r.remaining() == 0 {
            0
        } else {
            match r.read_word(8)? {
                REQUEST_EXT_TTL => r.read_word(32)? as u32,
                _ => return Err(WireError::Malformed("unknown request envelope extension")),
            }
        };
        Ok(QueryRequestFrame {
            request_id,
            tenant_id,
            faults,
            queries,
            ttl_ms,
        })
    }
}

/// The outcome carried by a [`QueryResponseFrame`]. Status codes on the
/// wire: 0 = Ok, 1 = ServerBusy, 2 = EngineFailed, 3 = ShuttingDown,
/// 4 = DeadlineExceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseStatus {
    /// All queries answered; one connectivity bit per query, in request
    /// order.
    Ok(Vec<bool>),
    /// Admission control rejected the request: the pending-query budget
    /// was full. Retry after a backoff; nothing was executed.
    ServerBusy {
        /// Queries already pending when the request arrived.
        pending: u32,
        /// The configured budget.
        budget: u32,
    },
    /// The engine could not serve the request's group (bad fault set or a
    /// contained worker panic). Nothing partial is returned.
    EngineFailed,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The request's TTL expired before execution (either caught at the
    /// window boundary or force-released by the batcher watchdog). No
    /// elimination was spent; the caller may retry with a fresh deadline.
    DeadlineExceeded,
}

/// One response, demuxed back to its connection by `request_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponseFrame {
    /// Echo of the request's id.
    pub request_id: u64,
    /// The epoch the answering batch pinned (0 for rejects, which never
    /// reach an engine).
    pub epoch: u64,
    /// The outcome.
    pub status: ResponseStatus,
}

impl WireLabel for QueryResponseFrame {
    const KIND: LabelKind = LabelKind::QueryResponse;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_word(self.request_id, 64);
        w.write_word(self.epoch, 64);
        match &self.status {
            ResponseStatus::Ok(answers) => {
                w.write_word(0, 8);
                w.write_word(answers.len() as u64, 32);
                for &a in answers {
                    w.write_bit(a);
                }
            }
            ResponseStatus::ServerBusy { pending, budget } => {
                w.write_word(1, 8);
                w.write_word(*pending as u64, 32);
                w.write_word(*budget as u64, 32);
            }
            ResponseStatus::EngineFailed => w.write_word(2, 8),
            ResponseStatus::ShuttingDown => w.write_word(3, 8),
            ResponseStatus::DeadlineExceeded => w.write_word(4, 8),
        }
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        let request_id = r.read_word(64)?;
        let epoch = r.read_word(64)?;
        let status = match r.read_word(8)? {
            0 => {
                let n = r.read_word(32)? as usize;
                if n > MAX_QUERIES_PER_REQUEST {
                    return Err(WireError::Malformed("answer count over limit"));
                }
                if n > r.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut answers = Vec::with_capacity(n);
                for _ in 0..n {
                    answers.push(r.read_bit()?);
                }
                ResponseStatus::Ok(answers)
            }
            1 => ResponseStatus::ServerBusy {
                pending: r.read_word(32)? as u32,
                budget: r.read_word(32)? as u32,
            },
            2 => ResponseStatus::EngineFailed,
            3 => ResponseStatus::ShuttingDown,
            4 => ResponseStatus::DeadlineExceeded,
            _ => return Err(WireError::Malformed("unknown response status")),
        };
        Ok(QueryResponseFrame {
            request_id,
            epoch,
            status,
        })
    }
}

/// Most bytes a metrics exposition may carry on the wire. Generously
/// above any real catalog (a full scrape is a few KiB) yet within the
/// default frame ceiling, so a scrape never needs a bespoke
/// `max_frame_bytes`.
pub const MAX_METRICS_BYTES: usize = 1 << 19;

/// An admin-plane metrics scrape (kind `0x50`). Carries only a
/// correlation id: the server answers with its full text exposition,
/// bypassing admission control and the batching pipeline entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRequestFrame {
    /// Client-chosen id echoed verbatim in the response.
    pub request_id: u64,
}

impl WireLabel for MetricsRequestFrame {
    const KIND: LabelKind = LabelKind::MetricsRequest;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_word(self.request_id, 64);
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(MetricsRequestFrame {
            request_id: r.read_word(64)?,
        })
    }
}

/// The scrape answer (kind `0x51`): a Prometheus-style text exposition
/// (see `docs/observability.md` for the series catalog).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsResponseFrame {
    /// Echo of the request's id.
    pub request_id: u64,
    /// The exposition text (UTF-8; in practice ASCII).
    pub text: String,
}

impl WireLabel for MetricsResponseFrame {
    const KIND: LabelKind = LabelKind::MetricsResponse;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_word(self.request_id, 64);
        let bytes = self.text.as_bytes();
        w.write_word(bytes.len().min(MAX_METRICS_BYTES) as u64, 32);
        for &b in bytes.iter().take(MAX_METRICS_BYTES) {
            w.write_word(b as u64, 8);
        }
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        let request_id = r.read_word(64)?;
        let len = r.read_word(32)? as usize;
        if len > MAX_METRICS_BYTES {
            return Err(WireError::Malformed("metrics text over limit"));
        }
        if len * 8 > r.remaining() {
            return Err(WireError::Truncated);
        }
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push(r.read_word(8)? as u8);
        }
        let text = String::from_utf8(bytes)
            .map_err(|_| WireError::Malformed("metrics text is not UTF-8"))?;
        Ok(MetricsResponseFrame { request_id, text })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn req() -> QueryRequestFrame {
        QueryRequestFrame {
            request_id: 42,
            tenant_id: 7,
            faults: vec![EdgeId::new(3), EdgeId::new(11)],
            queries: vec![
                (VertexId::new(0), VertexId::new(9)),
                (VertexId::new(4), VertexId::new(4)),
            ],
            ttl_ms: 0,
        }
    }

    /// Encodes `r`'s payload exactly as a v1 (pre-TTL) encoder did:
    /// no trailing extension, whatever `ttl_ms` says.
    fn encode_v1(r: &QueryRequestFrame) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.write_word(r.request_id, 64);
        w.write_word(r.tenant_id as u64, 32);
        w.write_word(r.faults.len() as u64, 32);
        for e in &r.faults {
            w.write_word(e.index() as u64, 32);
        }
        w.write_word(r.queries.len() as u64, 32);
        for (s, t) in &r.queries {
            w.write_word(s.index() as u64, 32);
            w.write_word(t.index() as u64, 32);
        }
        w.finish(LabelKind::QueryRequest)
    }

    #[test]
    fn request_roundtrip() {
        let r = req();
        assert_eq!(QueryRequestFrame::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn ttl_roundtrips_and_zero_ttl_stays_v1_compatible() {
        let with_ttl = QueryRequestFrame {
            ttl_ms: 1500,
            ..req()
        };
        assert_eq!(
            QueryRequestFrame::from_wire(&with_ttl.to_wire()).unwrap(),
            with_ttl
        );
        // ttl_ms == 0 encodes bit-identically to a v1 encoder: an old
        // decoder never sees the extension unless a deadline is set.
        assert_eq!(req().to_wire(), encode_v1(&req()));
    }

    #[test]
    fn v1_encoding_decodes_with_no_deadline() {
        // The version-compat path: frames from encoders that predate the
        // TTL extension decode as ttl_ms = 0 ("no deadline").
        let decoded = QueryRequestFrame::from_wire(&encode_v1(&req())).unwrap();
        assert_eq!(decoded, req());
        assert_eq!(decoded.ttl_ms, 0);
    }

    #[test]
    fn unknown_envelope_extension_rejected() {
        // Trailing bytes that don't start with a known extension version
        // are a framing error, not ignorable padding: silently skipping
        // them would let a desynced stream masquerade as valid requests.
        let mut w = WireWriter::new();
        let r = req();
        w.write_word(r.request_id, 64);
        w.write_word(r.tenant_id as u64, 32);
        w.write_word(r.faults.len() as u64, 32);
        for e in &r.faults {
            w.write_word(e.index() as u64, 32);
        }
        w.write_word(r.queries.len() as u64, 32);
        for (s, t) in &r.queries {
            w.write_word(s.index() as u64, 32);
            w.write_word(t.index() as u64, 32);
        }
        w.write_word(9, 8); // not a known extension version
        w.write_word(1500, 32);
        assert_eq!(
            QueryRequestFrame::from_wire(&w.finish(LabelKind::QueryRequest)),
            Err(WireError::Malformed("unknown request envelope extension"))
        );
    }

    #[test]
    fn response_roundtrips_all_statuses() {
        for status in [
            ResponseStatus::Ok(vec![true, false, true]),
            ResponseStatus::Ok(Vec::new()),
            ResponseStatus::ServerBusy {
                pending: 100,
                budget: 64,
            },
            ResponseStatus::EngineFailed,
            ResponseStatus::ShuttingDown,
            ResponseStatus::DeadlineExceeded,
        ] {
            let f = QueryResponseFrame {
                request_id: 9,
                epoch: 3,
                status,
            };
            assert_eq!(QueryResponseFrame::from_wire(&f.to_wire()).unwrap(), f);
        }
    }

    #[test]
    fn oversized_counts_rejected_without_allocation() {
        // A request whose header claims 2^31 faults in an 8-byte payload
        // must fail on the count check, not attempt the allocation.
        let mut w = WireWriter::new();
        w.write_word(1, 64);
        w.write_word(0, 32);
        w.write_word(1 << 31, 32);
        let bytes = w.finish(LabelKind::QueryRequest);
        assert_eq!(
            QueryRequestFrame::from_wire(&bytes),
            Err(WireError::Malformed("fault count over limit"))
        );
    }

    #[test]
    fn zero_query_request_rejected_as_malformed() {
        // Zero queries would be admitted for free (nothing to charge the
        // pending budget) while still costing an elimination per distinct
        // fault set — the decoder refuses the shape outright.
        let zero = QueryRequestFrame {
            request_id: 1,
            tenant_id: 0,
            faults: vec![EdgeId::new(2)],
            queries: Vec::new(),
            ttl_ms: 0,
        };
        assert_eq!(
            QueryRequestFrame::from_wire(&zero.to_wire()),
            Err(WireError::Malformed("request carries no queries"))
        );
    }

    #[test]
    fn metrics_frames_roundtrip() {
        let req = MetricsRequestFrame { request_id: 77 };
        assert_eq!(MetricsRequestFrame::from_wire(&req.to_wire()).unwrap(), req);
        let resp = MetricsResponseFrame {
            request_id: 77,
            text: "# TYPE ftl_stage_ns summary\nftl_stage_ns_count{stage=\"answer\"} 3\n"
                .to_string(),
        };
        assert_eq!(
            MetricsResponseFrame::from_wire(&resp.to_wire()).unwrap(),
            resp
        );
        // Kinds are distinct: a response never decodes as a request.
        assert!(matches!(
            MetricsRequestFrame::from_wire(&resp.to_wire()),
            Err(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn oversized_metrics_text_rejected_on_decode() {
        // A lying length over the cap fails before any allocation.
        let mut w = WireWriter::new();
        w.write_word(1, 64);
        w.write_word((MAX_METRICS_BYTES + 1) as u64, 32);
        let bytes = w.finish(LabelKind::MetricsResponse);
        assert_eq!(
            MetricsResponseFrame::from_wire(&bytes),
            Err(WireError::Malformed("metrics text over limit"))
        );
    }

    #[test]
    fn framed_write_read_roundtrip() {
        let record = req().to_wire();
        let mut buf = Vec::new();
        write_frame(&mut buf, &record).unwrap();
        let stop = AtomicBool::new(false);
        let mut cur = Cursor::new(buf);
        let body = read_frame(&mut cur, MAX_FRAME_BYTES_DEFAULT, &stop).unwrap();
        assert_eq!(body, record);
        // The next read sees EOF at a boundary: a clean close.
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_BYTES_DEFAULT, &stop),
            Err(FrameError::Closed)
        );
    }

    #[test]
    fn oversized_frame_rejected_before_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let stop = AtomicBool::new(false);
        assert_eq!(
            read_frame(&mut Cursor::new(buf), 1024, &stop),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: 1024,
            })
        );
    }

    #[test]
    fn truncated_frame_detected() {
        let record = req().to_wire();
        let mut buf = Vec::new();
        write_frame(&mut buf, &record).unwrap();
        buf.truncate(buf.len() - 3);
        let stop = AtomicBool::new(false);
        assert_eq!(
            read_frame(&mut Cursor::new(buf), MAX_FRAME_BYTES_DEFAULT, &stop),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn stop_flag_interrupts_a_blocked_read() {
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(ErrorKind::WouldBlock))
            }
        }
        let stop = AtomicBool::new(true);
        assert_eq!(
            read_frame(&mut AlwaysTimeout, 1024, &stop),
            Err(FrameError::Stopped)
        );
    }
}
