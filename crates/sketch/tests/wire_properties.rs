//! Property tests: wire round-trip (`encode → decode ≡ original`) for the
//! sketch label types, over arbitrary identifier fields and over
//! scheme-generated labels (which exercise the subtree-sketch payload).

use ftl_gf2::BitVec;
use ftl_labels::{AncestryLabel, WireLabel};
use ftl_seeded::{EdgeUid, Seed};
use ftl_sketch::{Eid, SketchEdgeLabel, SketchParams, SketchScheme, SketchVertexLabel};
use proptest::prelude::*;

fn arb_eid(uid: u64, ids: [u32; 2], anc: [u32; 4], ports: [u32; 2], aux: &[bool]) -> Eid {
    let (lo, hi) = (ids[0].min(ids[1]), ids[0].max(ids[1]));
    Eid {
        uid: EdgeUid(uid),
        lo,
        hi,
        anc_lo: AncestryLabel {
            pre: anc[0],
            post: anc[1],
        },
        anc_hi: AncestryLabel {
            pre: anc[2],
            post: anc[3],
        },
        port_lo: ports[0],
        port_hi: ports[1],
        aux_lo: BitVec::from_bits(aux),
        aux_hi: BitVec::from_bits(&aux.iter().map(|b| !b).collect::<Vec<_>>()),
    }
}

proptest! {
    #[test]
    fn vertex_label_roundtrip(
        id in any::<u32>(),
        pre in any::<u32>(),
        post in any::<u32>(),
        aux in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let l = SketchVertexLabel {
            id,
            anc: AncestryLabel { pre, post },
            aux: BitVec::from_bits(&aux),
        };
        prop_assert_eq!(SketchVertexLabel::from_wire(&l.to_wire()).unwrap(), l);
    }

    /// Non-tree edge labels (a bare extended identifier) round-trip for
    /// arbitrary field values and aux widths.
    #[test]
    fn non_tree_edge_label_roundtrip(
        uid in any::<u64>(),
        ids in proptest::collection::vec(any::<u32>(), 2..3),
        anc in proptest::collection::vec(any::<u32>(), 4..5),
        ports in proptest::collection::vec(any::<u32>(), 2..3),
        aux in proptest::collection::vec(any::<bool>(), 0..30),
    ) {
        let l = SketchEdgeLabel {
            eid: arb_eid(uid, [ids[0], ids[1]], [anc[0], anc[1], anc[2], anc[3]],
                         [ports[0], ports[1]], &aux),
            tree: None,
        };
        let back = SketchEdgeLabel::from_wire(&l.to_wire()).unwrap();
        prop_assert_eq!(back, l);
    }

    /// Scheme-generated labels — including tree edges carrying a full
    /// subtree sketch and both seeds — round-trip for arbitrary seeds and
    /// unit counts.
    #[test]
    fn scheme_edge_labels_roundtrip(seed in any::<u64>(), units in 1usize..10) {
        let g = ftl_graph::generators::grid(2, 3);
        let params = SketchParams::for_graph(&g).with_units(units);
        let scheme = SketchScheme::label(&g, &params, Seed::new(seed)).unwrap();
        for e in 0..g.num_edges() {
            let l = scheme.edge_label(ftl_graph::EdgeId::new(e));
            prop_assert_eq!(SketchEdgeLabel::from_wire(&l.to_wire()).unwrap(), l);
        }
    }

    /// Single-bit header corruption is always rejected.
    #[test]
    fn corrupted_header_rejected(seed in any::<u64>(), bit in 0usize..64) {
        let g = ftl_graph::generators::path(3);
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(seed)).unwrap();
        let mut bytes = scheme.edge_label(ftl_graph::EdgeId::new(0)).to_wire();
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(SketchEdgeLabel::from_wire(&bytes).is_err());
    }

    /// Truncating a scheme-generated edge or vertex label anywhere makes
    /// decoding fail.
    #[test]
    fn truncation_always_rejected(seed in any::<u64>(), cut in 0usize..256) {
        let g = ftl_graph::generators::grid(2, 3);
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(seed)).unwrap();
        let eb = scheme.edge_label(ftl_graph::EdgeId::new(0)).to_wire();
        prop_assert!(SketchEdgeLabel::from_wire(&eb[..cut.min(eb.len() - 1)]).is_err());
        let vb = scheme.vertex_label(ftl_graph::VertexId::new(0)).to_wire();
        prop_assert!(SketchVertexLabel::from_wire(&vb[..cut.min(vb.len() - 1)]).is_err());
    }

    /// An inflated declared payload bit-length is rejected with an error,
    /// never a panic or out-of-bounds read.
    #[test]
    fn oversized_declared_bits_rejected(seed in any::<u64>(), extra in 1u32..100_000) {
        let g = ftl_graph::generators::grid(2, 3);
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(seed)).unwrap();
        let mut bytes = scheme.edge_label(ftl_graph::EdgeId::new(0)).to_wire();
        let declared = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        bytes[4..8].copy_from_slice(&declared.saturating_add(extra).to_le_bytes());
        prop_assert!(SketchEdgeLabel::from_wire(&bytes).is_err());
    }

    /// Arbitrary multi-byte corruption never panics on either label kind —
    /// tree edges (with their subtree-sketch payload) included.
    #[test]
    fn random_corruption_never_panics(
        seed in any::<u64>(),
        hits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..16),
    ) {
        let g = ftl_graph::generators::grid(2, 3);
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(seed)).unwrap();
        for e in 0..g.num_edges() {
            let mut bytes = scheme.edge_label(ftl_graph::EdgeId::new(e)).to_wire();
            for &(pos, val) in &hits {
                let i = pos as usize % bytes.len();
                bytes[i] = val;
            }
            let _ = SketchEdgeLabel::from_wire(&bytes);
        }
        let mut vb = scheme.vertex_label(ftl_graph::VertexId::new(0)).to_wire();
        for &(pos, val) in &hits {
            let i = pos as usize % vb.len();
            vb[i] = val;
        }
        let _ = SketchVertexLabel::from_wire(&vb);
    }
}
