//! Property-based tests: the sketch FT connectivity scheme against ground
//! truth, plus Lemma 3.17 path validity.

use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{EdgeId, Graph, GraphBuilder, SpanningTree, VertexId};
use ftl_seeded::Seed;
use ftl_sketch::{decode, PathSegment, SketchParams, SketchScheme};
use proptest::prelude::*;

fn scenario() -> impl Strategy<Value = (Graph, Vec<EdgeId>, VertexId, VertexId, u64)> {
    (
        2usize..20,
        proptest::collection::vec((0usize..20, 0usize..20), 0..24),
        proptest::collection::vec(0usize..500, 0..6),
        0usize..20,
        0usize..20,
        any::<u64>(),
    )
        .prop_map(|(n, extra, fpicks, s, t, seed)| {
            let mut b = GraphBuilder::new(n);
            for i in 1..n {
                b.add_unit_edge(i / 2, i);
            }
            for (u, v) in extra {
                if u % n != v % n {
                    b.add_unit_edge(u % n, v % n);
                }
            }
            let g = b.build();
            let mut faults: Vec<EdgeId> = Vec::new();
            for p in fpicks {
                let e = EdgeId::new(p % g.num_edges());
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            (g, faults, VertexId::new(s % n), VertexId::new(t % n), seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Decode matches ground-truth connectivity.
    #[test]
    fn decode_matches_ground_truth((g, faults, s, t, seed) in scenario()) {
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(seed)).unwrap();
        let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let mask = forbidden_mask(&g, &faults);
        let truth = connected_avoiding(&g, s, t, &mask);
        let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
        prop_assert_eq!(out.connected, truth);
        prop_assert_eq!(out.path.is_some(), truth);
    }

    /// Lemma 3.17: returned paths are structurally valid — continuous from
    /// s to t, recovery edges real and non-faulty, tree segments intact,
    /// at most O(f) recovery edges.
    #[test]
    fn succinct_paths_are_valid((g, faults, s, t, seed) in scenario()) {
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(seed)).unwrap();
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let mask = forbidden_mask(&g, &faults);
        let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
        let Some(path) = out.path else { return Ok(()); };
        prop_assert!(path.num_recovery_edges() <= faults.len() + 1);
        let mut cur = s;
        for seg in &path.segments {
            match seg {
                PathSegment::TreePath { from, to } => {
                    prop_assert_eq!(from.id, cur.raw());
                    let from_v = VertexId::from_raw(from.id);
                    let to_v = VertexId::from_raw(to.id);
                    for e in tree.tree_path(from_v, to_v) {
                        prop_assert!(!mask[e.index()], "faulty tree segment");
                    }
                    cur = to_v;
                }
                PathSegment::RecoveryEdge { eid, from, to } => {
                    prop_assert_eq!(from.id, cur.raw());
                    let u = VertexId::from_raw(eid.lo);
                    let v = VertexId::from_raw(eid.hi);
                    let real = g.find_edge(u, v);
                    prop_assert!(real.is_some(), "phantom recovery edge");
                    cur = VertexId::from_raw(to.id);
                }
            }
        }
        prop_assert_eq!(cur, t);
    }

    /// Borůvka phase count stays within the unit budget (the decode reports
    /// phases used).
    #[test]
    fn phase_budget_respected((g, faults, s, t, seed) in scenario()) {
        let params = SketchParams::for_graph(&g);
        let scheme = SketchScheme::label(&g, &params, Seed::new(seed)).unwrap();
        let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
        prop_assert!(out.phases_used <= params.units);
    }

    /// Determinism: decoding twice gives identical outcomes.
    #[test]
    fn decode_deterministic((g, faults, s, t, seed) in scenario()) {
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(seed)).unwrap();
        let fl: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let a = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
        let b = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &fl);
        prop_assert_eq!(a.connected, b.connected);
        prop_assert_eq!(a.path, b.path);
    }
}
