//! Extended edge identifiers (Eq. (1), routing-augmented Eq. (5)).
//!
//! An `Eid` is the unit of information carried by sketch cells. It is
//! serialized to a fixed-width bit string so that the XOR of several
//! identifiers is well-defined field-wise; the distinguishing `UID`
//! (Lemma 3.8) lets a decoder test whether a cell's content is a *single*
//! edge identifier (Lemma 3.10).
//!
//! Layout (bit offsets within a cell of width `Eid::bits(aux_bits)`):
//!
//! | field      | bits            | content                                      |
//! |------------|-----------------|----------------------------------------------|
//! | `uid`      | 64              | PRF of the endpoint pair under `S_ID`        |
//! | `lo`, `hi` | 32 + 32         | endpoint ids, `lo <= hi`                     |
//! | `anc_lo`   | 64              | ancestry label of `lo` (packed)              |
//! | `anc_hi`   | 64              | ancestry label of `hi` (packed)              |
//! | `port_lo`  | 32              | port of the edge at `lo`                     |
//! | `port_hi`  | 32              | port of the edge at `hi`                     |
//! | `aux_lo`   | `aux_bits`      | caller payload for `lo` (tree routing label) |
//! | `aux_hi`   | `aux_bits`      | caller payload for `hi`                      |

use ftl_gf2::BitVec;
use ftl_labels::AncestryLabel;
use ftl_seeded::{EdgeUid, UidSpace};

const UID_BITS: usize = 64;
const ID_BITS: usize = 32;
const ANC_BITS: usize = 64;
const PORT_BITS: usize = 32;
/// Bits of the fixed (non-aux) part of an identifier.
pub const FIXED_BITS: usize = UID_BITS + 2 * ID_BITS + 2 * ANC_BITS + 2 * PORT_BITS;

/// An extended edge identifier `EID_T(e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eid {
    /// Distinguishing identifier `UID(e)` under `S_ID`.
    pub uid: EdgeUid,
    /// Lower endpoint id.
    pub lo: u32,
    /// Higher endpoint id.
    pub hi: u32,
    /// Ancestry label of `lo` in the spanning tree.
    pub anc_lo: AncestryLabel,
    /// Ancestry label of `hi`.
    pub anc_hi: AncestryLabel,
    /// Port number of this edge at `lo` (Eq. (5); 0 when unused).
    pub port_lo: u32,
    /// Port number of this edge at `hi`.
    pub port_hi: u32,
    /// Auxiliary per-endpoint payload for `lo` (tree-routing label bits in
    /// the routing schemes; empty otherwise).
    pub aux_lo: BitVec,
    /// Auxiliary payload for `hi`.
    pub aux_hi: BitVec,
}

impl Eid {
    /// Total serialized width for a given aux payload width.
    pub fn bits(aux_bits: usize) -> usize {
        FIXED_BITS + 2 * aux_bits
    }

    /// Serializes to the fixed-width cell representation.
    ///
    /// The fixed fields are word-aligned (see the module-level layout
    /// table), so the serializer writes five whole words instead of 320
    /// individual bits — this runs once per edge inside the labeling sweep
    /// and used to dominate it.
    pub fn to_bits(&self) -> BitVec {
        let mut v = BitVec::zeros(Eid::bits(self.aux_lo.len()));
        self.write_words(v.words_mut());
        v
    }

    /// [`Eid::to_bits`] into a caller-owned **zeroed** word slice of
    /// exactly `Eid::bits(aux_bits).div_ceil(64)` words — how the labeling
    /// sweep serializes straight into its contiguous identifier bank
    /// without a per-edge allocation.
    ///
    /// # Panics
    ///
    /// Panics if `out` is too short.
    pub fn write_words(&self, out: &mut [u64]) {
        let aux_bits = self.aux_lo.len();
        debug_assert_eq!(self.aux_hi.len(), aux_bits);
        debug_assert!(out.iter().all(|&w| w == 0), "output not zeroed");
        out[0] = self.uid.0;
        out[1] = self.lo as u64 | ((self.hi as u64) << 32);
        out[2] = self.anc_lo.pack();
        out[3] = self.anc_hi.pack();
        out[4] = self.port_lo as u64 | ((self.port_hi as u64) << 32);
        // FIXED_BITS = 320 is a word boundary; the aux payloads are the only
        // unaligned fields and go through the word-shifting OR.
        or_shifted_words(out, self.aux_lo.words(), FIXED_BITS);
        or_shifted_words(out, self.aux_hi.words(), FIXED_BITS + aux_bits);
    }

    /// Deserializes a cell; the inverse of [`Eid::to_bits`].
    ///
    /// # Panics
    ///
    /// Panics if the cell width is inconsistent with an aux payload.
    pub fn from_bits(cell: &BitVec) -> Eid {
        assert!(cell.len() >= FIXED_BITS, "cell too small for an Eid");
        let aux_bits = (cell.len() - FIXED_BITS) / 2;
        assert_eq!(FIXED_BITS + 2 * aux_bits, cell.len(), "odd aux width");
        let w = cell.words();
        Eid {
            uid: EdgeUid(w[0]),
            lo: w[1] as u32,
            hi: (w[1] >> 32) as u32,
            anc_lo: AncestryLabel::unpack(w[2]),
            anc_hi: AncestryLabel::unpack(w[3]),
            port_lo: w[4] as u32,
            port_hi: (w[4] >> 32) as u32,
            aux_lo: cell.slice(FIXED_BITS, FIXED_BITS + aux_bits),
            aux_hi: cell.slice(FIXED_BITS + aux_bits, cell.len()),
        }
    }

    /// Lemma 3.10: whether this (possibly XOR-mangled) identifier is the
    /// valid identifier of a single edge — verified by recomputing the UID of
    /// the claimed endpoint pair under `S_ID`. Parallel edges carry distinct
    /// copy discriminators, so validation scans `0..max_copies`.
    pub fn validate(&self, sid: &UidSpace, max_copies: u32) -> bool {
        self.lo <= self.hi
            && (0..max_copies.max(1)).any(|c| sid.verify(self.lo, self.hi, c, self.uid))
    }

    /// The 64-bit key used to hash this edge into sketch sampling levels.
    pub fn sampling_key(&self) -> u64 {
        self.uid.0
    }
}

/// ORs `src`'s bits into `out` starting at bit `offset` — the raw-slice
/// sibling of `BitVec::or_shifted`, for serializing into arena windows.
/// `src`'s tail bits (past its logical length) must be zero, which
/// `BitVec::words` guarantees.
fn or_shifted_words(out: &mut [u64], src: &[u64], offset: usize) {
    let base = offset / 64;
    let shift = offset % 64;
    for (i, &w) in src.iter().enumerate() {
        if shift == 0 {
            out[base + i] |= w;
        } else {
            out[base + i] |= w << shift;
            if base + i + 1 < out.len() {
                out[base + i + 1] |= w >> (64 - shift);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_seeded::Seed;

    fn sample_eid(aux_bits: usize) -> (Eid, UidSpace) {
        let sid = UidSpace::new(Seed::new(5));
        let mut aux_lo = BitVec::zeros(aux_bits);
        let mut aux_hi = BitVec::zeros(aux_bits);
        if aux_bits > 2 {
            aux_lo.set(1, true);
            aux_hi.set(2, true);
        }
        (
            Eid {
                uid: sid.uid(3, 9, 0),
                lo: 3,
                hi: 9,
                anc_lo: AncestryLabel { pre: 4, post: 11 },
                anc_hi: AncestryLabel { pre: 5, post: 6 },
                port_lo: 2,
                port_hi: 0,
                aux_lo,
                aux_hi,
            },
            sid,
        )
    }

    #[test]
    fn roundtrip_no_aux() {
        let (eid, _) = sample_eid(0);
        let bits = eid.to_bits();
        assert_eq!(bits.len(), FIXED_BITS);
        assert_eq!(Eid::from_bits(&bits), eid);
    }

    #[test]
    fn roundtrip_with_aux() {
        let (eid, _) = sample_eid(17);
        let bits = eid.to_bits();
        assert_eq!(bits.len(), FIXED_BITS + 34);
        assert_eq!(Eid::from_bits(&bits), eid);
    }

    #[test]
    fn validation_accepts_genuine() {
        let (eid, sid) = sample_eid(4);
        assert!(eid.validate(&sid, 1));
    }

    #[test]
    fn validation_rejects_xor_of_two() {
        let sid = UidSpace::new(Seed::new(5));
        let mk = |lo: u32, hi: u32| Eid {
            uid: sid.uid(lo, hi, 0),
            lo,
            hi,
            anc_lo: AncestryLabel { pre: 1, post: 2 },
            anc_hi: AncestryLabel { pre: 3, post: 4 },
            port_lo: 0,
            port_hi: 0,
            aux_lo: BitVec::zeros(0),
            aux_hi: BitVec::zeros(0),
        };
        let a = mk(1, 2).to_bits();
        let b = mk(3, 4).to_bits();
        let x = &a ^ &b;
        assert!(!Eid::from_bits(&x).validate(&sid, 1));
        // XOR of three is also invalid.
        let c = mk(5, 6).to_bits();
        let y = &x ^ &c;
        assert!(!Eid::from_bits(&y).validate(&sid, 1));
    }

    #[test]
    fn zero_cell_is_invalid() {
        let sid = UidSpace::new(Seed::new(1));
        let zero = BitVec::zeros(FIXED_BITS);
        assert!(!Eid::from_bits(&zero).validate(&sid, 1));
    }

    #[test]
    fn sampling_key_is_uid() {
        let (eid, _) = sample_eid(0);
        assert_eq!(eid.sampling_key(), eid.uid.0);
    }

    #[test]
    #[should_panic]
    fn undersized_cell_rejected() {
        Eid::from_bits(&BitVec::zeros(10));
    }
}
