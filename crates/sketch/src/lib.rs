//! FT connectivity labels via **linear graph sketches** (Section 3.2,
//! Theorem 3.7; sketches of Ahn–Guha–McGregor \[AGM12\], layout following the
//! sensitivity oracles of Duan–Pettie \[DP17\]).
//!
//! Labels have `O(log³ n)` bits *independent of the number of faults*, and —
//! crucially for routing — the decoder outputs a succinct description of an
//! actual `s`–`t` path in `G \ F` (Lemma 3.17).
//!
//! Pipeline:
//!
//! 1. every edge gets an **extended identifier** ([`Eid`], Eq. (1)/(5)) that
//!    XOR-composes field-wise and self-validates against the seed `S_ID`;
//! 2. every vertex gets a [`Sketch`]: `L` independent basic units, each with
//!    `log m` geometric sampling levels whose cells hold the XOR of sampled
//!    incident edge identifiers (Eq. (2));
//! 3. tree edges additionally store the XOR-aggregated sketch of the subtree
//!    hanging below them, so a decoder can assemble the sketch of every
//!    component of `T \ F` (Claim 3.15), cancel the faulty edges, and run
//!    Borůvka phases purely on label material (Section 3.2.2).
//!
//! The scheme assumes a connected input graph; `ftl-core` handles general
//! graphs component-wise.
//!
//! # Features
//!
//! * `parallel` (default) — build extended identifiers, per-vertex sketches,
//!   and vertex labels on all cores via [`ftl_par`]; disable
//!   (`--no-default-features`) for a strictly single-threaded build.
//!   Results are identical either way.
//!
//! # Example
//!
//! ```
//! use ftl_sketch::{SketchParams, SketchScheme};
//! use ftl_graph::{generators, EdgeId, VertexId};
//! use ftl_seeded::Seed;
//!
//! let g = generators::cycle(8);
//! let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(7)).unwrap();
//! let s = scheme.vertex_label(VertexId::new(0));
//! let t = scheme.vertex_label(VertexId::new(4));
//! let faults = [scheme.edge_label(EdgeId::new(0))];
//! let out = ftl_sketch::decode(&s, &t, &faults);
//! assert!(out.connected);
//! assert!(out.path.is_some());
//! ```
//!
//! See `README.md` at the repo root for how this scheme compares to the
//! cycle-space one, and `docs/static-analysis.md` for the determinism
//! rules (FTL004) its hashing is held to.

#![forbid(unsafe_code)]

pub mod decode;
pub mod eid;
pub mod labeling;
pub mod sketch;
pub mod wire;

pub use decode::{decode, DecodeOutcome, PathSegment, PathVertex, SuccinctPath};
pub use eid::Eid;
pub use labeling::{SketchEdgeLabel, SketchScheme, SketchVertexLabel, TreeEdgeInfo, VertexAux};
pub use sketch::{SampledLevels, Sketch, SketchParams};
