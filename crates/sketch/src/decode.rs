//! The four-step decoding algorithm (Section 3.2.2) with succinct-path
//! extraction (Lemma 3.17).

use crate::eid::Eid;
use crate::labeling::{SketchEdgeLabel, SketchVertexLabel};
use crate::sketch::Sketch;
use ftl_gf2::BitVec;
use ftl_graph::union_find::UnionFind;
use ftl_labels::{AncestryLabel, ComponentId, ComponentTree, FaultTreeEdge};
use ftl_seeded::UidSpace;

/// A vertex appearing on a succinct path: everything a router needs to know
/// about it, harvested from labels and recovered identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathVertex {
    /// Vertex id.
    pub id: u32,
    /// Ancestry label in the spanning tree.
    pub anc: AncestryLabel,
    /// Aux payload (tree routing label when the scheme carries one).
    pub aux: BitVec,
}

impl PathVertex {
    fn from_vertex_label(l: &SketchVertexLabel) -> Self {
        PathVertex {
            id: l.id,
            anc: l.anc,
            aux: l.aux.clone(),
        }
    }

    /// The `lo` endpoint of a recovered identifier.
    pub fn lo_of(eid: &Eid) -> Self {
        PathVertex {
            id: eid.lo,
            anc: eid.anc_lo,
            aux: eid.aux_lo.clone(),
        }
    }

    /// The `hi` endpoint of a recovered identifier.
    pub fn hi_of(eid: &Eid) -> Self {
        PathVertex {
            id: eid.hi,
            anc: eid.anc_hi,
            aux: eid.aux_hi.clone(),
        }
    }
}

/// One segment of the labeled path `ˆP` of Lemma 3.17.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathSegment {
    /// A 0-labeled edge: a real `G`-edge (a recovery edge found by the
    /// Borůvka simulation), crossed from `from` to `to`.
    RecoveryEdge {
        /// The recovered extended identifier (has ports and aux payloads).
        eid: Eid,
        /// The endpoint the path enters the edge at.
        from: PathVertex,
        /// The endpoint the path leaves the edge at.
        to: PathVertex,
    },
    /// A 1-labeled edge: a tree path between two vertices of the same
    /// `T \ F` component (intact in `T \ F`).
    TreePath {
        /// Start vertex.
        from: PathVertex,
        /// End vertex.
        to: PathVertex,
    },
}

/// Succinct description of an `s`–`t` path in `G \ F` (Lemma 3.17):
/// alternating tree-path and recovery-edge segments, `O(f)` of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuccinctPath {
    /// Segments from `s` to `t`.
    pub segments: Vec<PathSegment>,
}

impl SuccinctPath {
    /// Number of recovery (0-labeled) edges.
    pub fn num_recovery_edges(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, PathSegment::RecoveryEdge { .. }))
            .count()
    }
}

/// Outcome of decoding a `⟨s, t, F⟩` query.
#[derive(Debug, Clone)]
pub struct DecodeOutcome {
    /// Whether `s` and `t` are connected in `G \ F` (w.h.p.).
    pub connected: bool,
    /// When connected, the succinct path description.
    pub path: Option<SuccinctPath>,
    /// Number of Borůvka phases actually consumed.
    pub phases_used: usize,
}

/// Decodes a `⟨s, t, F⟩` query from labels alone (Section 3.2.2).
///
/// Steps: (1) components of `T \ F` from ancestry labels; (2) component
/// sketches from subtree sketches (Claim 3.15); (3) cancellation of faulty
/// edges; (4) Borůvka phases with one fresh sketch unit each, followed by
/// path extraction.
pub fn decode(
    s: &SketchVertexLabel,
    t: &SketchVertexLabel,
    faults: &[SketchEdgeLabel],
) -> DecodeOutcome {
    if s.anc == t.anc {
        return DecodeOutcome {
            connected: true,
            path: Some(SuccinctPath { segments: vec![] }),
            phases_used: 0,
        };
    }
    // Split faults into tree / non-tree.
    let tree_faults: Vec<&SketchEdgeLabel> = faults.iter().filter(|f| f.is_tree()).collect();
    if tree_faults.is_empty() {
        // T \ F = T: s and t stay connected through the tree.
        return DecodeOutcome {
            connected: true,
            path: Some(SuccinctPath {
                segments: vec![PathSegment::TreePath {
                    from: PathVertex::from_vertex_label(s),
                    to: PathVertex::from_vertex_label(t),
                }],
            }),
            phases_used: 0,
        };
    }
    // Seeds and shape come from any tree-fault label (the paper's trick).
    let info = tree_faults[0].tree.as_ref().expect("tree fault has info");
    let params = info.params;
    let sid_space = UidSpace::new(info.sid);
    let sh = info.sh;

    // ---- Step 1: components of T \ F -------------------------------------
    // The synthetic root interval must contain every DFS time that can ever
    // be queried - including endpoints of edges recovered later from
    // sketches, which the decoder cannot enumerate up front. Use the
    // maximal interval.
    let fault_tree_edges: Vec<FaultTreeEdge> = tree_faults
        .iter()
        .map(|f| {
            FaultTreeEdge::from_endpoints(f.eid.anc_lo, f.eid.anc_hi)
                .expect("tree edge endpoints are ancestry-comparable")
        })
        .collect();
    let ct = ComponentTree::new(&fault_tree_edges, u32::MAX);
    let k = ct.num_components();

    // ---- Step 2: Sketch_G of every component (Claim 3.15) ----------------
    // Sketch'(C_j) = subtree sketch below the fault edge to the parent
    // (zero for the root component, since Sketch(V) = 0).
    let sketch_prime: Vec<Sketch> = ct
        .component_ids()
        .map(|c| match ct.edge_to_parent(c) {
            None => Sketch::zero(params),
            Some(i) => tree_faults[i]
                .tree
                .as_ref()
                .expect("tree fault")
                .sketch_subtree
                .clone(),
        })
        .collect();
    let mut comp_sketch: Vec<Sketch> = Vec::with_capacity(k);
    for c in ct.component_ids() {
        let mut sk = sketch_prime[c.index()].clone();
        for &child in ct.children(c) {
            sk.xor_assign(&sketch_prime[child.index()]);
        }
        comp_sketch.push(sk);
    }

    // ---- Step 3: cancel the faulty edges ----------------------------------
    for f in faults {
        let c_lo = ct.component_of(f.eid.anc_lo);
        let c_hi = ct.component_of(f.eid.anc_hi);
        if c_lo == c_hi {
            continue; // internal edge: not part of the component sketch
        }
        let bits = f.eid.to_bits();
        let key = f.eid.sampling_key();
        comp_sketch[c_lo.index()].toggle_edge(&bits, key, sh);
        comp_sketch[c_hi.index()].toggle_edge(&bits, key, sh);
    }

    // ---- Step 4: Borůvka phases -------------------------------------------
    let comp_s = ct.component_of(s.anc);
    let comp_t = ct.component_of(t.anc);
    let mut uf = UnionFind::new(k);
    // Per-root merged sketches live in comp_sketch[root].
    let mut merge_edges: Vec<Eid> = Vec::new();
    let mut phases_used = 0;
    for unit in 0..params.units {
        if uf.same(comp_s.index(), comp_t.index()) {
            break;
        }
        phases_used = unit + 1;
        // Collect one candidate outgoing edge per current super-component.
        let roots: Vec<usize> = (0..k)
            .map(|i| uf.find(i))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut candidates: Vec<(usize, Eid)> = Vec::new();
        for &r in &roots {
            if let Some(eid) = comp_sketch[r].recover(unit, &sid_space) {
                candidates.push((r, eid));
            }
        }
        let mut merged_any = false;
        for (_, eid) in candidates {
            let a = ct.component_of(eid.anc_lo).index();
            let b = ct.component_of(eid.anc_hi).index();
            let (ra, rb) = (uf.find(a), uf.find(b));
            if ra == rb {
                continue;
            }
            merge_edges.push(eid.clone());
            let merged = {
                let mut sk = comp_sketch[ra].clone();
                sk.xor_assign(&comp_sketch[rb]);
                sk
            };
            uf.union(ra, rb);
            let new_root = uf.find(ra);
            comp_sketch[new_root] = merged;
            merged_any = true;
        }
        if !merged_any && uf.num_sets() > 1 {
            // No progress this phase; later units may still succeed.
            continue;
        }
    }
    let connected = uf.same(comp_s.index(), comp_t.index());
    let path = if connected {
        Some(extract_path(s, t, &ct, &merge_edges, comp_s, comp_t))
    } else {
        None
    };
    DecodeOutcome {
        connected,
        path,
        phases_used,
    }
}

/// Lemma 3.17: build the alternating 0/1-labeled path from the recorded
/// merge edges.
fn extract_path(
    s: &SketchVertexLabel,
    t: &SketchVertexLabel,
    ct: &ComponentTree,
    merge_edges: &[Eid],
    comp_s: ComponentId,
    comp_t: ComponentId,
) -> SuccinctPath {
    if comp_s == comp_t {
        return SuccinctPath {
            segments: vec![PathSegment::TreePath {
                from: PathVertex::from_vertex_label(s),
                to: PathVertex::from_vertex_label(t),
            }],
        };
    }
    // BFS over the merge forest at the C0-component granularity.
    let k = ct.num_components();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k]; // edge indices
    for (i, eid) in merge_edges.iter().enumerate() {
        let a = ct.component_of(eid.anc_lo).index();
        let b = ct.component_of(eid.anc_hi).index();
        adj[a].push(i);
        adj[b].push(i);
    }
    let mut prev: Vec<Option<usize>> = vec![None; k]; // edge used to reach comp
    let mut visited = vec![false; k];
    let mut queue = std::collections::VecDeque::new();
    visited[comp_s.index()] = true;
    queue.push_back(comp_s.index());
    while let Some(c) = queue.pop_front() {
        if c == comp_t.index() {
            break;
        }
        for &ei in &adj[c] {
            let eid = &merge_edges[ei];
            let a = ct.component_of(eid.anc_lo).index();
            let b = ct.component_of(eid.anc_hi).index();
            let other = if a == c { b } else { a };
            if !visited[other] {
                visited[other] = true;
                prev[other] = Some(ei);
                queue.push_back(other);
            }
        }
    }
    debug_assert!(visited[comp_t.index()], "connected implies reachable");
    // Walk back from comp_t to comp_s collecting edges.
    let mut edge_seq: Vec<usize> = Vec::new();
    let mut cur = comp_t.index();
    while cur != comp_s.index() {
        let ei = prev[cur].expect("path back to comp_s");
        edge_seq.push(ei);
        let eid = &merge_edges[ei];
        let a = ct.component_of(eid.anc_lo).index();
        let b = ct.component_of(eid.anc_hi).index();
        cur = if a == cur { b } else { a };
    }
    edge_seq.reverse();
    // Emit alternating segments.
    let mut segments = Vec::new();
    let mut cur_vertex = PathVertex::from_vertex_label(s);
    let mut cur_comp = comp_s;
    for ei in edge_seq {
        let eid = &merge_edges[ei];
        let lo = PathVertex::lo_of(eid);
        let hi = PathVertex::hi_of(eid);
        let lo_comp = ct.component_of(eid.anc_lo);
        let (near, far, far_comp) = if lo_comp == cur_comp {
            let hic = ct.component_of(eid.anc_hi);
            (lo, hi, hic)
        } else {
            (hi, lo, lo_comp)
        };
        segments.push(PathSegment::TreePath {
            from: cur_vertex.clone(),
            to: near.clone(),
        });
        segments.push(PathSegment::RecoveryEdge {
            eid: eid.clone(),
            from: near,
            to: far.clone(),
        });
        cur_vertex = far;
        cur_comp = far_comp;
    }
    segments.push(PathSegment::TreePath {
        from: cur_vertex,
        to: PathVertex::from_vertex_label(t),
    });
    SuccinctPath { segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::SketchScheme;
    use crate::sketch::SketchParams;
    use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
    use ftl_graph::{generators, EdgeId, Graph, SpanningTree, VertexId};
    use ftl_seeded::Seed;

    /// Checks decode() against ground truth for every vertex pair, and
    /// validates returned paths against the real graph.
    fn check_all_pairs(g: &Graph, faults: &[EdgeId], seed: u64) {
        let params = SketchParams::for_graph(g);
        let scheme = SketchScheme::label(g, &params, Seed::new(seed)).unwrap();
        let tree = SpanningTree::bfs_tree(g, VertexId::new(0)).unwrap();
        let flabels: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let mask = forbidden_mask(g, faults);
        for a in 0..g.num_vertices() {
            for b in 0..g.num_vertices() {
                let (s, t) = (VertexId::new(a), VertexId::new(b));
                let truth = connected_avoiding(g, s, t, &mask);
                let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &flabels);
                assert_eq!(out.connected, truth, "pair ({a},{b}) faults {faults:?}");
                if out.connected {
                    let path = out.path.expect("connected answers carry a path");
                    validate_path(g, &tree, &mask, s, t, &path, faults.len());
                }
            }
        }
    }

    /// Asserts the Lemma 3.17 properties of a succinct path:
    /// * it leads from s to t,
    /// * recovery edges are real non-faulty G-edges,
    /// * tree-path segments connect vertices of the same T \ F component
    ///   (so the tree path between them is intact),
    /// * there are at most f recovery edges.
    fn validate_path(
        g: &Graph,
        tree: &SpanningTree,
        mask: &[bool],
        s: VertexId,
        t: VertexId,
        path: &SuccinctPath,
        f: usize,
    ) {
        assert!(path.num_recovery_edges() <= f + 1, "O(f) recovery edges");
        let mut cur = s;
        for seg in &path.segments {
            match seg {
                PathSegment::TreePath { from, to } => {
                    assert_eq!(from.id, cur.raw(), "segment continuity");
                    let from_v = VertexId::from_raw(from.id);
                    let to_v = VertexId::from_raw(to.id);
                    // The tree path between them must avoid every fault.
                    for e in tree.tree_path(from_v, to_v) {
                        assert!(!mask[e.index()], "tree segment uses faulty edge {e:?}");
                    }
                    cur = to_v;
                }
                PathSegment::RecoveryEdge { eid, from, to } => {
                    assert_eq!(from.id, cur.raw(), "segment continuity");
                    let u = VertexId::from_raw(eid.lo);
                    let v = VertexId::from_raw(eid.hi);
                    let real = g.find_edge(u, v);
                    assert!(real.is_some(), "recovery edge must exist in G");
                    // At least one parallel copy must be non-faulty... our
                    // test graphs are simple, so check the exact edge.
                    let e = real.unwrap();
                    assert!(!mask[e.index()], "recovery edge is faulty");
                    assert!(
                        (from.id, to.id) == (eid.lo, eid.hi)
                            || (from.id, to.id) == (eid.hi, eid.lo)
                    );
                    cur = VertexId::from_raw(to.id);
                }
            }
        }
        assert_eq!(cur, t, "path must end at t");
    }

    #[test]
    fn path_graph_single_faults() {
        let g = generators::path(7);
        for e in 0..g.num_edges() {
            check_all_pairs(&g, &[EdgeId::new(e)], 300 + e as u64);
        }
    }

    #[test]
    fn cycle_graph_fault_pairs() {
        let g = generators::cycle(7);
        for e1 in 0..7 {
            for e2 in (e1 + 1)..7 {
                check_all_pairs(&g, &[EdgeId::new(e1), EdgeId::new(e2)], 9);
            }
        }
    }

    #[test]
    fn grid_random_fault_sets() {
        let g = generators::grid(3, 4);
        let mut state = 0x5EED_1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..25 {
            let f = 1 + (next() as usize) % 5;
            let mut faults = Vec::new();
            while faults.len() < f {
                let e = EdgeId::new((next() as usize) % g.num_edges());
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            check_all_pairs(&g, &faults, 5000 + trial);
        }
    }

    #[test]
    fn star_isolation() {
        let g = generators::star(6);
        check_all_pairs(&g, &[EdgeId::new(2)], 1);
        let all: Vec<EdgeId> = (0..5).map(EdgeId::new).collect();
        check_all_pairs(&g, &all, 2);
    }

    #[test]
    fn dumbbell_bridge() {
        let mut b = ftl_graph::GraphBuilder::new(6);
        b.add_unit_edge(0, 1);
        b.add_unit_edge(1, 2);
        b.add_unit_edge(2, 0);
        b.add_unit_edge(3, 4);
        b.add_unit_edge(4, 5);
        b.add_unit_edge(5, 3);
        let bridge = b.add_unit_edge(0, 3);
        let g = b.build();
        check_all_pairs(&g, &[bridge], 3);
        check_all_pairs(&g, &[bridge, EdgeId::new(0)], 4);
    }

    #[test]
    fn no_faults_tree_path_answer() {
        let g = generators::grid(2, 3);
        let params = SketchParams::for_graph(&g);
        let scheme = SketchScheme::label(&g, &params, Seed::new(6)).unwrap();
        let out = decode(
            &scheme.vertex_label(VertexId::new(0)),
            &scheme.vertex_label(VertexId::new(5)),
            &[],
        );
        assert!(out.connected);
        let p = out.path.unwrap();
        assert_eq!(p.segments.len(), 1);
        assert!(matches!(p.segments[0], PathSegment::TreePath { .. }));
    }

    #[test]
    fn s_equals_t_trivial_path() {
        let g = generators::cycle(4);
        let params = SketchParams::for_graph(&g);
        let scheme = SketchScheme::label(&g, &params, Seed::new(6)).unwrap();
        let s = scheme.vertex_label(VertexId::new(1));
        let out = decode(&s, &s, &[scheme.edge_label(EdgeId::new(0))]);
        assert!(out.connected);
        assert!(out.path.unwrap().segments.is_empty());
    }

    #[test]
    fn non_tree_faults_only_stay_connected() {
        // On a cycle rooted at 0, exactly one edge is non-tree; failing it
        // keeps the tree intact.
        let g = generators::cycle(8);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let non_tree: Vec<EdgeId> = g
            .edge_ids()
            .filter(|(id, _)| !tree.is_tree_edge(*id))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(non_tree.len(), 1);
        check_all_pairs(&g, &non_tree, 8);
    }

    #[test]
    fn larger_random_graph_spot_checks() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let g = generators::connected_random(40, 0.08, 1, &mut rng);
        let params = SketchParams::for_graph(&g);
        let scheme = SketchScheme::label(&g, &params, Seed::new(17)).unwrap();
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        for trial in 0..40 {
            let f = 1 + rng.gen_range(0..8);
            let mut faults: Vec<EdgeId> = Vec::new();
            while faults.len() < f {
                let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            let flabels: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
            let mask = forbidden_mask(&g, &faults);
            let s = VertexId::new(rng.gen_range(0..40));
            let t = VertexId::new(rng.gen_range(0..40));
            let truth = connected_avoiding(&g, s, t, &mask);
            let out = decode(&scheme.vertex_label(s), &scheme.vertex_label(t), &flabels);
            assert_eq!(out.connected, truth, "trial {trial} s={s:?} t={t:?}");
            if out.connected && s != t {
                validate_path(&g, &tree, &mask, s, t, &out.path.unwrap(), f);
            }
        }
    }
}
