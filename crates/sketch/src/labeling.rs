//! The sketch-based labeling algorithm (Section 3.2.1).

use crate::eid::Eid;
use crate::sketch::{Sketch, SketchParams};
use ftl_gf2::{BitMatrix, BitVec};
use ftl_graph::{EdgeId, Graph, GraphError, SpanningTree, VertexId};
use ftl_labels::AncestryLabel;
use ftl_seeded::{Seed, UidSpace};

/// Per-vertex auxiliary payloads (tree-routing labels in the routing
/// schemes), all of width `params.aux_bits`.
#[derive(Debug, Clone, Default)]
pub struct VertexAux {
    /// `bits[v]` is the payload stored for vertex `v` inside every extended
    /// identifier of an edge incident to `v`.
    pub bits: Vec<BitVec>,
}

/// `ConnLabel(u)` of Eq. (3)/(6): ancestry label, vertex id, and (for
/// routing) the aux payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchVertexLabel {
    /// The vertex id `ID(u)`.
    pub id: u32,
    /// Ancestry label `ANC_T(u)`.
    pub anc: AncestryLabel,
    /// Aux payload (tree routing label `L_T(u)`; empty when unused).
    pub aux: BitVec,
}

/// The extra material stored on **tree** edges: the subtree sketch and the
/// two seeds (Section 3.2.1's `⟨…, Sketch(V(T_v)), S_ID, S_h⟩`).
///
/// The paper also lists `Sketch(V(T_u))` (the parent-side subtree) and
/// `Sketch(V)`; the decoder only ever uses the child-side subtree sketch and
/// `Sketch(V)`, and the latter is identically zero for a spanning tree of a
/// connected graph (every edge cancels in the XOR over all vertices), so we
/// store neither. The accounted label size keeps the same asymptotics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeEdgeInfo {
    /// `Sketch_G(V(T_c))` where `c` is the child endpoint of the edge.
    pub sketch_subtree: Sketch,
    /// The seed `S_ID` determining extended identifiers.
    pub sid: Seed,
    /// The seed `S_h` determining the sampling hash functions.
    pub sh: Seed,
    /// Sketch shape (so a decoder can rebuild hashes).
    pub params: SketchParams,
}

/// `ConnLabel(e)`: the extended identifier, plus [`TreeEdgeInfo`] when the
/// edge belongs to the spanning tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchEdgeLabel {
    /// Extended identifier `EID_T(e)` (Eq. (1)/(5)).
    pub eid: Eid,
    /// Present exactly when `e ∈ T`.
    pub tree: Option<TreeEdgeInfo>,
}

impl SketchEdgeLabel {
    /// Whether this is a tree edge.
    pub fn is_tree(&self) -> bool {
        self.tree.is_some()
    }

    /// Label length in bits.
    pub fn bits(&self) -> usize {
        let base = self.eid.to_bits().len();
        match &self.tree {
            None => base,
            Some(info) => base + info.sketch_subtree.bits() + 2 * 64 + 2 * 32,
        }
    }
}

/// The labeling side of the sketch scheme for one connected graph.
#[derive(Debug, Clone)]
pub struct SketchScheme {
    params: SketchParams,
    vertex_labels: Vec<SketchVertexLabel>,
    edge_labels: Vec<SketchEdgeLabel>,
    max_time: u32,
}

impl SketchScheme {
    /// Labels a connected graph, building a BFS spanning tree rooted at
    /// vertex 0. `seed` splits into `S_ID` and `S_h`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if `graph` is not connected.
    pub fn label(graph: &Graph, params: &SketchParams, seed: Seed) -> Result<Self, GraphError> {
        let tree = SpanningTree::bfs_tree(graph, VertexId::new(0))?;
        Self::label_with_tree(
            graph,
            &tree,
            params,
            seed.derive(0x51D),
            seed.derive(0x5A),
            None,
        )
    }

    /// Labels with a caller-supplied spanning tree, explicit seeds, and
    /// optional per-vertex aux payloads.
    ///
    /// The routing schemes call this with `f + 1` different `sh` seeds and a
    /// *shared* `sid` seed (so extended identifiers coincide across copies,
    /// footnote 7 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if the tree does not span the
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics if aux payloads are supplied with the wrong width or count.
    pub fn label_with_tree(
        graph: &Graph,
        tree: &SpanningTree,
        params: &SketchParams,
        sid: Seed,
        sh: Seed,
        aux: Option<&VertexAux>,
    ) -> Result<Self, GraphError> {
        if tree.num_tree_vertices() != graph.num_vertices() {
            return Err(GraphError::Disconnected);
        }
        let n = graph.num_vertices();
        if let Some(a) = aux {
            assert_eq!(a.bits.len(), n, "aux payload count mismatch");
            assert!(
                a.bits.iter().all(|b| b.len() == params.aux_bits),
                "aux payload width mismatch"
            );
        }
        let uid_space = UidSpace::new(sid);
        // Ancestry labels once per vertex; the eid sweep and the vertex
        // label sweep both read from this table instead of re-deriving
        // per-edge-endpoint.
        let anc_of: Vec<AncestryLabel> =
            ftl_par::par_map_indexed(n, |i| AncestryLabel::of(tree, VertexId::new(i)));
        // Parallel-edge copy discriminators, in edge-id order (endpoint
        // pairs packed into one u64 key to halve the hashing work). The
        // fixed-key hasher keeps copy assignment identical across runs
        // (FTL004): eid derivation feeds the wire format.
        let mut mult: ftl_seeded::DetHashMap<u64, u32> =
            ftl_seeded::DetHashMap::with_hasher(ftl_seeded::DetBuildHasher);
        let copy_of: Vec<u32> = graph
            .edge_ids()
            .map(|(_, e)| {
                let (lo, hi) = e.endpoints();
                let c = mult
                    .entry(((lo.raw() as u64) << 32) | hi.raw() as u64)
                    .or_insert(0);
                let copy = *c;
                *c += 1;
                copy
            })
            .collect();
        assert!(
            mult.values().all(|&c| c <= params.max_copies),
            "params.max_copies too small for this multigraph"
        );
        // Port of every edge at each endpoint, from one adjacency sweep.
        let mut port_at_u: Vec<u32> = vec![0; graph.num_edges()];
        let mut port_at_v: Vec<u32> = vec![0; graph.num_edges()];
        let mut seen_once = vec![false; graph.num_edges()];
        for v in graph.vertices() {
            for (p, nb) in graph.neighbors(v).iter().enumerate() {
                let e = graph.edge(nb.edge);
                if v == e.u() && !(seen_once[nb.edge.index()] && e.u() == e.v()) {
                    port_at_u[nb.edge.index()] = p as u32;
                } else {
                    port_at_v[nb.edge.index()] = p as u32;
                }
                seen_once[nb.edge.index()] = true;
            }
        }
        let empty_aux = BitVec::zeros(params.aux_bits);
        let aux_of = |v: VertexId| -> BitVec {
            aux.map(|a| a.bits[v.index()].clone())
                .unwrap_or_else(|| empty_aux.clone())
        };
        // Extended identifiers — one independent record per edge, built in
        // parallel (`parallel` feature; see `ftl-par`).
        let eids: Vec<Eid> = ftl_par::par_map_indexed(graph.num_edges(), |i| {
            let id = EdgeId::new(i);
            let e = graph.edge(id);
            let (u, v) = (e.u(), e.v());
            let (lo_v, hi_v, port_lo, port_hi) = if u.raw() <= v.raw() {
                (u, v, port_at_u[i], port_at_v[i])
            } else {
                (v, u, port_at_v[i], port_at_u[i])
            };
            Eid {
                uid: uid_space.uid(lo_v.raw(), hi_v.raw(), copy_of[i]),
                lo: lo_v.raw(),
                hi: hi_v.raw(),
                anc_lo: anc_of[lo_v.index()],
                anc_hi: anc_of[hi_v.index()],
                port_lo,
                port_hi,
                aux_lo: aux_of(lo_v),
                aux_hi: aux_of(hi_v),
            }
        });
        // Per-vertex sketches (Eq. (2)): serialized identifier bits live in
        // one contiguous bank (row e = EID_T(e)), sampling levels are
        // precomputed once per (unit, edge) pair — one streaming pass per
        // unit instead of a hash derivation per toggle — and each vertex
        // gathers its incident edges through the bank-level toggle, which
        // hoists borrows and bounds checks out of the `(edge, unit)` loop.
        // Each vertex owns its sketch, so the sweep is data-race-free and
        // runs on all cores, with the bank and level table shared read-only.
        let keys: Vec<u64> = eids.iter().map(|eid| eid.sampling_key()).collect();
        // Serialize straight into the bank's word arena, chunked across
        // threads on row boundaries — no intermediate per-edge vectors.
        let mut eid_bank = BitMatrix::with_rows(eids.len(), params.cell_bits());
        let bank_wpr = eid_bank.words_per_row();
        if bank_wpr > 0 {
            ftl_par::par_for_each_chunk_mut(
                eid_bank.words_mut(),
                eids.len(),
                2048,
                |first, chunk| {
                    for (k, slot) in chunk.chunks_exact_mut(bank_wpr).enumerate() {
                        eids[first + k].write_words(slot);
                    }
                },
            );
        }
        let levels = params.levels_for_keys(sh, &keys);
        let vertex_sketch: Vec<Sketch> = ftl_par::par_map_indexed_with_min(n, 256, |i| {
            let v = VertexId::new(i);
            let mut sketch = Sketch::zero(*params);
            sketch.toggle_edges_from_bank(
                &eid_bank,
                graph.neighbors(v).iter().filter_map(|nb| {
                    let e = graph.edge(nb.edge);
                    // Self-loops cancel in their own sketch; skip them.
                    (e.u() != e.v()).then(|| nb.edge.index())
                }),
                &levels,
            );
            sketch
        });
        // Subtree sketches, bottom-up (reverse preorder). Each vertex's
        // accumulated sketch is XOR-ed into its parent *in place* and then
        // **moved** into the tree edge's label — one XOR per tree edge and
        // zero sketch copies (the old version cloned three sketch-sized
        // buffers per edge).
        let mut subtree: Vec<Option<Sketch>> = vertex_sketch.into_iter().map(Some).collect();
        let mut tree_info: Vec<Option<TreeEdgeInfo>> = vec![None; graph.num_edges()];
        for &v in tree.preorder().iter().rev() {
            if let Some((p, e)) = tree.parent(v) {
                let child_sketch = subtree[v.index()].take().expect("visited once");
                subtree[p.index()]
                    .as_mut()
                    .expect("parent still pending")
                    .xor_assign(&child_sketch);
                tree_info[e.index()] = Some(TreeEdgeInfo {
                    sketch_subtree: child_sketch,
                    sid,
                    sh,
                    params: *params,
                });
            }
        }
        let vertex_labels = ftl_par::par_map_indexed(n, |i| {
            let v = VertexId::new(i);
            SketchVertexLabel {
                id: v.raw(),
                anc: anc_of[i],
                aux: aux_of(v),
            }
        });
        let edge_labels = eids
            .into_iter()
            .zip(tree_info)
            .map(|(eid, tree)| SketchEdgeLabel { eid, tree })
            .collect();
        Ok(SketchScheme {
            params: *params,
            vertex_labels,
            edge_labels,
            max_time: tree.max_time(),
        })
    }

    /// The label of vertex `v`.
    pub fn vertex_label(&self, v: VertexId) -> SketchVertexLabel {
        self.vertex_labels[v.index()].clone()
    }

    /// The label of edge `e`.
    pub fn edge_label(&self, e: EdgeId) -> SketchEdgeLabel {
        self.edge_labels[e.index()].clone()
    }

    /// Sketch shape.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Maximum DFS time (for bit accounting and component trees).
    pub fn max_time(&self) -> u32 {
        self.max_time
    }

    /// Longest vertex label in bits (Theorem 3.7: `O(log n)` plus aux).
    pub fn vertex_label_bits(&self) -> usize {
        32 + AncestryLabel::bits(self.max_time) + self.params.aux_bits
    }

    /// Longest edge label in bits (Theorem 3.7: `O(log³ n)`, dominated by
    /// the subtree sketch on tree edges).
    pub fn edge_label_bits(&self) -> usize {
        self.edge_labels.iter().map(|l| l.bits()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;

    #[test]
    fn tree_edges_carry_sketches() {
        let g = generators::grid(3, 3);
        let s = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(1)).unwrap();
        let mut tree_edges = 0;
        for (id, _) in g.edge_ids() {
            if s.edge_label(id).is_tree() {
                tree_edges += 1;
            }
        }
        assert_eq!(tree_edges, g.num_vertices() - 1);
    }

    #[test]
    fn subtree_sketch_matches_direct_computation() {
        // The subtree sketch stored on a tree edge must equal the XOR of the
        // per-vertex sketches of the subtree, i.e. the sketch of the
        // boundary edges of the subtree.
        let g = generators::grid(3, 3);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let params = SketchParams::for_graph(&g);
        let sid = Seed::new(10);
        let sh = Seed::new(11);
        let s = SketchScheme::label_with_tree(&g, &tree, &params, sid, sh, None).unwrap();
        let uid_space = UidSpace::new(sid);
        for (id, _) in g.edge_ids() {
            let Some(info) = s.edge_label(id).tree else {
                continue;
            };
            // Direct: toggle every edge with exactly one endpoint below.
            let child = {
                let e = g.edge(id);
                if tree.parent(e.u()).map(|(p, _)| p) == Some(e.v()) {
                    e.u()
                } else {
                    e.v()
                }
            };
            let below: Vec<bool> = (0..g.num_vertices())
                .map(|i| tree.is_ancestor(child, VertexId::new(i)))
                .collect();
            let mut direct = Sketch::zero(params);
            for (eid2, e2) in g.edge_ids() {
                if below[e2.u().index()] != below[e2.v().index()] {
                    let el = s.edge_label(eid2).eid;
                    direct.toggle_edge(&el.to_bits(), el.sampling_key(), sh);
                }
            }
            assert_eq!(direct, info.sketch_subtree, "edge {id:?}");
            // The boundary of a subtree always contains its tree edge, so
            // with L units at least one should recover some boundary edge.
            let recovered =
                (0..params.units).any(|u| info.sketch_subtree.recover(u, &uid_space).is_some());
            assert!(recovered, "no unit recovered a boundary edge for {id:?}");
        }
    }

    #[test]
    fn eids_validate_and_have_correct_ports() {
        let g = generators::cycle(5);
        let sid = Seed::new(3);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let params = SketchParams::for_graph(&g);
        let s = SketchScheme::label_with_tree(&g, &tree, &params, sid, Seed::new(4), None).unwrap();
        let space = UidSpace::new(sid);
        for (id, e) in g.edge_ids() {
            let eid = s.edge_label(id).eid;
            assert!(eid.validate(&space, 1));
            let lo = VertexId::from_raw(eid.lo);
            let hi = VertexId::from_raw(eid.hi);
            assert_eq!(g.port(lo, eid.port_lo as usize).unwrap().edge, id);
            assert_eq!(g.port(hi, eid.port_hi as usize).unwrap().edge, id);
            assert_eq!((lo, hi), e.endpoints());
        }
    }

    #[test]
    fn aux_payloads_embedded() {
        let g = generators::path(4);
        let params = SketchParams::for_graph(&g).with_aux_bits(5);
        let aux = VertexAux {
            bits: (0..4)
                .map(|i| {
                    let mut b = BitVec::zeros(5);
                    b.set(i % 5, true);
                    b
                })
                .collect(),
        };
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let s = SketchScheme::label_with_tree(
            &g,
            &tree,
            &params,
            Seed::new(1),
            Seed::new(2),
            Some(&aux),
        )
        .unwrap();
        let vl = s.vertex_label(VertexId::new(2));
        assert_eq!(vl.aux, aux.bits[2]);
        let el = s.edge_label(EdgeId::new(1)); // edge (1,2)
        assert_eq!(el.eid.aux_lo, aux.bits[1]);
        assert_eq!(el.eid.aux_hi, aux.bits[2]);
    }

    #[test]
    fn label_bits_are_positive_and_sketchy() {
        let g = generators::grid(4, 4);
        let s = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(5)).unwrap();
        assert!(s.vertex_label_bits() >= 32);
        // Tree edge labels dominated by the sketch.
        assert!(s.edge_label_bits() > s.params().sketch_bits());
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = ftl_graph::GraphBuilder::new(3);
        b.add_unit_edge(0, 1);
        let g = b.build();
        assert!(SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(0)).is_err());
    }

    #[test]
    fn shared_sid_distinct_sh_give_same_eids() {
        let g = generators::cycle(6);
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let params = SketchParams::for_graph(&g);
        let sid = Seed::new(42);
        let a = SketchScheme::label_with_tree(&g, &tree, &params, sid, Seed::new(1), None).unwrap();
        let b = SketchScheme::label_with_tree(&g, &tree, &params, sid, Seed::new(2), None).unwrap();
        for (id, _) in g.edge_ids() {
            assert_eq!(a.edge_label(id).eid, b.edge_label(id).eid);
        }
        // But sketches differ (different sampling).
        let anything_differs =
            g.edge_ids().any(
                |(id, _)| match (a.edge_label(id).tree, b.edge_label(id).tree) {
                    (Some(x), Some(y)) => x.sketch_subtree != y.sketch_subtree,
                    _ => false,
                },
            );
        assert!(anything_differs);
    }
}
