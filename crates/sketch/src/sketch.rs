//! Graph sketches: basic units, levels, XOR composition and edge recovery
//! (Eq. (2), Lemmas 3.9/3.10/3.13).

use crate::eid::Eid;
use ftl_gf2::{BitMatrix, BitVec};
use ftl_graph::Graph;
use ftl_seeded::{PairwiseHash, Seed, UidSpace};

/// Shape of a sketch: number of independent basic units `L`, number of
/// geometric sampling levels, and the width of the per-endpoint aux payload
/// inside every cell.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct SketchParams {
    /// Number of independent basic sketch units (`L = Θ(log n)`); the
    /// Borůvka simulation consumes one unit per phase.
    pub units: usize,
    /// Number of sampling levels per unit (`⌈log₂ m⌉ + 1`).
    pub levels: u32,
    /// Width of each endpoint's aux payload inside a cell (0 for the plain
    /// connectivity scheme; tree-routing label bits for routing).
    pub aux_bits: usize,
    /// Maximum edge multiplicity of the graph (1 for simple graphs);
    /// identifier validation scans this many copy discriminators.
    pub max_copies: u32,
}

impl SketchParams {
    /// Default parameters for a graph: `L = 4·⌈log₂(n+1)⌉ + 8` units and
    /// `⌈log₂ m⌉ + 1` levels, no aux payload.
    pub fn for_graph(graph: &Graph) -> Self {
        let n = graph.num_vertices().max(2) as u64;
        let m = graph.num_edges().max(2) as u64;
        // Deterministic hasher (FTL004): max_copies feeds the level count,
        // which is part of the serialized sketch shape.
        let mut mult = ftl_seeded::DetHashMap::with_hasher(ftl_seeded::DetBuildHasher);
        let mut max_copies = 1u32;
        for (_, e) in graph.edge_ids() {
            let c = mult.entry(e.endpoints()).or_insert(0u32);
            *c += 1;
            max_copies = max_copies.max(*c);
        }
        SketchParams {
            units: 4 * (64 - (n - 1).leading_zeros()) as usize + 8,
            levels: (64 - (m - 1).leading_zeros()) + 1,
            aux_bits: 0,
            max_copies,
        }
    }

    /// Same shape with a different unit count (experiments trade failure
    /// probability for label size).
    pub fn with_units(self, units: usize) -> Self {
        SketchParams { units, ..self }
    }

    /// Same shape with an aux payload width.
    pub fn with_aux_bits(self, aux_bits: usize) -> Self {
        SketchParams { aux_bits, ..self }
    }

    /// Width of one cell in bits.
    pub fn cell_bits(&self) -> usize {
        Eid::bits(self.aux_bits)
    }

    /// Total sketch size in bits (`units × levels × cell_bits`) — the
    /// `O(log³ n)` of Theorem 3.7 (cells are `O(log n)` wide for `aux_bits =
    /// O(log n)`).
    pub fn sketch_bits(&self) -> usize {
        self.units * self.levels as usize * self.cell_bits()
    }

    /// The pairwise-independent hash of unit `i`, derived from the seed
    /// `S_h` (Fact A.2).
    pub fn unit_hash(&self, sh: Seed, unit: usize) -> PairwiseHash {
        PairwiseHash::from_seed(sh.derive(unit as u64), self.levels.max(1))
    }

    /// The sampling level of an edge key in unit `i`: the edge belongs to
    /// `E_{i,j}` for every `j <= level`.
    pub fn level_of(&self, sh: Seed, unit: usize, key: u64) -> u32 {
        self.unit_hash(sh, unit).level(key).min(self.levels - 1)
    }

    /// Precomputes the sampling levels of a whole edge population, one pass
    /// per unit: each unit derives its hash **once** and streams over the
    /// keys (a multiply-mod per key), instead of re-deriving the hash for
    /// every `(edge, unit)` pair as the per-call [`SketchParams::level_of`]
    /// does.
    ///
    /// This is the preprocessing bottleneck fix for the labeling sweep: a
    /// vertex of degree `d` used to pay `units × d` hash derivations (twice
    /// per edge across its two endpoints); with a [`SampledLevels`] table
    /// the whole graph pays `units` derivations plus one evaluation per
    /// `(edge, unit)` pair. The table is stored **edge-major** (all of an
    /// edge's unit levels in one cache line) because the consumer is the
    /// per-edge toggle sweep.
    pub fn levels_for_keys(&self, sh: Seed, keys: &[u64]) -> SampledLevels {
        let units = self.units;
        // Parallelising pays off once the per-unit stream is long enough to
        // dwarf thread spawn cost; below that the serial sweep wins.
        let min_units = if keys.len() >= 4096 { 2 } else { usize::MAX };
        let per_unit: Vec<Vec<u8>> = ftl_par::par_map_indexed_with_min(units, min_units, |i| {
            let h = self.unit_hash(sh, i);
            let cap = self.levels - 1;
            keys.iter().map(|&k| h.level(k).min(cap) as u8).collect()
        });
        // Transpose the per-unit streams into the edge-major layout.
        let mut levels = vec![0u8; units * keys.len()];
        for (u, column) in per_unit.iter().enumerate() {
            for (e, &lvl) in column.iter().enumerate() {
                levels[e * units + u] = lvl;
            }
        }
        SampledLevels {
            num_keys: keys.len(),
            units,
            levels,
        }
    }
}

/// Precomputed sampling levels for an edge population, edge-major:
/// `level(unit, edge)` of every `(unit, edge)` pair, built by
/// [`SketchParams::levels_for_keys`] in one pass per unit. The edge-major
/// layout puts all of one edge's unit levels in a single cache line for
/// the toggle sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledLevels {
    num_keys: usize,
    units: usize,
    /// `levels[edge * units + unit]`; levels fit in a byte
    /// (`levels <= 61` by [`PairwiseHash`]'s output-bit bound).
    levels: Vec<u8>,
}

impl SampledLevels {
    /// Number of sketch units covered.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Number of edge keys covered.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// The clamped sampling level of edge `key_index` in `unit`.
    #[inline]
    pub fn level(&self, unit: usize, key_index: usize) -> u32 {
        debug_assert!(key_index < self.num_keys, "key index out of range");
        self.levels[key_index * self.units + unit] as u32
    }

    /// All unit levels of edge `key_index`, one byte per unit.
    #[inline]
    pub fn levels_of(&self, key_index: usize) -> &[u8] {
        &self.levels[key_index * self.units..(key_index + 1) * self.units]
    }
}

/// A sketch: `units × levels` XOR-cells of extended edge identifiers.
///
/// Linearity is the whole point: `Sketch(A ∪ B) = Sketch(A) ⊕ Sketch(B)` for
/// disjoint vertex sets `A`, `B`, with the edges between `A` and `B`
/// cancelling — so sketches of `T \ F` components can be assembled from
/// subtree sketches and faulty edges can be cancelled post hoc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    params: SketchParams,
    /// Cell `(i, j)` is row `i * levels + j` of one contiguous bit matrix,
    /// so XOR composition of whole sketches is a single word sweep.
    cells: BitMatrix,
}

impl Sketch {
    /// The all-zero sketch (of the empty edge multiset).
    pub fn zero(params: SketchParams) -> Self {
        let n = params.units * params.levels as usize;
        Sketch {
            params,
            cells: BitMatrix::with_rows(n, params.cell_bits()),
        }
    }

    /// The sketch's shape.
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// XORs another sketch into this one.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn xor_assign(&mut self, other: &Sketch) {
        assert_eq!(self.params, other.params, "sketch shape mismatch");
        self.cells.xor_assign(&other.cells);
    }

    /// XORs `eid_bits` into cells `(unit, 0..=lvl)` — the shared sweep of
    /// both toggle paths. The cells of one unit are consecutive rows of the
    /// bank, so the whole run is one contiguous pattern XOR.
    // ftl-analyzer: hot-path
    #[inline]
    fn toggle_unit(&mut self, unit: usize, lvl: u32, eid_bits: &BitVec) {
        debug_assert_eq!(eid_bits.len(), self.params.cell_bits(), "cell width");
        self.cells.xor_pattern_into_rows(
            unit * self.params.levels as usize,
            lvl as usize + 1,
            eid_bits.words(),
        );
    }

    /// XORs one edge into every level it is sampled at, in every unit.
    /// Adding an edge twice removes it — used both to build vertex sketches
    /// and to cancel faulty edges (decoder Step 3).
    // ftl-analyzer: hot-path
    pub fn toggle_edge(&mut self, eid_bits: &BitVec, key: u64, sh: Seed) {
        for i in 0..self.params.units {
            let lvl = self.params.level_of(sh, i, key);
            self.toggle_unit(i, lvl, eid_bits);
        }
    }

    /// [`Sketch::toggle_edge`] against a precomputed [`SampledLevels`]
    /// table: no hash derivations or evaluations at toggle time, just the
    /// XOR sweep. `key_index` is the edge's position in the key slice the
    /// table was built from.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the table covers fewer units than this
    /// sketch has.
    // ftl-analyzer: hot-path
    pub fn toggle_edge_batched(
        &mut self,
        eid_bits: &BitVec,
        key_index: usize,
        levels: &SampledLevels,
    ) {
        debug_assert_eq!(levels.units(), self.params.units, "unit count mismatch");
        for i in 0..self.params.units {
            let lvl = levels.level(i, key_index);
            self.toggle_unit(i, lvl, eid_bits);
        }
    }

    /// Toggles a whole set of edges against a contiguous identifier bank:
    /// `bank` holds one serialized identifier per row (the output of
    /// [`Eid::to_bits`](crate::Eid::to_bits) for every edge of the graph,
    /// in edge-id order) and `levels` the precomputed sampling table over
    /// the same index space.
    ///
    /// This is the per-vertex gather of the labeling sweep with the borrow
    /// and bounds checks hoisted out of the `(edge, unit)` loop: the cell
    /// words are taken once, each pattern row once per edge, and the
    /// common no-aux cell width (five words) gets an unrolled XOR.
    ///
    /// # Panics
    ///
    /// Panics if the bank width differs from the cell width or `levels`
    /// covers a different unit count.
    // ftl-analyzer: hot-path
    pub fn toggle_edges_from_bank(
        &mut self,
        bank: &BitMatrix,
        indices: impl IntoIterator<Item = usize>,
        levels: &SampledLevels,
    ) {
        assert_eq!(bank.num_cols(), self.params.cell_bits(), "cell width");
        assert_eq!(levels.units(), self.params.units, "unit count mismatch");
        let units = self.params.units;
        let levels_per_unit = self.params.levels as usize;
        debug_assert_eq!(bank.words_per_row(), self.cells.words_per_row());
        gather_cells(
            self.cells.words_mut(),
            levels_per_unit,
            units,
            bank,
            indices,
            levels,
        );
    }

    /// Lemma 3.13: attempts to recover a single outgoing edge from basic
    /// unit `i`, scanning its levels for a cell that validates as one edge
    /// identifier under `S_ID`.
    pub fn recover(&self, unit: usize, sid: &UidSpace) -> Option<Eid> {
        let base = unit * self.params.levels as usize;
        // One scratch cell reused across the level scan — decoding calls
        // recover per unit, so per-row allocations would add up fast.
        let mut cell = BitVec::zeros(self.params.cell_bits());
        for j in 0..self.params.levels as usize {
            if self.cells.row_is_zero(base + j) {
                continue;
            }
            self.cells.read_row_into(base + j, &mut cell);
            let eid = Eid::from_bits(&cell);
            if eid.validate(sid, self.params.max_copies) {
                return Some(eid);
            }
        }
        None
    }

    /// Whether every cell is zero (no boundary edges — a non-growable
    /// component sketch).
    pub fn is_zero(&self) -> bool {
        self.cells.is_zero()
    }

    /// The raw cell bank (row `i * levels + j` is cell `(i, j)`); the wire
    /// codec serializes sketches from here.
    pub fn cells(&self) -> &BitMatrix {
        &self.cells
    }

    /// Rebuilds a sketch from a cell bank of the exact shape
    /// [`Sketch::cells`] exposes.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match `params`.
    pub fn from_cells(params: SketchParams, cells: BitMatrix) -> Self {
        assert_eq!(
            cells.num_rows(),
            params.units * params.levels as usize,
            "cell row count mismatch"
        );
        assert_eq!(cells.num_cols(), params.cell_bits(), "cell width mismatch");
        Sketch { params, cells }
    }

    /// Size of this sketch in bits.
    pub fn bits(&self) -> usize {
        self.params.sketch_bits()
    }
}

/// The shared gather kernel of the toggle paths: XORs each indexed row of
/// `bank` into cells `(unit, 0..=level(unit, i))` of one sketch's cell
/// words. Borrows and bounds checks are hoisted out of the `(edge, unit)`
/// loop, and the aux-free five-word cell gets an unrolled XOR.
#[inline]
pub(crate) fn gather_cells(
    cells: &mut [u64],
    levels_per_unit: usize,
    units: usize,
    bank: &BitMatrix,
    indices: impl IntoIterator<Item = usize>,
    levels: &SampledLevels,
) {
    let wpr = bank.words_per_row();
    debug_assert_eq!(cells.len(), units * levels_per_unit * wpr);
    if wpr == 5 {
        // The aux-free cell is exactly five words; the specialized kernel
        // keeps the pattern in registers and unrolls the row XOR — worth
        // ~2x on the labeling gather.
        gather_cells_w5(cells, levels_per_unit, units, bank, indices, levels);
        return;
    }
    for ei in indices {
        let pat = &bank.words()[ei * wpr..(ei + 1) * wpr];
        // One contiguous byte run holds every unit's level for this edge.
        let unit_levels = levels.levels_of(ei);
        for (unit, &lvl) in unit_levels.iter().enumerate().take(units) {
            let lvl = lvl as usize;
            let base = unit * levels_per_unit * wpr;
            let run = &mut cells[base..base + (lvl + 1) * wpr];
            for row in run.chunks_exact_mut(wpr) {
                for (d, &p) in row.iter_mut().zip(pat) {
                    *d ^= p;
                }
            }
        }
    }
}

/// [`gather_cells`] for the five-word (aux-free) cell: the pattern words
/// live in locals across the whole unit sweep and the row XOR is fully
/// unrolled.
fn gather_cells_w5(
    cells: &mut [u64],
    levels_per_unit: usize,
    units: usize,
    bank: &BitMatrix,
    indices: impl IntoIterator<Item = usize>,
    levels: &SampledLevels,
) {
    let stride = levels_per_unit * 5;
    for ei in indices {
        let pat = &bank.words()[ei * 5..ei * 5 + 5];
        let (p0, p1, p2, p3, p4) = (pat[0], pat[1], pat[2], pat[3], pat[4]);
        let unit_levels = &levels.levels_of(ei)[..units];
        let mut base = 0usize;
        for &lvl in unit_levels {
            let run = &mut cells[base..base + (lvl as usize + 1) * 5];
            for row in run.chunks_exact_mut(5) {
                row[0] ^= p0;
                row[1] ^= p1;
                row[2] ^= p2;
                row[3] ^= p3;
                row[4] ^= p4;
            }
            base += stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_labels::AncestryLabel;

    fn params() -> SketchParams {
        SketchParams {
            units: 12,
            levels: 8,
            aux_bits: 0,
            max_copies: 1,
        }
    }

    fn eid_for(sid: &UidSpace, lo: u32, hi: u32) -> Eid {
        Eid {
            uid: sid.uid(lo, hi, 0),
            lo,
            hi,
            anc_lo: AncestryLabel { pre: lo, post: lo },
            anc_hi: AncestryLabel { pre: hi, post: hi },
            port_lo: 0,
            port_hi: 0,
            aux_lo: BitVec::zeros(0),
            aux_hi: BitVec::zeros(0),
        }
    }

    #[test]
    fn zero_sketch_recovers_nothing() {
        let sid = UidSpace::new(Seed::new(1));
        let s = Sketch::zero(params());
        assert!(s.is_zero());
        for i in 0..params().units {
            assert!(s.recover(i, &sid).is_none());
        }
    }

    #[test]
    fn single_edge_recovered_from_some_unit() {
        let sid = UidSpace::new(Seed::new(2));
        let sh = Seed::new(3);
        let mut s = Sketch::zero(params());
        let e = eid_for(&sid, 1, 2);
        s.toggle_edge(&e.to_bits(), e.sampling_key(), sh);
        // Level 0 samples everything, so unit 0 level 0 holds exactly e.
        let got = s.recover(0, &sid).expect("single edge must be recoverable");
        assert_eq!(got, e);
    }

    #[test]
    fn toggle_twice_cancels() {
        let sid = UidSpace::new(Seed::new(2));
        let sh = Seed::new(3);
        let mut s = Sketch::zero(params());
        let e = eid_for(&sid, 1, 2);
        s.toggle_edge(&e.to_bits(), e.sampling_key(), sh);
        s.toggle_edge(&e.to_bits(), e.sampling_key(), sh);
        assert!(s.is_zero());
    }

    #[test]
    fn xor_of_sketches_cancels_shared_edges() {
        let sid = UidSpace::new(Seed::new(9));
        let sh = Seed::new(10);
        let shared = eid_for(&sid, 1, 2);
        let only_a = eid_for(&sid, 1, 3);
        let mut a = Sketch::zero(params());
        a.toggle_edge(&shared.to_bits(), shared.sampling_key(), sh);
        a.toggle_edge(&only_a.to_bits(), only_a.sampling_key(), sh);
        let mut b = Sketch::zero(params());
        b.toggle_edge(&shared.to_bits(), shared.sampling_key(), sh);
        a.xor_assign(&b);
        let got = a.recover(0, &sid).expect("only_a survives");
        assert_eq!(got, only_a);
    }

    #[test]
    fn many_edges_recovery_succeeds_in_most_units() {
        // With 40 edges in one sketch, each unit recovers some edge with
        // constant probability; across 12 units at least one must succeed.
        let sid = UidSpace::new(Seed::new(4));
        let sh = Seed::new(5);
        let mut s = Sketch::zero(params());
        let mut edges = Vec::new();
        for v in 1..=40u32 {
            let e = eid_for(&sid, 0, v);
            s.toggle_edge(&e.to_bits(), e.sampling_key(), sh);
            edges.push(e);
        }
        let mut successes = 0;
        for i in 0..params().units {
            if let Some(got) = s.recover(i, &sid) {
                assert!(edges.contains(&got), "recovered a genuine edge");
                successes += 1;
            }
        }
        assert!(successes >= 1, "at least one unit recovers an edge");
    }

    #[test]
    fn recovery_never_hallucinates() {
        // Sketch holding >= 2 edges at every level of a unit must not return
        // a bogus edge: validation rejects XOR mixtures.
        let sid = UidSpace::new(Seed::new(6));
        let sh = Seed::new(7);
        let mut s = Sketch::zero(params());
        let e1 = eid_for(&sid, 1, 2);
        let e2 = eid_for(&sid, 3, 4);
        s.toggle_edge(&e1.to_bits(), e1.sampling_key(), sh);
        s.toggle_edge(&e2.to_bits(), e2.sampling_key(), sh);
        for i in 0..params().units {
            if let Some(got) = s.recover(i, &sid) {
                assert!(got == e1 || got == e2, "recovered {got:?}");
            }
        }
    }

    #[test]
    fn params_accounting() {
        let p = params();
        assert_eq!(p.cell_bits(), crate::eid::FIXED_BITS);
        assert_eq!(p.sketch_bits(), 12 * 8 * p.cell_bits());
        let p2 = p.with_aux_bits(10);
        assert_eq!(p2.cell_bits(), crate::eid::FIXED_BITS + 20);
        let p3 = p.with_units(3);
        assert_eq!(p3.units, 3);
    }

    #[test]
    fn batched_levels_match_per_call_level_of() {
        let p = params();
        let sh = Seed::new(21);
        let keys: Vec<u64> = (0..500u64).map(|k| k.wrapping_mul(0x9E37_79B9)).collect();
        let table = p.levels_for_keys(sh, &keys);
        assert_eq!(table.units(), p.units);
        assert_eq!(table.num_keys(), keys.len());
        for i in 0..p.units {
            for (e, &key) in keys.iter().enumerate() {
                assert_eq!(
                    table.level(i, e),
                    p.level_of(sh, i, key),
                    "unit {i} edge {e}"
                );
            }
        }
    }

    #[test]
    fn toggle_edge_batched_matches_toggle_edge() {
        let sid = UidSpace::new(Seed::new(30));
        let sh = Seed::new(31);
        let eids: Vec<Eid> = (1..=20u32).map(|v| eid_for(&sid, 0, v)).collect();
        let keys: Vec<u64> = eids.iter().map(|e| e.sampling_key()).collect();
        let table = params().levels_for_keys(sh, &keys);
        let mut direct = Sketch::zero(params());
        let mut batched = Sketch::zero(params());
        for (i, e) in eids.iter().enumerate() {
            direct.toggle_edge(&e.to_bits(), e.sampling_key(), sh);
            batched.toggle_edge_batched(&e.to_bits(), i, &table);
        }
        assert_eq!(direct, batched);
    }

    #[test]
    fn levels_deterministic_across_calls() {
        let p = params();
        let sh = Seed::new(11);
        for key in 0..100u64 {
            assert_eq!(p.level_of(sh, 2, key), p.level_of(sh, 2, key));
        }
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let mut a = Sketch::zero(params());
        let b = Sketch::zero(params().with_units(3));
        a.xor_assign(&b);
    }
}
