//! Wire-format codecs for the sketch-scheme labels (see
//! [`ftl_labels::wire`] for the record layout).
//!
//! Non-tree edge labels serialize as one extended identifier; tree edge
//! labels additionally carry the sketch shape, both seeds, and the raw
//! subtree-sketch cell bank — everything a remote decoder needs to run the
//! four-step algorithm of Section 3.2.2 from stored bytes alone.

use crate::eid::Eid;
use crate::labeling::{SketchEdgeLabel, SketchVertexLabel, TreeEdgeInfo};
use crate::sketch::{Sketch, SketchParams};
use ftl_gf2::BitMatrix;
use ftl_labels::wire::{LabelKind, WireError, WireLabel, WireReader, WireWriter};
use ftl_labels::AncestryLabel;
use ftl_seeded::{EdgeUid, Seed};

impl WireLabel for SketchVertexLabel {
    const KIND: LabelKind = LabelKind::SketchVertex;

    fn encode_payload(&self, w: &mut WireWriter) {
        w.write_word(self.id as u64, 32);
        self.anc.encode_payload(w);
        w.write_len_bits(&self.aux);
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(SketchVertexLabel {
            id: r.read_word(32)? as u32,
            anc: AncestryLabel::decode_payload(r)?,
            aux: r.read_len_bits()?,
        })
    }
}

/// Writes an extended identifier: a 32-bit aux width followed by the fields
/// of Eq. (1)/(5).
fn encode_eid(eid: &Eid, w: &mut WireWriter) {
    debug_assert_eq!(eid.aux_lo.len(), eid.aux_hi.len(), "unequal aux widths");
    w.write_word(eid.aux_lo.len() as u64, 32);
    w.write_word(eid.uid.0, 64);
    w.write_word(eid.lo as u64, 32);
    w.write_word(eid.hi as u64, 32);
    eid.anc_lo.encode_payload(w);
    eid.anc_hi.encode_payload(w);
    w.write_word(eid.port_lo as u64, 32);
    w.write_word(eid.port_hi as u64, 32);
    w.write_bits(&eid.aux_lo);
    w.write_bits(&eid.aux_hi);
}

/// Reads an extended identifier; the inverse of [`encode_eid`].
fn decode_eid(r: &mut WireReader) -> Result<Eid, WireError> {
    let aux_bits = r.read_word(32)? as usize;
    Ok(Eid {
        uid: EdgeUid(r.read_word(64)?),
        lo: r.read_word(32)? as u32,
        hi: r.read_word(32)? as u32,
        anc_lo: AncestryLabel::decode_payload(r)?,
        anc_hi: AncestryLabel::decode_payload(r)?,
        port_lo: r.read_word(32)? as u32,
        port_hi: r.read_word(32)? as u32,
        aux_lo: r.read_bits(aux_bits)?,
        aux_hi: r.read_bits(aux_bits)?,
    })
}

fn encode_tree_info(info: &TreeEdgeInfo, w: &mut WireWriter) {
    w.write_word(info.params.units as u64, 32);
    w.write_word(info.params.levels as u64, 32);
    w.write_word(info.params.aux_bits as u64, 32);
    w.write_word(info.params.max_copies as u64, 32);
    w.write_word(info.sid.value(), 64);
    w.write_word(info.sh.value(), 64);
    let cells = info.sketch_subtree.cells();
    for i in 0..cells.num_rows() {
        w.write_bits(&cells.row_to_bitvec(i));
    }
}

fn decode_tree_info(r: &mut WireReader) -> Result<TreeEdgeInfo, WireError> {
    let params = SketchParams {
        units: r.read_word(32)? as usize,
        levels: r.read_word(32)? as u32,
        aux_bits: r.read_word(32)? as usize,
        max_copies: r.read_word(32)? as u32,
    };
    let sid = Seed::new(r.read_word(64)?);
    let sh = Seed::new(r.read_word(64)?);
    let rows = params.units * params.levels as usize;
    let cell_bits = params.cell_bits();
    // Reject inflated shape fields before reserving any memory.
    if rows
        .checked_mul(cell_bits)
        .is_none_or(|total| total > r.remaining())
    {
        return Err(WireError::Truncated);
    }
    let mut cells = BitMatrix::with_capacity(rows, cell_bits);
    for _ in 0..rows {
        cells.push_row(&r.read_bits(cell_bits)?);
    }
    Ok(TreeEdgeInfo {
        sketch_subtree: Sketch::from_cells(params, cells),
        sid,
        sh,
        params,
    })
}

impl WireLabel for SketchEdgeLabel {
    const KIND: LabelKind = LabelKind::SketchEdge;

    fn encode_payload(&self, w: &mut WireWriter) {
        encode_eid(&self.eid, w);
        match &self.tree {
            None => w.write_bit(false),
            Some(info) => {
                w.write_bit(true);
                encode_tree_info(info, w);
            }
        }
    }

    fn decode_payload(r: &mut WireReader) -> Result<Self, WireError> {
        let eid = decode_eid(r)?;
        let tree = if r.read_bit()? {
            Some(decode_tree_info(r)?)
        } else {
            None
        };
        Ok(SketchEdgeLabel { eid, tree })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::{SketchScheme, VertexAux};
    use ftl_gf2::BitVec;
    use ftl_graph::{generators, EdgeId, SpanningTree, VertexId};

    #[test]
    fn scheme_labels_roundtrip_including_tree_sketches() {
        let g = generators::grid(3, 3);
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(7)).unwrap();
        for v in 0..g.num_vertices() {
            let l = scheme.vertex_label(VertexId::new(v));
            assert_eq!(SketchVertexLabel::from_wire(&l.to_wire()).unwrap(), l);
        }
        let mut tree_edges = 0;
        for e in 0..g.num_edges() {
            let l = scheme.edge_label(EdgeId::new(e));
            tree_edges += l.is_tree() as usize;
            assert_eq!(SketchEdgeLabel::from_wire(&l.to_wire()).unwrap(), l);
        }
        assert_eq!(tree_edges, g.num_vertices() - 1);
    }

    #[test]
    fn aux_payloads_survive_the_wire() {
        let g = generators::path(4);
        let params = SketchParams::for_graph(&g).with_aux_bits(9);
        let aux = VertexAux {
            bits: (0..4)
                .map(|i| {
                    let mut b = BitVec::zeros(9);
                    b.set(i % 9, true);
                    b.set(8, true);
                    b
                })
                .collect(),
        };
        let tree = SpanningTree::bfs_tree(&g, VertexId::new(0)).unwrap();
        let scheme = SketchScheme::label_with_tree(
            &g,
            &tree,
            &params,
            Seed::new(1),
            Seed::new(2),
            Some(&aux),
        )
        .unwrap();
        for e in 0..g.num_edges() {
            let l = scheme.edge_label(EdgeId::new(e));
            let back = SketchEdgeLabel::from_wire(&l.to_wire()).unwrap();
            assert_eq!(back, l);
            assert_eq!(back.eid.aux_lo.len(), 9);
        }
    }

    #[test]
    fn inflated_shape_fields_rejected_without_allocation() {
        let g = generators::path(3);
        let scheme = SketchScheme::label(&g, &SketchParams::for_graph(&g), Seed::new(4)).unwrap();
        let tree_edge = (0..g.num_edges())
            .map(EdgeId::new)
            .find(|&e| scheme.edge_label(e).is_tree())
            .unwrap();
        let mut label = scheme.edge_label(tree_edge);
        // Lie about the unit count: the payload no longer holds that many
        // cell rows, so decoding must fail cleanly rather than misparse.
        label.tree.as_mut().unwrap().params.units *= 1024;
        let bytes = label.to_wire_with_forged_shape();
        assert!(SketchEdgeLabel::from_wire(&bytes).is_err());
    }

    impl SketchEdgeLabel {
        /// Encodes with the (possibly inconsistent) declared shape taken at
        /// face value — test-only, to forge corrupted records.
        fn to_wire_with_forged_shape(&self) -> Vec<u8> {
            let mut w = WireWriter::new();
            encode_eid(&self.eid, &mut w);
            let info = self.tree.as_ref().unwrap();
            w.write_bit(true);
            w.write_word(info.params.units as u64, 32);
            w.write_word(info.params.levels as u64, 32);
            w.write_word(info.params.aux_bits as u64, 32);
            w.write_word(info.params.max_copies as u64, 32);
            w.write_word(info.sid.value(), 64);
            w.write_word(info.sh.value(), 64);
            let cells = info.sketch_subtree.cells();
            for i in 0..cells.num_rows() {
                w.write_bits(&cells.row_to_bitvec(i));
            }
            w.finish(LabelKind::SketchEdge)
        }
    }
}
