//! Incremental GF(2) basis and linear solving with certificates.
//!
//! The elimination kernel here is the decoder's hot path (Lemma 3.5 /
//! Theorem 3.6), so the basis is engineered for speed:
//!
//! * **Pivot-indexed layout** — `pivot_rows[p]` maps a pivot position to
//!   its basis row in O(1), replacing the `O(rank)` scan of the naive
//!   implementation (kept as [`crate::reference::NaiveBasis`]); nothing is
//!   ever re-sorted.
//! * **Contiguous rows** — basis vectors and their tracked combinations
//!   live in two [`BitMatrix`] banks (one allocation each), so the
//!   word-parallel XOR sweeps of a reduction walk sequential memory.
//! * **Batched insertion** — [`Basis::insert_all`] eliminates a whole block
//!   of vectors while reusing one pair of scratch buffers, avoiding the
//!   per-insert allocations of repeated [`Basis::insert`] calls.

use crate::bitvec::{BitMatrix, BitVec};

/// Reusable scratch space for basis insertions and reductions.
///
/// A decoder that answers many queries keeps one `DecodeScratch` alive and
/// threads it through [`Basis::insert_with`] / [`Basis::express_with`]; after
/// warm-up no call allocates. The scratch also doubles as the certificate
/// carrier: after a *dependent* `insert_with` (returned `false`) or a
/// *successful* `express_with` (returned `true`), [`DecodeScratch::combo`]
/// holds the witnessing combination over insertion indices.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    work: BitVec,
    combo: BitVec,
}

impl DecodeScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// The combination certificate left by the last reduction:
    ///
    /// * after `insert_with(v) == false` — the **null-space** witness: the
    ///   subset of inserted vectors (including `v` itself) whose XOR is zero;
    /// * after `express_with(target) == true` — the subset of inserted
    ///   vectors whose XOR equals `target`.
    pub fn combo(&self) -> &BitVec {
        &self.combo
    }
}

/// An incremental GF(2) basis over vectors of a fixed dimension.
///
/// Every stored basis vector is paired with a *combination*: the subset of
/// inserted vectors whose XOR equals it. Reducing a target through the basis
/// therefore yields not only membership in the span but the witnessing
/// subset — which the cycle-space decoder converts into the disconnecting
/// fault set `F′` (proof of Lemma 3.5).
#[derive(Debug, Clone)]
pub struct Basis {
    dim: usize,
    num_inserted: usize,
    /// `pivot_rows[p]` is the index (into `vecs`/`combos`) of the basis row
    /// whose lowest set bit is `p`, if any — the O(1) pivot lookup.
    pivot_rows: Vec<Option<u32>>,
    /// Basis vectors, one matrix row each, in insertion order.
    vecs: BitMatrix,
    /// Tracked combinations, row-aligned with `vecs`.
    combos: BitMatrix,
    /// Upper bound on the number of vectors that will be inserted (sets the
    /// combination width).
    capacity: usize,
}

impl Default for Basis {
    /// A zero-dimensional basis; [`Basis::reset`] re-shapes it for real use.
    fn default() -> Self {
        Basis::new(0, 0)
    }
}

impl Basis {
    /// Creates an empty basis for vectors with `dim` bits, able to absorb up
    /// to `capacity` insertions.
    pub fn new(dim: usize, capacity: usize) -> Self {
        // Rank can never exceed min(dim, capacity); reserving it up front
        // keeps the row banks from reallocating mid-elimination.
        let max_rank = dim.min(capacity);
        Basis {
            dim,
            num_inserted: 0,
            pivot_rows: vec![None; dim],
            vecs: BitMatrix::with_capacity(max_rank, dim),
            combos: BitMatrix::with_capacity(max_rank, capacity),
            capacity,
        }
    }

    /// Empties the basis and re-shapes it for `dim`-bit vectors and up to
    /// `capacity` insertions, keeping every allocation (pivot index, row
    /// banks). The arena-reuse path for decoders that eliminate one system
    /// per fault set.
    pub fn reset(&mut self, dim: usize, capacity: usize) {
        self.dim = dim;
        self.capacity = capacity;
        self.num_inserted = 0;
        self.pivot_rows.clear();
        self.pivot_rows.resize(dim, None);
        self.vecs.reset(dim);
        self.combos.reset(capacity);
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.vecs.num_rows()
    }

    /// Number of vectors inserted so far.
    pub fn num_inserted(&self) -> usize {
        self.num_inserted
    }

    /// Inserts a vector. Returns `true` if it was independent of the current
    /// basis (rank grew).
    ///
    /// # Panics
    ///
    /// Panics if the vector has the wrong dimension or capacity is exceeded.
    pub fn insert(&mut self, v: &BitVec) -> bool {
        let mut work = BitVec::zeros(self.dim);
        let mut combo = BitVec::zeros(self.capacity);
        self.insert_reusing(v, &mut work, &mut combo)
    }

    /// Inserts a whole block of vectors, returning one independence flag per
    /// vector (`out[i]` is what `insert(&block[i])` would have returned).
    ///
    /// Equivalent to calling [`Basis::insert`] in a loop, but the
    /// elimination sweeps share one pair of scratch buffers across the
    /// block, so per-vector work is pure word-parallel XOR.
    ///
    /// # Panics
    ///
    /// Panics if any vector has the wrong dimension or capacity is exceeded.
    pub fn insert_all(&mut self, block: &[BitVec]) -> Vec<bool> {
        let mut work = BitVec::zeros(self.dim);
        let mut combo = BitVec::zeros(self.capacity);
        block
            .iter()
            .map(|v| self.insert_reusing(v, &mut work, &mut combo))
            .collect()
    }

    /// [`Basis::insert`] with caller-owned scratch: allocation-free once the
    /// scratch buffers have grown to this basis' shape.
    ///
    /// When the vector is **dependent** (`false` is returned),
    /// `scratch.combo()` holds the null-space witness: the subset of inserted
    /// vectors — this one included — whose XOR is zero. A batch decoder
    /// collects those witnesses to answer arbitrarily many targets from one
    /// elimination.
    ///
    /// # Panics
    ///
    /// Panics if the vector has the wrong dimension or capacity is exceeded.
    pub fn insert_with(&mut self, v: &BitVec, scratch: &mut DecodeScratch) -> bool {
        scratch.combo.reset_zeroed(self.capacity);
        self.insert_reusing(v, &mut scratch.work, &mut scratch.combo)
    }

    /// [`Basis::express`] with caller-owned scratch: returns whether `target`
    /// lies in the span; on `true`, `scratch.combo()` holds the certificate.
    ///
    /// # Panics
    ///
    /// Panics if `target` has the wrong dimension.
    // ftl-analyzer: hot-path
    pub fn express_with(&self, target: &BitVec, scratch: &mut DecodeScratch) -> bool {
        assert_eq!(target.len(), self.dim, "dimension mismatch");
        scratch.work.copy_from(target);
        scratch.combo.reset_zeroed(self.capacity);
        self.reduce_in_place(&mut scratch.work, &mut scratch.combo)
            .is_none()
    }

    fn insert_reusing(&mut self, v: &BitVec, work: &mut BitVec, combo: &mut BitVec) -> bool {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        assert!(self.num_inserted < self.capacity, "capacity exceeded");
        let idx = self.num_inserted;
        self.num_inserted += 1;
        work.copy_from(v);
        combo.zero_out();
        combo.set(idx, true);
        match self.reduce_in_place(work, combo) {
            None => false,
            Some(p) => {
                let row = self.vecs.push_row(work);
                self.combos.push_row(combo);
                self.pivot_rows[p] = Some(row as u32);
                true
            }
        }
    }

    /// Reduces `vec` (and its tracked combination) by the basis in place.
    /// Returns the surviving pivot, or `None` if `vec` reduced to zero.
    ///
    /// Each round finds the lowest surviving bit (resuming the scan where
    /// the previous round stopped — XORing a row with pivot `p` never
    /// reintroduces bits below `p`) and cancels it with the O(1)-indexed
    /// pivot row.
    fn reduce_in_place(&self, vec: &mut BitVec, combo: &mut BitVec) -> Option<usize> {
        let mut from = 0;
        loop {
            let p = vec.first_one_from(from)?;
            match self.pivot_rows[p] {
                Some(row) => {
                    self.vecs.xor_row_into_bitvec(row as usize, vec);
                    self.combos.xor_row_into_bitvec(row as usize, combo);
                    from = p + 1;
                }
                None => return Some(p),
            }
        }
    }

    /// If `target` lies in the span of the inserted vectors, returns the
    /// combination certificate: a bit vector `x` (indexed by insertion order)
    /// with `XOR_{i : x_i = 1} v_i = target`.
    pub fn express(&self, target: &BitVec) -> Option<BitVec> {
        assert_eq!(target.len(), self.dim, "dimension mismatch");
        let mut vec = target.clone();
        let mut combo = BitVec::zeros(self.capacity);
        if self.reduce_in_place(&mut vec, &mut combo).is_none() {
            Some(combo)
        } else {
            None
        }
    }
}

/// Solves `A·x = target` over GF(2) where `columns` are the columns of `A`.
///
/// Returns the certificate `x` (bit `i` set means column `i` participates)
/// or `None` when the system is inconsistent. Runs in
/// `O(f² · dim / 64)` word operations for `f` columns — the
/// `O((f + log n)·f²)` decoder cost of Theorem 3.6.
pub fn solve(columns: &[BitVec], target: &BitVec) -> Option<BitVec> {
    let mut basis = Basis::new(target.len(), columns.len().max(1));
    basis.insert_all(columns);
    basis.express(target)
}

/// Brute-force solver enumerating all `2^f` subsets; the differential-test
/// oracle for [`solve`] and the "simple approach" of Section 3.1.2.
///
/// # Panics
///
/// Panics if more than 25 columns are supplied (the enumeration would be
/// too large; use [`solve`]).
pub fn solve_brute_force(columns: &[BitVec], target: &BitVec) -> Option<BitVec> {
    assert!(columns.len() <= 25, "too many columns for brute force");
    let f = columns.len();
    for mask in 0u64..(1u64 << f) {
        let mut acc = BitVec::zeros(target.len());
        for (i, c) in columns.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                acc.xor_assign(c);
            }
        }
        if &acc == target {
            let mut x = BitVec::zeros(f.max(1));
            for i in 0..f {
                if (mask >> i) & 1 == 1 {
                    x.set(i, true);
                }
            }
            return Some(x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        BitVec::from_bits(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    #[test]
    fn rank_of_identity() {
        let mut basis = Basis::new(3, 3);
        assert!(basis.insert(&bv(&[1, 0, 0])));
        assert!(basis.insert(&bv(&[0, 1, 0])));
        assert!(basis.insert(&bv(&[0, 0, 1])));
        assert_eq!(basis.rank(), 3);
    }

    #[test]
    fn dependent_vector_detected() {
        let mut basis = Basis::new(3, 3);
        assert!(basis.insert(&bv(&[1, 1, 0])));
        assert!(basis.insert(&bv(&[0, 1, 1])));
        assert!(!basis.insert(&bv(&[1, 0, 1]))); // sum of the first two
        assert_eq!(basis.rank(), 2);
    }

    #[test]
    fn insert_all_matches_sequential_inserts() {
        let block = vec![
            bv(&[1, 1, 0, 0]),
            bv(&[0, 1, 1, 0]),
            bv(&[1, 0, 1, 0]), // dependent
            bv(&[0, 0, 1, 1]),
        ];
        let mut batched = Basis::new(4, block.len());
        let flags = batched.insert_all(&block);
        let mut sequential = Basis::new(4, block.len());
        let seq_flags: Vec<bool> = block.iter().map(|v| sequential.insert(v)).collect();
        assert_eq!(flags, seq_flags);
        assert_eq!(flags, vec![true, true, false, true]);
        assert_eq!(batched.rank(), sequential.rank());
        for tgt in [bv(&[1, 0, 0, 1]), bv(&[0, 0, 0, 1]), bv(&[1, 1, 1, 1])] {
            assert_eq!(batched.express(&tgt), sequential.express(&tgt));
        }
    }

    #[test]
    fn express_returns_valid_certificate() {
        let cols = vec![bv(&[1, 1, 0, 0]), bv(&[0, 1, 1, 0]), bv(&[0, 0, 1, 1])];
        let target = bv(&[1, 0, 0, 1]); // col0 ^ col1 ^ col2
        let x = solve(&cols, &target).expect("solvable");
        let mut acc = BitVec::zeros(4);
        for i in x.ones() {
            acc.xor_assign(&cols[i]);
        }
        assert_eq!(acc, target);
    }

    #[test]
    fn inconsistent_system_rejected() {
        let cols = vec![bv(&[1, 0, 0]), bv(&[0, 1, 0])];
        assert!(solve(&cols, &bv(&[0, 0, 1])).is_none());
    }

    #[test]
    fn zero_target_has_empty_certificate() {
        let cols = vec![bv(&[1, 0]), bv(&[0, 1])];
        let x = solve(&cols, &bv(&[0, 0])).unwrap();
        assert_eq!(x.count_ones(), 0);
    }

    #[test]
    fn no_columns_edge_case() {
        assert!(solve(&[], &bv(&[0, 0])).is_some());
        assert!(solve(&[], &bv(&[1, 0])).is_none());
    }

    #[test]
    fn brute_force_agrees_small() {
        let cols = vec![bv(&[1, 1, 0]), bv(&[0, 1, 1]), bv(&[1, 1, 1])];
        for tgt in [
            bv(&[0, 0, 0]),
            bv(&[1, 0, 0]),
            bv(&[0, 1, 0]),
            bv(&[1, 1, 1]),
            bv(&[1, 0, 1]),
        ] {
            let fast = solve(&cols, &tgt);
            let slow = solve_brute_force(&cols, &tgt);
            assert_eq!(fast.is_some(), slow.is_some(), "target {tgt:?}");
            if let Some(x) = fast {
                let mut acc = BitVec::zeros(3);
                for i in x.ones() {
                    acc.xor_assign(&cols[i]);
                }
                assert_eq!(acc, tgt);
            }
        }
    }

    #[test]
    fn randomized_differential_vs_brute_force() {
        // Deterministic xorshift to avoid external deps in unit tests.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let dim = 1 + (next() % 24) as usize;
            let f = (next() % 8) as usize;
            let cols: Vec<BitVec> = (0..f)
                .map(|_| {
                    let mut v = BitVec::zeros(dim);
                    v.randomize(&mut next);
                    v
                })
                .collect();
            let mut tgt = BitVec::zeros(dim);
            tgt.randomize(&mut next);
            let fast = solve(&cols, &tgt);
            let slow = solve_brute_force(&cols, &tgt);
            assert_eq!(fast.is_some(), slow.is_some(), "trial {trial}");
            if let Some(x) = fast {
                let mut acc = BitVec::zeros(dim);
                for i in x.ones() {
                    acc.xor_assign(&cols[i]);
                }
                assert_eq!(acc, tgt, "certificate must reproduce the target");
            }
        }
    }

    #[test]
    fn insert_with_collects_null_space_witnesses() {
        let block = vec![
            bv(&[1, 1, 0, 0]),
            bv(&[0, 1, 1, 0]),
            bv(&[1, 0, 1, 0]), // = block[0] ^ block[1]
            bv(&[0, 0, 1, 1]),
            bv(&[1, 1, 1, 1]), // = block[0] ^ block[3]
        ];
        let mut basis = Basis::new(4, block.len());
        let mut scratch = DecodeScratch::new();
        let mut nulls = Vec::new();
        for v in &block {
            if !basis.insert_with(v, &mut scratch) {
                nulls.push(scratch.combo().clone());
            }
        }
        assert_eq!(nulls.len(), 2);
        for null in &nulls {
            let mut acc = BitVec::zeros(4);
            for i in null.ones() {
                acc.xor_assign(&block[i]);
            }
            assert!(acc.is_zero(), "witness must XOR to zero: {null:?}");
        }
        // The second witness must involve the vector that triggered it.
        assert!(nulls[0].get(2));
        assert!(nulls[1].get(4));
    }

    #[test]
    fn express_with_matches_express() {
        let cols = vec![bv(&[1, 1, 0, 0]), bv(&[0, 1, 1, 0]), bv(&[0, 0, 1, 1])];
        let mut basis = Basis::new(4, cols.len());
        basis.insert_all(&cols);
        let mut scratch = DecodeScratch::new();
        for tgt in [bv(&[1, 0, 0, 1]), bv(&[0, 1, 0, 1]), bv(&[1, 0, 0, 0])] {
            let alloc = basis.express(&tgt);
            let with = basis.express_with(&tgt, &mut scratch);
            assert_eq!(alloc.is_some(), with);
            if let Some(x) = alloc {
                assert_eq!(&x, scratch.combo());
            }
        }
    }

    #[test]
    fn reset_reuses_basis_across_systems() {
        let mut basis = Basis::new(3, 2);
        let mut scratch = DecodeScratch::new();
        assert!(basis.insert_with(&bv(&[1, 0, 1]), &mut scratch));
        assert!(basis.insert_with(&bv(&[0, 1, 0]), &mut scratch));
        assert_eq!(basis.rank(), 2);
        // Reuse for a different (wider) system.
        basis.reset(4, 3);
        assert_eq!(basis.rank(), 0);
        assert_eq!(basis.num_inserted(), 0);
        assert!(basis.insert_with(&bv(&[1, 1, 0, 0]), &mut scratch));
        assert!(basis.insert_with(&bv(&[0, 0, 1, 1]), &mut scratch));
        assert!(!basis.insert_with(&bv(&[1, 1, 1, 1]), &mut scratch));
        assert_eq!(scratch.combo().ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        let mut fresh = Basis::new(4, 3);
        fresh.insert_all(&[bv(&[1, 1, 0, 0]), bv(&[0, 0, 1, 1]), bv(&[1, 1, 1, 1])]);
        for tgt in [bv(&[1, 1, 1, 1]), bv(&[1, 0, 0, 0])] {
            assert_eq!(basis.express(&tgt), fresh.express(&tgt));
        }
    }

    #[test]
    #[should_panic]
    fn capacity_overflow_panics() {
        let mut basis = Basis::new(2, 1);
        basis.insert(&bv(&[1, 0]));
        basis.insert(&bv(&[0, 1]));
    }
}
