//! Incremental GF(2) basis and linear solving with certificates.

use crate::bitvec::BitVec;

/// An incremental GF(2) basis over vectors of a fixed dimension.
///
/// Every stored basis vector is paired with a *combination*: the subset of
/// inserted vectors whose XOR equals it. Reducing a target through the basis
/// therefore yields not only membership in the span but the witnessing
/// subset — which the cycle-space decoder converts into the disconnecting
/// fault set `F′` (proof of Lemma 3.5).
#[derive(Debug, Clone)]
pub struct Basis {
    dim: usize,
    num_inserted: usize,
    /// `(pivot, vector, combination)` — `vector` has its lowest set bit at
    /// `pivot`, and equals the XOR of the inserted vectors flagged in
    /// `combination`.
    rows: Vec<(usize, BitVec, BitVec)>,
    /// Upper bound on the number of vectors that will be inserted (sets the
    /// combination width).
    capacity: usize,
}

impl Basis {
    /// Creates an empty basis for vectors with `dim` bits, able to absorb up
    /// to `capacity` insertions.
    pub fn new(dim: usize, capacity: usize) -> Self {
        Basis {
            dim,
            num_inserted: 0,
            rows: Vec::new(),
            capacity,
        }
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Number of vectors inserted so far.
    pub fn num_inserted(&self) -> usize {
        self.num_inserted
    }

    /// Inserts a vector. Returns `true` if it was independent of the current
    /// basis (rank grew).
    ///
    /// # Panics
    ///
    /// Panics if the vector has the wrong dimension or capacity is exceeded.
    pub fn insert(&mut self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        assert!(self.num_inserted < self.capacity, "capacity exceeded");
        let idx = self.num_inserted;
        self.num_inserted += 1;
        let mut combo = BitVec::zeros(self.capacity);
        combo.set(idx, true);
        let mut vec = v.clone();
        self.reduce(&mut vec, &mut combo);
        match vec.first_one() {
            None => false,
            Some(p) => {
                self.rows.push((p, vec, combo));
                // Keep rows sorted by pivot for a deterministic layout.
                self.rows.sort_by_key(|r| r.0);
                true
            }
        }
    }

    /// Reduces `vec` (and its tracked combination) by the basis in place.
    fn reduce(&self, vec: &mut BitVec, combo: &mut BitVec) {
        loop {
            let Some(p) = vec.first_one() else { return };
            match self.rows.iter().find(|r| r.0 == p) {
                Some((_, row, rcombo)) => {
                    vec.xor_assign(row);
                    combo.xor_assign(rcombo);
                }
                None => return,
            }
        }
    }

    /// If `target` lies in the span of the inserted vectors, returns the
    /// combination certificate: a bit vector `x` (indexed by insertion order)
    /// with `XOR_{i : x_i = 1} v_i = target`.
    pub fn express(&self, target: &BitVec) -> Option<BitVec> {
        assert_eq!(target.len(), self.dim, "dimension mismatch");
        let mut vec = target.clone();
        let mut combo = BitVec::zeros(self.capacity);
        self.reduce(&mut vec, &mut combo);
        if vec.is_zero() {
            Some(combo)
        } else {
            None
        }
    }
}

/// Solves `A·x = target` over GF(2) where `columns` are the columns of `A`.
///
/// Returns the certificate `x` (bit `i` set means column `i` participates)
/// or `None` when the system is inconsistent. Runs in
/// `O(f² · dim / 64)` word operations for `f` columns — the
/// `O((f + log n)·f²)` decoder cost of Theorem 3.6.
pub fn solve(columns: &[BitVec], target: &BitVec) -> Option<BitVec> {
    let mut basis = Basis::new(target.len(), columns.len().max(1));
    for c in columns {
        basis.insert(c);
    }
    basis.express(target)
}

/// Brute-force solver enumerating all `2^f` subsets; the differential-test
/// oracle for [`solve`] and the "simple approach" of Section 3.1.2.
///
/// # Panics
///
/// Panics if more than 25 columns are supplied (the enumeration would be
/// too large; use [`solve`]).
pub fn solve_brute_force(columns: &[BitVec], target: &BitVec) -> Option<BitVec> {
    assert!(columns.len() <= 25, "too many columns for brute force");
    let f = columns.len();
    for mask in 0u64..(1u64 << f) {
        let mut acc = BitVec::zeros(target.len());
        for (i, c) in columns.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                acc.xor_assign(c);
            }
        }
        if &acc == target {
            let mut x = BitVec::zeros(f.max(1));
            for i in 0..f {
                if (mask >> i) & 1 == 1 {
                    x.set(i, true);
                }
            }
            return Some(x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        BitVec::from_bits(&bits.iter().map(|&b| b == 1).collect::<Vec<_>>())
    }

    #[test]
    fn rank_of_identity() {
        let mut basis = Basis::new(3, 3);
        assert!(basis.insert(&bv(&[1, 0, 0])));
        assert!(basis.insert(&bv(&[0, 1, 0])));
        assert!(basis.insert(&bv(&[0, 0, 1])));
        assert_eq!(basis.rank(), 3);
    }

    #[test]
    fn dependent_vector_detected() {
        let mut basis = Basis::new(3, 3);
        assert!(basis.insert(&bv(&[1, 1, 0])));
        assert!(basis.insert(&bv(&[0, 1, 1])));
        assert!(!basis.insert(&bv(&[1, 0, 1]))); // sum of the first two
        assert_eq!(basis.rank(), 2);
    }

    #[test]
    fn express_returns_valid_certificate() {
        let cols = vec![bv(&[1, 1, 0, 0]), bv(&[0, 1, 1, 0]), bv(&[0, 0, 1, 1])];
        let target = bv(&[1, 0, 0, 1]); // col0 ^ col1 ^ col2
        let x = solve(&cols, &target).expect("solvable");
        let mut acc = BitVec::zeros(4);
        for i in x.ones() {
            acc.xor_assign(&cols[i]);
        }
        assert_eq!(acc, target);
    }

    #[test]
    fn inconsistent_system_rejected() {
        let cols = vec![bv(&[1, 0, 0]), bv(&[0, 1, 0])];
        assert!(solve(&cols, &bv(&[0, 0, 1])).is_none());
    }

    #[test]
    fn zero_target_has_empty_certificate() {
        let cols = vec![bv(&[1, 0]), bv(&[0, 1])];
        let x = solve(&cols, &bv(&[0, 0])).unwrap();
        assert_eq!(x.count_ones(), 0);
    }

    #[test]
    fn no_columns_edge_case() {
        assert!(solve(&[], &bv(&[0, 0])).is_some());
        assert!(solve(&[], &bv(&[1, 0])).is_none());
    }

    #[test]
    fn brute_force_agrees_small() {
        let cols = vec![bv(&[1, 1, 0]), bv(&[0, 1, 1]), bv(&[1, 1, 1])];
        for tgt in [
            bv(&[0, 0, 0]),
            bv(&[1, 0, 0]),
            bv(&[0, 1, 0]),
            bv(&[1, 1, 1]),
            bv(&[1, 0, 1]),
        ] {
            let fast = solve(&cols, &tgt);
            let slow = solve_brute_force(&cols, &tgt);
            assert_eq!(fast.is_some(), slow.is_some(), "target {tgt:?}");
            if let Some(x) = fast {
                let mut acc = BitVec::zeros(3);
                for i in x.ones() {
                    acc.xor_assign(&cols[i]);
                }
                assert_eq!(acc, tgt);
            }
        }
    }

    #[test]
    fn randomized_differential_vs_brute_force() {
        // Deterministic xorshift to avoid external deps in unit tests.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let dim = 1 + (next() % 24) as usize;
            let f = (next() % 8) as usize;
            let cols: Vec<BitVec> = (0..f)
                .map(|_| {
                    let mut v = BitVec::zeros(dim);
                    v.randomize(&mut next);
                    v
                })
                .collect();
            let mut tgt = BitVec::zeros(dim);
            tgt.randomize(&mut next);
            let fast = solve(&cols, &tgt);
            let slow = solve_brute_force(&cols, &tgt);
            assert_eq!(fast.is_some(), slow.is_some(), "trial {trial}");
            if let Some(x) = fast {
                let mut acc = BitVec::zeros(dim);
                for i in x.ones() {
                    acc.xor_assign(&cols[i]);
                }
                assert_eq!(acc, tgt, "certificate must reproduce the target");
            }
        }
    }

    #[test]
    #[should_panic]
    fn capacity_overflow_panics() {
        let mut basis = Basis::new(2, 1);
        basis.insert(&bv(&[1, 0]));
        basis.insert(&bv(&[0, 1]));
    }
}
