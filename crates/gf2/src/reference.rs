//! The original scan-based basis, kept verbatim as a differential oracle.
//!
//! [`NaiveBasis`] is the pre-optimization implementation of [`crate::Basis`]:
//! per-row `Vec` allocations, an `O(rank)` linear scan to find the row with
//! a given pivot, and a full `sort_by_key` after every insertion. The
//! property tests assert the pivot-indexed basis matches it bit for bit,
//! and the criterion benches use it as the "before" baseline recorded in
//! `BENCH_pr1.json`.

use crate::bitvec::BitVec;

/// Scan-based incremental GF(2) basis with combination tracking — the
/// unoptimized twin of [`crate::Basis`]. Same API, same results, `O(rank)`
/// pivot lookups and per-insert re-sorting.
#[derive(Debug, Clone)]
pub struct NaiveBasis {
    dim: usize,
    num_inserted: usize,
    /// `(pivot, vector, combination)` — `vector` has its lowest set bit at
    /// `pivot`, and equals the XOR of the inserted vectors flagged in
    /// `combination`.
    rows: Vec<(usize, BitVec, BitVec)>,
    capacity: usize,
}

impl NaiveBasis {
    /// Creates an empty basis for vectors with `dim` bits, able to absorb up
    /// to `capacity` insertions.
    pub fn new(dim: usize, capacity: usize) -> Self {
        NaiveBasis {
            dim,
            num_inserted: 0,
            rows: Vec::new(),
            capacity,
        }
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Number of vectors inserted so far.
    pub fn num_inserted(&self) -> usize {
        self.num_inserted
    }

    /// Inserts a vector. Returns `true` if it was independent of the current
    /// basis (rank grew).
    ///
    /// # Panics
    ///
    /// Panics if the vector has the wrong dimension or capacity is exceeded.
    pub fn insert(&mut self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        assert!(self.num_inserted < self.capacity, "capacity exceeded");
        let idx = self.num_inserted;
        self.num_inserted += 1;
        let mut combo = BitVec::zeros(self.capacity);
        combo.set(idx, true);
        let mut vec = v.clone();
        self.reduce(&mut vec, &mut combo);
        match vec.first_one() {
            None => false,
            Some(p) => {
                self.rows.push((p, vec, combo));
                // Keep rows sorted by pivot for a deterministic layout.
                self.rows.sort_by_key(|r| r.0);
                true
            }
        }
    }

    /// Reduces `vec` (and its tracked combination) by the basis in place,
    /// finding each pivot row by linear scan.
    fn reduce(&self, vec: &mut BitVec, combo: &mut BitVec) {
        loop {
            let Some(p) = vec.first_one() else { return };
            match self.rows.iter().find(|r| r.0 == p) {
                Some((_, row, rcombo)) => {
                    vec.xor_assign(row);
                    combo.xor_assign(rcombo);
                }
                None => return,
            }
        }
    }

    /// If `target` lies in the span of the inserted vectors, returns the
    /// combination certificate: a bit vector `x` (indexed by insertion order)
    /// with `XOR_{i : x_i = 1} v_i = target`.
    pub fn express(&self, target: &BitVec) -> Option<BitVec> {
        assert_eq!(target.len(), self.dim, "dimension mismatch");
        let mut vec = target.clone();
        let mut combo = BitVec::zeros(self.capacity);
        self.reduce(&mut vec, &mut combo);
        if vec.is_zero() {
            Some(combo)
        } else {
            None
        }
    }
}

/// Scan-based solver over [`NaiveBasis`]; the "before" baseline for
/// [`crate::solve()`].
pub fn solve_naive(columns: &[BitVec], target: &BitVec) -> Option<BitVec> {
    let mut basis = NaiveBasis::new(target.len(), columns.len().max(1));
    for c in columns {
        basis.insert(c);
    }
    basis.express(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_solver_finds_combination() {
        let a = BitVec::from_bits(&[true, true, false]);
        let b = BitVec::from_bits(&[false, true, true]);
        let t = BitVec::from_bits(&[true, false, true]);
        let x = solve_naive(&[a.clone(), b.clone()], &t).expect("solvable");
        let mut acc = BitVec::zeros(3);
        for i in x.ones() {
            acc.xor_assign([&a, &b][i]);
        }
        assert_eq!(acc, t);
        assert!(solve_naive(&[a], &BitVec::from_bits(&[false, false, true])).is_none());
    }
}
