//! Packed bit vectors over GF(2).

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length bit vector packed into 64-bit words, with XOR as addition
/// over GF(2).
///
/// All label material in the reproduction (cycle-space labels φ(e), sketch
/// cells, augmented vectors φ′(e)) is carried as `BitVec`s.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// The all-zero vector of the given length.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Builds a vector from explicit bits (`bits[0]` is bit 0).
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector of `len` bits from little-endian words.
    ///
    /// # Panics
    ///
    /// Panics if the word slice is too short for `len` bits or if bits beyond
    /// `len` are set.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(words.len() * WORD_BITS >= len, "not enough words");
        let mut v = BitVec {
            words: words[..len.div_ceil(WORD_BITS)].to_vec(),
            len,
        };
        v.mask_tail();
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// Whether all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= b;
        }
    }

    /// Concatenates `self` followed by `other`.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in self.ones() {
            out.set(i, true);
        }
        for i in other.ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// The sub-vector of bits `range.start .. range.end`.
    pub fn slice(&self, start: usize, end: usize) -> BitVec {
        assert!(start <= end && end <= self.len);
        let mut out = BitVec::zeros(end - start);
        for i in start..end {
            if self.get(i) {
                out.set(i - start, true);
            }
        }
        out
    }

    /// Raw little-endian words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Fills the vector with random bits from the supplied word source.
    pub fn randomize(&mut self, mut next_word: impl FnMut() -> u64) {
        for w in self.words.iter_mut() {
            *w = next_word();
        }
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;
    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn xor_is_gf2_addition() {
        let a = BitVec::from_bits(&[true, true, false, false]);
        let b = BitVec::from_bits(&[true, false, true, false]);
        let c = &a ^ &b;
        assert_eq!(c, BitVec::from_bits(&[false, true, true, false]));
        // x ^ x = 0
        let z = &a ^ &a;
        assert!(z.is_zero());
    }

    #[test]
    fn xor_assign_matches_xor() {
        let a = BitVec::from_bits(&[true, false, true]);
        let b = BitVec::from_bits(&[true, true, false]);
        let mut c = a.clone();
        c ^= &b;
        assert_eq!(c, &a ^ &b);
    }

    #[test]
    #[should_panic]
    fn xor_length_mismatch_panics() {
        let mut a = BitVec::zeros(3);
        let b = BitVec::zeros(4);
        a.xor_assign(&b);
    }

    #[test]
    fn first_one_and_ones() {
        let mut v = BitVec::zeros(200);
        assert_eq!(v.first_one(), None);
        v.set(70, true);
        v.set(150, true);
        assert_eq!(v.first_one(), Some(70));
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![70, 150]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = BitVec::from_bits(&[true, false]);
        let b = BitVec::from_bits(&[false, true, true]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.slice(0, 2), a);
        assert_eq!(c.slice(2, 5), b);
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(&[u64::MAX], 10);
        assert_eq!(v.count_ones(), 10);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn randomize_respects_length() {
        let mut v = BitVec::zeros(67);
        let mut x = 0u64;
        v.randomize(|| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            !0
        });
        assert_eq!(v.count_ones(), 67);
    }

    #[test]
    fn empty_vector() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.is_zero());
        assert_eq!(v.ones().count(), 0);
    }

    #[test]
    fn debug_shows_bits() {
        let v = BitVec::from_bits(&[true, false, true]);
        assert_eq!(format!("{v:?}"), "BitVec[101]");
    }
}
