//! Packed bit vectors and row-major bit matrices over GF(2).
//!
//! The XOR kernel is word-parallel throughout: every bulk operation works
//! on `u64` words with an unrolled fast path, and [`first_one`] /
//! [`count_ones`] lower to the `trailing_zeros` / `count_ones` intrinsics.
//! [`BitMatrix`] packs many equal-width rows into one contiguous
//! allocation so elimination sweeps stay cache-resident.
//!
//! [`first_one`]: BitVec::first_one
//! [`count_ones`]: BitVec::count_ones

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// XORs `src` into `dst` word by word, four words per step.
///
/// The unrolled body gives LLVM a straight-line SIMD-friendly loop; the
/// remainder handles the tail.
#[inline]
pub(crate) fn xor_words(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "word-count mismatch in xor");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] ^= sc[0];
        dc[1] ^= sc[1];
        dc[2] ^= sc[2];
        dc[3] ^= sc[3];
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a ^= b;
    }
}

/// A fixed-length bit vector packed into 64-bit words, with XOR as addition
/// over GF(2).
///
/// All label material in the reproduction (cycle-space labels φ(e), sketch
/// cells, augmented vectors φ′(e)) is carried as `BitVec`s.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// The all-zero vector of the given length.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Builds a vector from explicit bits (`bits[0]` is bit 0).
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector of `len` bits from little-endian words.
    ///
    /// # Panics
    ///
    /// Panics if the word slice is too short for `len` bits or if bits beyond
    /// `len` are set.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(words.len() * WORD_BITS >= len, "not enough words");
        let mut v = BitVec {
            words: words[..len.div_ceil(WORD_BITS)].to_vec(),
            len,
        };
        v.mask_tail();
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// Whether all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits (one `popcnt` per word).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the lowest set bit, if any (one `tzcnt` in the first
    /// nonzero word).
    #[inline]
    pub fn first_one(&self) -> Option<usize> {
        self.first_one_from(0)
    }

    /// Index of the lowest set bit at position `>= start`, if any.
    ///
    /// Elimination loops use this to resume the pivot scan where the last
    /// reduction left off instead of rescanning cleared low words.
    #[inline]
    pub fn first_one_from(&self, start: usize) -> Option<usize> {
        if start >= self.len {
            return None;
        }
        let first_word = start / WORD_BITS;
        // Mask off bits below `start` in the first scanned word.
        let head = self.words[first_word] & !((1u64 << (start % WORD_BITS)) - 1);
        if head != 0 {
            return Some(first_word * WORD_BITS + head.trailing_zeros() as usize);
        }
        for (wi, &w) in self.words.iter().enumerate().skip(first_word + 1) {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| {
                let mut rem = w;
                std::iter::from_fn(move || {
                    if rem == 0 {
                        return None;
                    }
                    let bit = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * WORD_BITS + bit)
                })
            })
            .filter(move |&i| i < self.len)
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        xor_words(&mut self.words, &other.words);
    }

    /// Writes `self ^ rhs` into `out`, reusing `out`'s allocation.
    ///
    /// This is the allocation-free replacement for the
    /// `let mut c = a.clone(); c.xor_assign(b)` pattern on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `self` and `rhs` have different lengths.
    // ftl-analyzer: hot-path
    pub fn xor_into(&self, rhs: &BitVec, out: &mut BitVec) {
        assert_eq!(self.len, rhs.len, "length mismatch in xor");
        out.len = self.len;
        out.words.clear();
        out.words.extend_from_slice(&self.words);
        xor_words(&mut out.words, &rhs.words);
    }

    /// Makes `self` a copy of `other`, reusing the existing allocation.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.len = other.len;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Clears every bit, keeping the length.
    pub fn zero_out(&mut self) {
        self.words.fill(0);
    }

    /// Turns `self` into the all-zero vector of `len` bits, reusing the
    /// existing word allocation — the arena-friendly replacement for
    /// `*self = BitVec::zeros(len)` on decode hot paths.
    pub fn reset_zeroed(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// Number of positions set in both `self` and `other`
    /// (`popcount(self & other)`), without materialising the AND.
    ///
    /// The batched decoder's parity test is `count_ones_and(..) % 2`, one
    /// AND+popcnt per word.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    // ftl-analyzer: hot-path
    pub fn count_ones_and(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in and-popcount");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// ORs `src` into `self` starting at bit `offset` (the allocation-free
    /// sibling of [`BitVec::concat`] for building augmented vectors in a
    /// reused buffer).
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > self.len()`.
    pub fn or_shifted(&mut self, src: &BitVec, offset: usize) {
        assert!(
            offset + src.len() <= self.len,
            "or_shifted out of range: {} + {} > {}",
            offset,
            src.len(),
            self.len
        );
        let base = offset / WORD_BITS;
        let shift = offset % WORD_BITS;
        for (i, &w) in src.words.iter().enumerate() {
            if shift == 0 {
                self.words[base + i] |= w;
            } else {
                self.words[base + i] |= w << shift;
                if base + i + 1 < self.words.len() {
                    self.words[base + i + 1] |= w >> (WORD_BITS - shift);
                }
            }
        }
    }

    /// XORs a raw word slice (of exactly the backing width) into `self`.
    #[inline]
    pub(crate) fn xor_assign_words(&mut self, words: &[u64]) {
        xor_words(&mut self.words, words);
    }

    /// Concatenates `self` followed by `other` (whole words at a time:
    /// copy, then OR in the second operand shifted across word boundaries).
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        out.words[..self.words.len()].copy_from_slice(&self.words);
        let base = self.len / WORD_BITS;
        let shift = self.len % WORD_BITS;
        for (i, &w) in other.words.iter().enumerate() {
            if shift == 0 {
                out.words[base + i] = w;
            } else {
                out.words[base + i] |= w << shift;
                if base + i + 1 < out.words.len() {
                    out.words[base + i + 1] |= w >> (WORD_BITS - shift);
                }
            }
        }
        out
    }

    /// The sub-vector of bits `range.start .. range.end` (whole words at a
    /// time: each output word stitches together one or two input words).
    pub fn slice(&self, start: usize, end: usize) -> BitVec {
        assert!(start <= end && end <= self.len);
        let mut out = BitVec::zeros(end - start);
        let base = start / WORD_BITS;
        let shift = start % WORD_BITS;
        let nw = out.words.len();
        for i in 0..nw {
            let mut w = self.words[base + i] >> shift;
            if shift != 0 && base + i + 1 < self.words.len() {
                w |= self.words[base + i + 1] << (WORD_BITS - shift);
            }
            out.words[i] = w;
        }
        out.mask_tail();
        out
    }

    /// Raw little-endian words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Raw words, mutably — for word-aligned serializers that assemble a
    /// vector whole words at a time instead of bit by bit. Bits at
    /// positions `>= len()` must stay zero; callers whose length is not a
    /// multiple of 64 must mask the tail word themselves.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Fills the vector with random bits from the supplied word source.
    pub fn randomize(&mut self, mut next_word: impl FnMut() -> u64) {
        for w in self.words.iter_mut() {
            *w = next_word();
        }
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;
    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

/// A growable row-major GF(2) matrix: every row is `cols` bits wide and all
/// rows live in **one contiguous word allocation**, so elimination and
/// sketch sweeps touch memory sequentially instead of chasing per-row
/// `Vec` allocations.
///
/// Used by [`crate::Basis`] for its basis/combination rows and by the
/// sketch decoder for its cell banks.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    cols: usize,
    /// Words per row (`cols.div_ceil(64)`).
    wpr: usize,
    rows: usize,
    words: Vec<u64>,
}

impl Default for BitMatrix {
    /// An empty zero-column matrix.
    fn default() -> Self {
        BitMatrix::new(0)
    }
}

impl BitMatrix {
    /// An empty matrix whose rows will be `cols` bits wide.
    pub fn new(cols: usize) -> Self {
        BitMatrix {
            cols,
            wpr: cols.div_ceil(WORD_BITS),
            rows: 0,
            words: Vec::new(),
        }
    }

    /// An empty matrix with backing storage reserved for `rows` rows.
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        let wpr = cols.div_ceil(WORD_BITS);
        BitMatrix {
            cols,
            wpr,
            rows: 0,
            words: Vec::with_capacity(rows * wpr),
        }
    }

    /// A zero-filled matrix of the given shape.
    pub fn with_rows(rows: usize, cols: usize) -> Self {
        let wpr = cols.div_ceil(WORD_BITS);
        BitMatrix {
            cols,
            wpr,
            rows,
            words: vec![0; rows * wpr],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Words per row (`num_cols().div_ceil(64)`), the stride of the backing
    /// word bank.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// The whole backing word bank, row-major (row `i` occupies words
    /// `i * words_per_row() ..`). Bits past `num_cols()` in each row's last
    /// word are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The backing word bank, mutably — for sweeps that XOR patterns into
    /// many rows with the borrow taken once. Callers must keep each row's
    /// tail bits (past `num_cols()`) zero.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Bits per row.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Appends a copy of `v` as a new row, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_cols()`.
    pub fn push_row(&mut self, v: &BitVec) -> usize {
        assert_eq!(v.len(), self.cols, "row width mismatch");
        self.words.extend_from_slice(v.words());
        self.rows += 1;
        self.rows - 1
    }

    /// The words of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.wpr..(i + 1) * self.wpr]
    }

    /// Bit `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(j < self.cols, "column {j} out of range {}", self.cols);
        (self.row(i)[j / WORD_BITS] >> (j % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(j < self.cols, "column {j} out of range {}", self.cols);
        let w = &mut self.words[i * self.wpr + j / WORD_BITS];
        let mask = 1u64 << (j % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Whether row `i` is all zeros.
    pub fn row_is_zero(&self, i: usize) -> bool {
        self.row(i).iter().all(|&w| w == 0)
    }

    /// Index of the lowest set bit of row `i`, if any.
    pub fn row_first_one(&self, i: usize) -> Option<usize> {
        for (wi, &w) in self.row(i).iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Copies row `i` out into an owned [`BitVec`].
    pub fn row_to_bitvec(&self, i: usize) -> BitVec {
        BitVec::from_words(self.row(i), self.cols)
    }

    /// Copies row `i` into `out`, reusing `out`'s allocation — the
    /// no-allocation companion of [`BitMatrix::row_to_bitvec`] for hot
    /// loops that inspect many rows.
    pub fn read_row_into(&self, i: usize, out: &mut BitVec) {
        out.len = self.cols;
        out.words.clear();
        out.words.extend_from_slice(self.row(i));
    }

    /// `row[dst] ^= row[src]`.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src` (the result would trivially be zero and the
    /// disjoint borrow below would alias).
    pub fn xor_rows(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "xor_rows requires distinct rows");
        let (lo, hi) = (dst.min(src), dst.max(src));
        let (head, tail) = self.words.split_at_mut(hi * self.wpr);
        let lo_row = &mut head[lo * self.wpr..lo * self.wpr + self.wpr];
        let hi_row = &mut tail[..self.wpr];
        if dst < src {
            xor_words(lo_row, hi_row);
        } else {
            xor_words(hi_row, lo_row);
        }
    }

    /// `row[i] ^= v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_cols()`.
    #[inline]
    pub fn xor_bitvec_into_row(&mut self, i: usize, v: &BitVec) {
        assert_eq!(v.len(), self.cols, "row width mismatch");
        xor_words(&mut self.words[i * self.wpr..(i + 1) * self.wpr], v.words());
    }

    /// XORs one word pattern into `count` **consecutive** rows starting at
    /// `first` — the sketch toggle sweep, which XORs an edge identifier
    /// into levels `0..=lvl` of a unit, all adjacent in the row bank. One
    /// bounds check covers the whole run, versus one per row through
    /// [`BitMatrix::xor_bitvec_into_row`].
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is not exactly one row's worth of words or the
    /// row range is out of bounds.
    #[inline]
    pub fn xor_pattern_into_rows(&mut self, first: usize, count: usize, pattern: &[u64]) {
        assert_eq!(pattern.len(), self.wpr, "pattern width mismatch");
        let start = first * self.wpr;
        let run = &mut self.words[start..start + count * self.wpr];
        for row in run.chunks_exact_mut(self.wpr) {
            for (d, &p) in row.iter_mut().zip(pattern) {
                *d ^= p;
            }
        }
    }

    /// `out ^= row[i]` — the word-parallel reduction step of the basis.
    #[inline]
    pub fn xor_row_into_bitvec(&self, i: usize, out: &mut BitVec) {
        assert_eq!(out.len(), self.cols, "row width mismatch");
        out.xor_assign_words(self.row(i));
    }

    /// A new matrix holding copies of rows `first .. first + count` — how
    /// a decoded sketch is materialized out of a contiguous multi-sketch
    /// cell bank (e.g. the engine store's subtree-sketch sidecar).
    pub fn clone_row_range(&self, first: usize, count: usize) -> BitMatrix {
        BitMatrix {
            cols: self.cols,
            wpr: self.wpr,
            rows: count,
            words: self.words[first * self.wpr..(first + count) * self.wpr].to_vec(),
        }
    }

    /// XORs another matrix of identical shape into this one, across all
    /// rows in a single word sweep.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn xor_assign(&mut self, other: &BitMatrix) {
        assert_eq!(self.cols, other.cols, "column-count mismatch");
        assert_eq!(self.rows, other.rows, "row-count mismatch");
        xor_words(&mut self.words, &other.words);
    }

    /// Whether every cell is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Empties the matrix and re-shapes it to `cols`-bit rows, keeping the
    /// word allocation — so a [`crate::Basis`] can be reused across decodes
    /// without reallocating its row banks.
    pub fn reset(&mut self, cols: usize) {
        self.cols = cols;
        self.wpr = cols.div_ceil(WORD_BITS);
        self.rows = 0;
        self.words.clear();
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix[{}x{}]", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  {:?}", self.row_to_bitvec(i))?;
            if i + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_mut_word_aligned_writes_match_bit_writes() {
        let mut by_bits = BitVec::zeros(128);
        let word = 0xDEAD_BEEF_0BAD_F00Du64;
        for i in 0..64 {
            if (word >> i) & 1 == 1 {
                by_bits.set(64 + i, true);
            }
        }
        let mut by_words = BitVec::zeros(128);
        by_words.words_mut()[1] = word;
        assert_eq!(by_bits, by_words);
        assert_eq!(by_words.words()[1], word);
    }

    #[test]
    fn xor_pattern_into_rows_matches_per_row_xor() {
        let cols = 130; // three words per row, masked tail
        let mut pattern = BitVec::zeros(cols);
        pattern.set(0, true);
        pattern.set(65, true);
        pattern.set(129, true);
        let mut a = BitMatrix::with_rows(8, cols);
        let mut b = BitMatrix::with_rows(8, cols);
        // Pre-fill with distinct junk so the XOR is non-trivial.
        for i in 0..8 {
            a.set(i, i % cols, true);
            b.set(i, i % cols, true);
        }
        a.xor_pattern_into_rows(2, 4, pattern.words());
        for i in 2..6 {
            b.xor_bitvec_into_row(i, &pattern);
        }
        assert_eq!(a, b);
        // Zero-count run is a no-op.
        let before = a.clone();
        a.xor_pattern_into_rows(0, 0, pattern.words());
        assert_eq!(a, before);
    }

    #[test]
    fn clone_row_range_copies_rows() {
        let mut m = BitMatrix::with_rows(6, 70);
        for i in 0..6 {
            m.set(i, i * 11, true);
        }
        let sub = m.clone_row_range(1, 3);
        assert_eq!(sub.num_rows(), 3);
        assert_eq!(sub.num_cols(), 70);
        for i in 0..3 {
            assert_eq!(sub.row_to_bitvec(i), m.row_to_bitvec(i + 1));
        }
        assert_eq!(m.clone_row_range(2, 0).num_rows(), 0);
    }

    #[test]
    #[should_panic]
    fn xor_pattern_wrong_width_panics() {
        let mut m = BitMatrix::with_rows(4, 64);
        m.xor_pattern_into_rows(0, 2, &[0, 0]); // two words, rows hold one
    }

    #[test]
    fn zeros_and_set_get() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn xor_is_gf2_addition() {
        let a = BitVec::from_bits(&[true, true, false, false]);
        let b = BitVec::from_bits(&[true, false, true, false]);
        let c = &a ^ &b;
        assert_eq!(c, BitVec::from_bits(&[false, true, true, false]));
        // x ^ x = 0
        let z = &a ^ &a;
        assert!(z.is_zero());
    }

    #[test]
    fn xor_assign_matches_xor() {
        let a = BitVec::from_bits(&[true, false, true]);
        let b = BitVec::from_bits(&[true, true, false]);
        let mut c = a.clone();
        c ^= &b;
        assert_eq!(c, &a ^ &b);
    }

    #[test]
    fn xor_into_matches_clone_then_xor() {
        let mut state = 0x5EED_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [0usize, 1, 63, 64, 65, 200, 513] {
            let mut a = BitVec::zeros(len);
            a.randomize(&mut next);
            let mut b = BitVec::zeros(len);
            b.randomize(&mut next);
            // Deliberately stale/mis-sized output buffer.
            let mut out = BitVec::zeros(7);
            out.randomize(&mut next);
            a.xor_into(&b, &mut out);
            assert_eq!(out, &a ^ &b, "len {len}");
        }
    }

    #[test]
    fn copy_from_and_zero_out() {
        let a = BitVec::from_bits(&[true, false, true, true]);
        let mut b = BitVec::zeros(100);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.zero_out();
        assert!(b.is_zero());
        assert_eq!(b.len(), 4);
    }

    #[test]
    #[should_panic]
    fn xor_length_mismatch_panics() {
        let mut a = BitVec::zeros(3);
        let b = BitVec::zeros(4);
        a.xor_assign(&b);
    }

    #[test]
    fn first_one_and_ones() {
        let mut v = BitVec::zeros(200);
        assert_eq!(v.first_one(), None);
        v.set(70, true);
        v.set(150, true);
        assert_eq!(v.first_one(), Some(70));
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![70, 150]);
    }

    #[test]
    fn first_one_from_resumes_mid_word() {
        let mut v = BitVec::zeros(300);
        v.set(5, true);
        v.set(64, true);
        v.set(200, true);
        assert_eq!(v.first_one_from(0), Some(5));
        assert_eq!(v.first_one_from(5), Some(5));
        assert_eq!(v.first_one_from(6), Some(64));
        assert_eq!(v.first_one_from(64), Some(64));
        assert_eq!(v.first_one_from(65), Some(200));
        assert_eq!(v.first_one_from(201), None);
        assert_eq!(v.first_one_from(299), None);
        assert_eq!(v.first_one_from(1000), None);
    }

    #[test]
    fn ones_iterator_matches_get_sweep() {
        let mut state = 0xFACE_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 64, 65, 127, 130, 300] {
            let mut v = BitVec::zeros(len);
            v.randomize(&mut next);
            let via_iter: Vec<usize> = v.ones().collect();
            let via_get: Vec<usize> = (0..len).filter(|&i| v.get(i)).collect();
            assert_eq!(via_iter, via_get, "len {len}");
        }
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = BitVec::from_bits(&[true, false]);
        let b = BitVec::from_bits(&[false, true, true]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.slice(0, 2), a);
        assert_eq!(c.slice(2, 5), b);
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(&[u64::MAX], 10);
        assert_eq!(v.count_ones(), 10);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn randomize_respects_length() {
        let mut v = BitVec::zeros(67);
        let mut x = 0u64;
        v.randomize(|| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            !0
        });
        assert_eq!(v.count_ones(), 67);
    }

    #[test]
    fn empty_vector() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.is_zero());
        assert_eq!(v.ones().count(), 0);
    }

    #[test]
    fn debug_shows_bits() {
        let v = BitVec::from_bits(&[true, false, true]);
        assert_eq!(format!("{v:?}"), "BitVec[101]");
    }

    #[test]
    fn matrix_push_and_roundtrip() {
        let mut m = BitMatrix::new(70);
        assert_eq!(m.num_rows(), 0);
        let mut a = BitVec::zeros(70);
        a.set(3, true);
        a.set(69, true);
        let mut b = BitVec::zeros(70);
        b.set(64, true);
        assert_eq!(m.push_row(&a), 0);
        assert_eq!(m.push_row(&b), 1);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row_to_bitvec(0), a);
        assert_eq!(m.row_to_bitvec(1), b);
        assert!(m.get(0, 3) && m.get(0, 69) && m.get(1, 64));
        assert!(!m.get(0, 4));
        assert_eq!(m.row_first_one(0), Some(3));
        assert_eq!(m.row_first_one(1), Some(64));
    }

    #[test]
    fn matrix_xor_rows_matches_bitvec_xor() {
        let a = BitVec::from_bits(&[true, true, false, true]);
        let b = BitVec::from_bits(&[false, true, true, false]);
        let mut m = BitMatrix::new(4);
        m.push_row(&a);
        m.push_row(&b);
        m.xor_rows(1, 0);
        assert_eq!(m.row_to_bitvec(1), &a ^ &b);
        assert_eq!(m.row_to_bitvec(0), a);
        m.xor_rows(0, 1);
        assert_eq!(m.row_to_bitvec(0), b);
    }

    #[test]
    fn matrix_row_bitvec_xor_bridges() {
        let mut m = BitMatrix::with_rows(2, 130);
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(129, true);
        m.xor_bitvec_into_row(1, &v);
        assert!(m.row_is_zero(0));
        assert!(!m.row_is_zero(1));
        let mut out = BitVec::zeros(130);
        m.xor_row_into_bitvec(1, &mut out);
        assert_eq!(out, v);
        // XOR in again: cancels.
        m.xor_bitvec_into_row(1, &v);
        assert!(m.is_zero());
    }

    #[test]
    fn matrix_whole_matrix_xor() {
        let mut a = BitMatrix::with_rows(3, 65);
        let mut b = BitMatrix::with_rows(3, 65);
        a.set(0, 64, true);
        a.set(2, 1, true);
        b.set(0, 64, true);
        b.set(1, 7, true);
        a.xor_assign(&b);
        assert!(!a.get(0, 64));
        assert!(a.get(1, 7));
        assert!(a.get(2, 1));
    }

    #[test]
    fn reset_zeroed_reuses_and_resizes() {
        let mut v = BitVec::from_bits(&[true, true, true]);
        v.reset_zeroed(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        v.set(129, true);
        v.reset_zeroed(2);
        assert_eq!(v.len(), 2);
        assert!(v.is_zero());
    }

    #[test]
    fn count_ones_and_matches_materialised_and() {
        let mut state = 0xC0DE_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 64, 65, 200] {
            let mut a = BitVec::zeros(len);
            a.randomize(&mut next);
            let mut b = BitVec::zeros(len);
            b.randomize(&mut next);
            let direct = (0..len).filter(|&i| a.get(i) && b.get(i)).count();
            assert_eq!(a.count_ones_and(&b), direct, "len {len}");
        }
    }

    #[test]
    fn or_shifted_matches_concat() {
        let mut state = 0xBEEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (prefix_len, src_len) in [(0usize, 5usize), (2, 64), (63, 65), (64, 10), (7, 130)] {
            let mut prefix = BitVec::zeros(prefix_len);
            prefix.randomize(&mut next);
            let mut src = BitVec::zeros(src_len);
            src.randomize(&mut next);
            let expected = prefix.concat(&src);
            let mut out = BitVec::zeros(prefix_len + src_len);
            out.or_shifted(&prefix, 0);
            out.or_shifted(&src, prefix_len);
            assert_eq!(out, expected, "prefix {prefix_len} src {src_len}");
        }
    }

    #[test]
    fn matrix_reset_reshapes_in_place() {
        let mut m = BitMatrix::with_rows(3, 65);
        m.set(2, 64, true);
        m.reset(10);
        assert_eq!(m.num_rows(), 0);
        assert_eq!(m.num_cols(), 10);
        let r = m.push_row(&BitVec::from_bits(&[true; 10]));
        assert_eq!(r, 0);
        assert_eq!(m.row_to_bitvec(0).count_ones(), 10);
    }

    #[test]
    #[should_panic]
    fn matrix_xor_rows_same_row_panics() {
        let mut m = BitMatrix::with_rows(2, 8);
        m.xor_rows(1, 1);
    }

    #[test]
    #[should_panic]
    fn matrix_push_wrong_width_panics() {
        let mut m = BitMatrix::new(8);
        m.push_row(&BitVec::zeros(9));
    }
}
