//! GF(2) linear algebra for the fast cycle-space decoder (Section 3.1.3).
//!
//! The decoder of Lemma 3.5 reduces fault-tolerant connectivity to asking
//! whether one of two linear systems `A·x = w₁ / A·x = w₂` over GF(2) has a
//! solution, where the columns of `A` are the augmented cycle-space labels
//! `φ′(e)` of the faulty edges. This crate provides:
//!
//! * [`BitVec`]: packed bit vectors with XOR composition;
//! * [`Basis`]: an incremental GF(2) basis that tracks, for every basis
//!   vector, *which input vectors combine to it* — so a solution certificate
//!   (the fault subset `F′`) falls out of the elimination;
//! * [`solve()`]: membership of a target in the span, with certificate.
//!
//! # Example
//!
//! ```
//! use ftl_gf2::{BitVec, solve};
//!
//! let a = BitVec::from_bits(&[true, false, true]);
//! let b = BitVec::from_bits(&[false, true, true]);
//! let t = BitVec::from_bits(&[true, true, false]);
//! // a ^ b = t, so the certificate is {0, 1}.
//! let x = solve(&[a, b], &t).expect("solvable");
//! assert!(x.get(0) && x.get(1));
//! ```
//!
//! `README.md` at the repo root maps this kernel into the full decode
//! pipeline; `BENCH_pr1.json` tracks its before/after numbers.

#![forbid(unsafe_code)]

pub mod bitvec;
pub mod reference;
pub mod solve;

pub use bitvec::{BitMatrix, BitVec};
pub use solve::{solve, solve_brute_force, Basis, DecodeScratch};
