//! Property-based tests for GF(2) algebra.

use ftl_gf2::{solve, solve_brute_force, Basis, BitVec};
use proptest::prelude::*;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|bits| BitVec::from_bits(&bits))
}

proptest! {
    /// XOR is associative, commutative, self-inverse.
    #[test]
    fn xor_group_laws(len in 1usize..200,
                      seed_a in any::<u64>(), seed_b in any::<u64>(), seed_c in any::<u64>()) {
        let mk = |seed: u64| {
            let mut v = BitVec::zeros(len);
            let mut s = seed | 1;
            v.randomize(|| { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s });
            v
        };
        let (a, b, c) = (mk(seed_a), mk(seed_b), mk(seed_c));
        prop_assert_eq!(&(&a ^ &b) ^ &c, &a ^ &(&b ^ &c));
        prop_assert_eq!(&a ^ &b, &b ^ &a);
        prop_assert!((&a ^ &a).is_zero());
        let zero = BitVec::zeros(len);
        prop_assert_eq!(&a ^ &zero, a.clone());
    }

    /// Concat then slice round-trips.
    #[test]
    fn concat_slice_roundtrip(la in 0usize..80, lb in 0usize..80, seed in any::<u64>()) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let mut a = BitVec::zeros(la);
        a.randomize(&mut next);
        let mut b = BitVec::zeros(lb);
        b.randomize(&mut next);
        let c = a.concat(&b);
        prop_assert_eq!(c.slice(0, la), a);
        prop_assert_eq!(c.slice(la, la + lb), b);
        prop_assert_eq!(c.count_ones(), c.ones().count());
    }

    /// The fast solver agrees with brute force, and certificates verify.
    #[test]
    fn solver_matches_brute_force(
        dim in 1usize..16,
        cols in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..16), 0..8),
        target in proptest::collection::vec(any::<bool>(), 1..16),
    ) {
        let cols: Vec<BitVec> = cols
            .into_iter()
            .map(|mut c| {
                c.resize(dim, false);
                BitVec::from_bits(&c)
            })
            .collect();
        let mut t = target;
        t.resize(dim, false);
        let t = BitVec::from_bits(&t);
        let fast = solve(&cols, &t);
        let slow = solve_brute_force(&cols, &t);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let Some(x) = fast {
            let mut acc = BitVec::zeros(dim);
            for i in x.ones() {
                acc.xor_assign(&cols[i]);
            }
            prop_assert_eq!(acc, t);
        }
    }

    /// Rank never exceeds min(dim, inserted), and inserting a linear
    /// combination never raises it.
    #[test]
    fn rank_bounds(
        dim in 1usize..20,
        vecs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..20), 1..10),
    ) {
        let vecs: Vec<BitVec> = vecs
            .into_iter()
            .map(|mut v| {
                v.resize(dim, false);
                BitVec::from_bits(&v)
            })
            .collect();
        let mut basis = Basis::new(dim, vecs.len() + 1);
        for v in &vecs {
            basis.insert(v);
        }
        prop_assert!(basis.rank() <= dim.min(vecs.len()));
        // XOR of the first two (if present) is dependent.
        if vecs.len() >= 2 {
            let dep = &vecs[0] ^ &vecs[1];
            let before = basis.rank();
            basis.insert(&dep);
            prop_assert_eq!(basis.rank(), before);
        }
    }

    /// express() is consistent: any XOR-combination of inserted vectors is
    /// expressible, and the certificate reproduces it.
    #[test]
    fn express_closure(
        dim in 1usize..16,
        vecs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..16), 1..8),
        mask in any::<u8>(),
    ) {
        let vecs: Vec<BitVec> = vecs
            .into_iter()
            .map(|mut v| {
                v.resize(dim, false);
                BitVec::from_bits(&v)
            })
            .collect();
        let mut basis = Basis::new(dim, vecs.len());
        for v in &vecs {
            basis.insert(v);
        }
        let mut target = BitVec::zeros(dim);
        for (i, v) in vecs.iter().enumerate() {
            if (mask >> (i % 8)) & 1 == 1 {
                target.xor_assign(v);
            }
        }
        let x = basis.express(&target);
        prop_assert!(x.is_some(), "combination of inserted vectors must be in span");
        let x = x.unwrap();
        let mut acc = BitVec::zeros(dim);
        for i in x.ones() {
            acc.xor_assign(&vecs[i]);
        }
        prop_assert_eq!(acc, target);
    }
}
