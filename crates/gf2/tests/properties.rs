//! Property-based tests for GF(2) algebra, including differential tests of
//! the pivot-indexed [`Basis`] against the scan-based
//! [`reference::NaiveBasis`] it replaced.

use ftl_gf2::reference::{self, NaiveBasis};
use ftl_gf2::{solve, solve_brute_force, Basis, BitMatrix, BitVec};
use proptest::prelude::*;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|bits| BitVec::from_bits(&bits))
}

proptest! {
    /// XOR at the bit-vector level is XOR bit by bit.
    #[test]
    fn xor_is_bitwise(a in bitvec_strategy(130), b in bitvec_strategy(130)) {
        let x = &a ^ &b;
        for i in 0..130 {
            prop_assert_eq!(x.get(i), a.get(i) ^ b.get(i));
        }
        prop_assert_eq!(x.count_ones(), (0..130).filter(|&i| x.get(i)).count());
    }

    /// XOR is associative, commutative, self-inverse.
    #[test]
    fn xor_group_laws(len in 1usize..200,
                      seed_a in any::<u64>(), seed_b in any::<u64>(), seed_c in any::<u64>()) {
        let mk = |seed: u64| {
            let mut v = BitVec::zeros(len);
            let mut s = seed | 1;
            v.randomize(|| { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s });
            v
        };
        let (a, b, c) = (mk(seed_a), mk(seed_b), mk(seed_c));
        prop_assert_eq!(&(&a ^ &b) ^ &c, &a ^ &(&b ^ &c));
        prop_assert_eq!(&a ^ &b, &b ^ &a);
        prop_assert!((&a ^ &a).is_zero());
        let zero = BitVec::zeros(len);
        prop_assert_eq!(&a ^ &zero, a.clone());
    }

    /// Concat then slice round-trips.
    #[test]
    fn concat_slice_roundtrip(la in 0usize..80, lb in 0usize..80, seed in any::<u64>()) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let mut a = BitVec::zeros(la);
        a.randomize(&mut next);
        let mut b = BitVec::zeros(lb);
        b.randomize(&mut next);
        let c = a.concat(&b);
        prop_assert_eq!(c.slice(0, la), a);
        prop_assert_eq!(c.slice(la, la + lb), b);
        prop_assert_eq!(c.count_ones(), c.ones().count());
    }

    /// The fast solver agrees with brute force, and certificates verify.
    #[test]
    fn solver_matches_brute_force(
        dim in 1usize..16,
        cols in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..16), 0..8),
        target in proptest::collection::vec(any::<bool>(), 1..16),
    ) {
        let cols: Vec<BitVec> = cols
            .into_iter()
            .map(|mut c| {
                c.resize(dim, false);
                BitVec::from_bits(&c)
            })
            .collect();
        let mut t = target;
        t.resize(dim, false);
        let t = BitVec::from_bits(&t);
        let fast = solve(&cols, &t);
        let slow = solve_brute_force(&cols, &t);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let Some(x) = fast {
            let mut acc = BitVec::zeros(dim);
            for i in x.ones() {
                acc.xor_assign(&cols[i]);
            }
            prop_assert_eq!(acc, t);
        }
    }

    /// Rank never exceeds min(dim, inserted), and inserting a linear
    /// combination never raises it.
    #[test]
    fn rank_bounds(
        dim in 1usize..20,
        vecs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..20), 1..10),
    ) {
        let vecs: Vec<BitVec> = vecs
            .into_iter()
            .map(|mut v| {
                v.resize(dim, false);
                BitVec::from_bits(&v)
            })
            .collect();
        let mut basis = Basis::new(dim, vecs.len() + 1);
        for v in &vecs {
            basis.insert(v);
        }
        prop_assert!(basis.rank() <= dim.min(vecs.len()));
        // XOR of the first two (if present) is dependent.
        if vecs.len() >= 2 {
            let dep = &vecs[0] ^ &vecs[1];
            let before = basis.rank();
            basis.insert(&dep);
            prop_assert_eq!(basis.rank(), before);
        }
    }

    /// express() is consistent: any XOR-combination of inserted vectors is
    /// expressible, and the certificate reproduces it.
    #[test]
    fn express_closure(
        dim in 1usize..16,
        vecs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..16), 1..8),
        mask in any::<u8>(),
    ) {
        let vecs: Vec<BitVec> = vecs
            .into_iter()
            .map(|mut v| {
                v.resize(dim, false);
                BitVec::from_bits(&v)
            })
            .collect();
        let mut basis = Basis::new(dim, vecs.len());
        for v in &vecs {
            basis.insert(v);
        }
        let mut target = BitVec::zeros(dim);
        for (i, v) in vecs.iter().enumerate() {
            if (mask >> (i % 8)) & 1 == 1 {
                target.xor_assign(v);
            }
        }
        let x = basis.express(&target);
        prop_assert!(x.is_some(), "combination of inserted vectors must be in span");
        let x = x.unwrap();
        let mut acc = BitVec::zeros(dim);
        for i in x.ones() {
            acc.xor_assign(&vecs[i]);
        }
        prop_assert_eq!(acc, target);
    }

    /// The pivot-indexed basis is bit-for-bit equivalent to the scan-based
    /// reference: same per-insert independence flags, same rank, and the
    /// same membership answers **and combination certificates** for both
    /// in-span and out-of-span targets.
    #[test]
    fn pivot_indexed_basis_matches_naive_reference(
        dim in 1usize..40,
        vecs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..40), 0..20),
        target in proptest::collection::vec(any::<bool>(), 1..40),
        mask in any::<u16>(),
    ) {
        let vecs: Vec<BitVec> = vecs
            .into_iter()
            .map(|mut v| {
                v.resize(dim, false);
                BitVec::from_bits(&v)
            })
            .collect();
        let capacity = vecs.len() + 1;
        let mut fast = Basis::new(dim, capacity);
        let mut naive = NaiveBasis::new(dim, capacity);
        for v in &vecs {
            prop_assert_eq!(fast.insert(v), naive.insert(v));
            prop_assert_eq!(fast.rank(), naive.rank());
            prop_assert_eq!(fast.num_inserted(), naive.num_inserted());
        }
        // An arbitrary target (may or may not be in span).
        let mut t = target;
        t.resize(dim, false);
        let t = BitVec::from_bits(&t);
        prop_assert_eq!(fast.express(&t), naive.express(&t));
        // A guaranteed-in-span target: XOR of a masked subset.
        let mut in_span = BitVec::zeros(dim);
        for (i, v) in vecs.iter().enumerate() {
            if (mask >> (i % 16)) & 1 == 1 {
                in_span.xor_assign(v);
            }
        }
        prop_assert_eq!(fast.express(&in_span), naive.express(&in_span));
    }

    /// Batched insertion is equivalent to one-at-a-time insertion — same
    /// flags, same rank, same certificates — and `solve` agrees with the
    /// naive scan-based solver.
    #[test]
    fn insert_all_matches_sequential_and_naive(
        dim in 1usize..32,
        vecs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..32), 1..16),
        target in proptest::collection::vec(any::<bool>(), 1..32),
    ) {
        let vecs: Vec<BitVec> = vecs
            .into_iter()
            .map(|mut v| {
                v.resize(dim, false);
                BitVec::from_bits(&v)
            })
            .collect();
        let mut batched = Basis::new(dim, vecs.len());
        let batched_flags = batched.insert_all(&vecs);
        let mut sequential = Basis::new(dim, vecs.len());
        let sequential_flags: Vec<bool> = vecs.iter().map(|v| sequential.insert(v)).collect();
        prop_assert_eq!(batched_flags, sequential_flags);
        prop_assert_eq!(batched.rank(), sequential.rank());
        let mut t = target;
        t.resize(dim, false);
        let t = BitVec::from_bits(&t);
        prop_assert_eq!(batched.express(&t), sequential.express(&t));
        prop_assert_eq!(solve(&vecs, &t), reference::solve_naive(&vecs, &t));
    }

    /// `xor_into` produces exactly what the old clone-then-`xor_assign`
    /// pattern produced, regardless of the output buffer's prior state.
    #[test]
    fn xor_into_matches_clone_xor_assign(
        len in 1usize..300,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        stale_len in 0usize..80,
    ) {
        let mk = |seed: u64, n: usize| {
            let mut v = BitVec::zeros(n);
            let mut s = seed | 1;
            v.randomize(|| { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s });
            v
        };
        let a = mk(seed_a, len);
        let b = mk(seed_b, len);
        let mut out = mk(seed_a ^ seed_b, stale_len);
        a.xor_into(&b, &mut out);
        let mut cloned = a.clone();
        cloned.xor_assign(&b);
        prop_assert_eq!(out, cloned);
    }

    /// `BitMatrix` rows behave exactly like the `BitVec`s they were built
    /// from: round-trips, first-one scans, row XOR vs `xor_assign`.
    #[test]
    fn bitmatrix_rows_match_bitvec_ops(
        cols in 1usize..200,
        seeds in proptest::collection::vec(any::<u64>(), 2..8),
    ) {
        let rows: Vec<BitVec> = seeds
            .iter()
            .map(|&seed| {
                let mut v = BitVec::zeros(cols);
                let mut s = seed | 1;
                v.randomize(|| { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s });
                v
            })
            .collect();
        let mut m = BitMatrix::new(cols);
        for r in &rows {
            m.push_row(r);
        }
        prop_assert_eq!(m.num_rows(), rows.len());
        prop_assert_eq!(m.num_cols(), cols);
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(m.row_to_bitvec(i), r.clone());
            prop_assert_eq!(m.row_first_one(i), r.first_one());
            prop_assert_eq!(m.row_is_zero(i), r.is_zero());
        }
        // row[0] ^= row[1] matches the BitVec path (old clone + xor_assign).
        let mut expect = rows[0].clone();
        expect.xor_assign(&rows[1]);
        m.xor_rows(0, 1);
        prop_assert_eq!(m.row_to_bitvec(0), expect.clone());
        // Bridging ops: XOR a row into a BitVec and a BitVec into a row.
        let mut out = BitVec::zeros(cols);
        m.xor_row_into_bitvec(0, &mut out);
        prop_assert_eq!(out, expect.clone());
        m.xor_bitvec_into_row(0, &expect);
        prop_assert!(m.row_is_zero(0));
    }
}
