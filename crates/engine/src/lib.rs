//! `ftl-engine` — the sharded, batch-decoding label-query engine.
//!
//! The labeling schemes of this workspace build compact labels; this crate
//! *serves* them. The pipeline is **store → batcher → decoder → cache**:
//!
//! * [`store`] — labels live wire-encoded ([`ftl_labels::wire`]) in a
//!   hash-sharded, frozen [`LabelStore`]; reads are pure `&self` lookups,
//!   so any number of query threads can share the store lock-free.
//! * [`batch`] — queries arrive grouped by fault set ([`BatchRequest`]).
//!   Each distinct fault set pays **one** GF(2) elimination, which yields
//!   the null-space generators of its `φ` columns; every query is then a
//!   handful of ancestry checks plus one AND-popcount parity test per
//!   generator ([`EliminatedFaultSet`]).
//! * [`cache`] — eliminated bases are kept in an [`LruCache`] keyed by the
//!   canonical fault-set hash, so recurring fault sets (the common case:
//!   faults change rarely, queries arrive constantly) skip elimination
//!   entirely.
//! * [`scenario`] — workload drivers (uniform faults, targeted high-degree
//!   attacks, multi-round churn) that push traffic through an [`Engine`]
//!   and report throughput, per-query latency, reachability, and routed
//!   stretch.
//!
//! The naive pre-engine serving path — a fresh elimination per query — is
//! preserved as [`Engine::execute_naive`] for differential testing and
//! benchmarking.
//!
//! The failure-mode catalogue (epoch swaps mid-batch, worker panics,
//! corrupted labels) is `docs/robustness.md`; the network front end that
//! feeds this engine batched queries is documented in `docs/serving.md`.

#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod epoch;
pub mod inject;
pub mod par;
pub mod scenario;
pub mod store;

pub use batch::{canonical_fault_hash, ConnQuery, EliminatedFaultSet};
pub use cache::LruCache;
pub use engine::{
    store_from_cycle_space, BatchRequest, BatchResponse, BatchStats, Engine, EngineConfig,
    EngineError, FaultSetBatch, GroupQueryResult, GroupResult, GroupedResponse, QueryResult,
};
pub use epoch::{full_store_of, Epoch, EpochStore, LiveStore, SwapPath, SwapReport};
pub use inject::{
    corrupt_random_bytes, flip_random_bits, oversize_declared_bits, plan_edge_removals,
    plan_vertex_removals, truncate_record, RemovalModel,
};
pub use par::{ParEngine, WorkerStats};
pub use scenario::{
    percentile_nearest_rank, run_churn_scenario, run_scenario, ChurnConfig, ChurnReport,
    ChurnRoundReport, FaultModel, QueryEngine, RoundReport, ScenarioConfig, ScenarioReport,
    StretchStats, WorkerSummary,
};
pub use store::{
    DecodedSidecar, LabelStore, LabelStoreBuilder, Namespace, SketchTreeEntry, StoreError, StoreKey,
};
