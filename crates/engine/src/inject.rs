//! Fault injection: wire-record corrupters and adversarial removal
//! planners for the chaos suite.
//!
//! Everything here is deterministic under a [`Seed`], so a failing chaos
//! run reproduces exactly. The corrupters mutate *copies* of wire bytes —
//! frozen stores are immutable; corrupt records enter a store through
//! [`LabelStore::delta_freeze`](crate::LabelStore::delta_freeze) upserts
//! or a builder's `put_bytes`, exactly like a disk/network flip would
//! arrive in practice.
//!
//! The removal planners mirror the DRFE-R evaluation: uniform random
//! churn versus **targeted** removal of the highest-degree survivors (the
//! attack that collapses stale-table routing, and the reason the epoch
//! store re-verifies ground-truth reachability after every swap).

use ftl_cycle_space::LiveCycleSpace;
use ftl_graph::{EdgeId, VertexId};
use ftl_labels::wire::HEADER_BYTES;
use ftl_seeded::Seed;

/// Flips `count` randomly chosen bits anywhere in `bytes`.
pub fn flip_random_bits(bytes: &mut [u8], count: usize, seed: Seed) {
    if bytes.is_empty() {
        return;
    }
    let mut rng = seed.stream();
    for _ in 0..count {
        let bit = (rng() % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
    }
}

/// Overwrites `count` randomly chosen bytes with random values.
pub fn corrupt_random_bytes(bytes: &mut [u8], count: usize, seed: Seed) {
    if bytes.is_empty() {
        return;
    }
    let mut rng = seed.stream();
    for _ in 0..count {
        let i = (rng() % bytes.len() as u64) as usize;
        bytes[i] = rng() as u8;
    }
}

/// Truncates a record to its first `keep` bytes.
pub fn truncate_record(bytes: &mut Vec<u8>, keep: usize) {
    bytes.truncate(keep);
}

/// Inflates the declared payload bit-length in the wire header by
/// `extra_bits` without growing the buffer — the classic "length field
/// lies" corruption. Returns false (and does nothing) if the record is too
/// short to even hold a header.
pub fn oversize_declared_bits(bytes: &mut [u8], extra_bits: u32) -> bool {
    if bytes.len() < HEADER_BYTES {
        return false;
    }
    let declared = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let inflated = declared.saturating_add(extra_bits);
    bytes[4..8].copy_from_slice(&inflated.to_le_bytes());
    true
}

/// How a removal round picks its victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalModel {
    /// Uniform over the alive population.
    Random,
    /// Highest alive degree first — correlated, adversarial removal of the
    /// best-connected survivors.
    Targeted,
}

/// Alive degree of `v`: alive incident edges (self-loops count once).
fn alive_degree(live: &LiveCycleSpace, v: VertexId) -> usize {
    live.graph()
        .neighbors(v)
        .iter()
        .filter(|nb| live.is_alive_edge(nb.edge))
        .count()
}

/// Plans `count` distinct edge removals over the alive edges.
pub fn plan_edge_removals(
    live: &LiveCycleSpace,
    count: usize,
    model: RemovalModel,
    seed: Seed,
) -> Vec<EdgeId> {
    let mut alive: Vec<EdgeId> = live.alive_edges().collect();
    match model {
        RemovalModel::Random => {
            seeded_shuffle(&mut alive, seed);
        }
        RemovalModel::Targeted => {
            // Heaviest endpoints first; seeded shuffle breaks ties
            // deterministically.
            seeded_shuffle(&mut alive, seed);
            alive.sort_by_key(|&e| {
                let edge = live.graph().edge(e);
                let d = alive_degree(live, edge.u()) + alive_degree(live, edge.v());
                std::cmp::Reverse(d)
            });
        }
    }
    alive.truncate(count);
    alive
}

/// Plans `count` distinct vertex removals over the alive vertices (the
/// current tree root is never planned — removing it is legal but always
/// costs a full rebuild, which a *planner* shouldn't force).
pub fn plan_vertex_removals(
    live: &LiveCycleSpace,
    count: usize,
    model: RemovalModel,
    seed: Seed,
) -> Vec<VertexId> {
    let mut alive: Vec<VertexId> = live
        .alive_vertices()
        .filter(|&v| v != live.root())
        .collect();
    match model {
        RemovalModel::Random => {
            seeded_shuffle(&mut alive, seed);
        }
        RemovalModel::Targeted => {
            seeded_shuffle(&mut alive, seed);
            alive.sort_by_key(|&v| std::cmp::Reverse(alive_degree(live, v)));
        }
    }
    alive.truncate(count);
    alive
}

/// Fisher–Yates with the workspace's seeded stream.
fn seeded_shuffle<T>(items: &mut [T], seed: Seed) {
    let mut rng = seed.stream();
    for i in (1..items.len()).rev() {
        let j = (rng() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;
    use ftl_labels::wire::WireLabel;
    use ftl_labels::AncestryLabel;

    #[test]
    fn oversized_length_is_rejected_by_decoding() {
        let mut bytes = AncestryLabel { pre: 3, post: 9 }.to_wire();
        assert!(oversize_declared_bits(&mut bytes, 64));
        assert!(AncestryLabel::from_wire(&bytes).is_err());
    }

    #[test]
    fn truncation_is_rejected_by_decoding() {
        let mut bytes = AncestryLabel { pre: 3, post: 9 }.to_wire();
        let keep = bytes.len() - 1;
        truncate_record(&mut bytes, keep);
        assert!(AncestryLabel::from_wire(&bytes).is_err());
    }

    #[test]
    fn planners_are_deterministic_and_distinct() {
        let g = generators::grid(5, 5);
        let live = LiveCycleSpace::new(&g, 4, Seed::new(1)).unwrap();
        for model in [RemovalModel::Random, RemovalModel::Targeted] {
            let a = plan_edge_removals(&live, 6, model, Seed::new(9));
            let b = plan_edge_removals(&live, 6, model, Seed::new(9));
            assert_eq!(a, b);
            let mut dedup = a.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 6, "{model:?} plan repeats edges");
        }
        let vs = plan_vertex_removals(&live, 4, RemovalModel::Targeted, Seed::new(2));
        assert_eq!(vs.len(), 4);
        assert!(!vs.contains(&live.root()));
    }

    #[test]
    fn targeted_picks_heaviest_first() {
        let g = generators::star(8); // center has degree 7
        let live = LiveCycleSpace::new(&g, 4, Seed::new(3)).unwrap();
        let center = VertexId::new(0);
        if live.root() != center {
            let vs = plan_vertex_removals(&live, 1, RemovalModel::Targeted, Seed::new(4));
            assert_eq!(vs, vec![center]);
        }
        // Every edge of a star touches the center, so any targeted edge
        // plan is "heaviest" trivially; just check shape.
        let es = plan_edge_removals(&live, 3, RemovalModel::Targeted, Seed::new(5));
        assert_eq!(es.len(), 3);
    }
}
