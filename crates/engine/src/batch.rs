//! Batched fault-set decoding: one GF(2) elimination per fault set, a
//! cheap parity test per query.
//!
//! # The null-space reformulation
//!
//! The per-query decoder (Lemma 3.5) eliminates the augmented columns
//! `φ′(e) = (p_s(e), p_t(e), φ(e))` for every query, because the two prefix
//! bits depend on `(s, t)`. But only those two bits do — the `φ(e)` part is
//! query-independent. Rearranging:
//!
//! `s, t` are separated iff some `F′ ⊆ F` has `⊕_{e∈F′} φ(e) = 0` and
//! `|F′ ∩ D(s,t)|` odd, where `D(s,t)` is the set of faults `e` with
//! `on_s(e) ≠ on_t(e)` (exactly one endpoint of the query below the tree
//! edge). The subsets with `⊕φ = 0` form the **null space** of the `φ`
//! columns, and the parity `|F′ ∩ D|` is linear over GF(2) — so it is odd
//! for *some* null-space element iff it is odd for some **generator**.
//!
//! Hence one elimination per fault set produces `f − rank` null-space
//! generators (collected for free from the dependent inserts of
//! [`ftl_gf2::Basis::insert_with`]), and every query against that fault set
//! is `f` ancestry checks plus one AND-popcount per generator —
//! `O(f²/64)` words instead of a fresh `O(f²·(f+log n)/64)` elimination.
//! A separating generator is itself the disconnecting cut certificate `F′`.

use crate::store::{DecodedSidecar, StoreError, StoreKey};
use ftl_cycle_space::{CycleSpaceEdgeLabel, CycleSpaceVertexLabel};
use ftl_gf2::{Basis, BitVec, DecodeScratch};
use ftl_graph::EdgeId;
use ftl_labels::AncestryLabel;

/// One connectivity query against a registered fault set.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct ConnQuery {
    /// Source vertex.
    pub s: ftl_graph::VertexId,
    /// Target vertex.
    pub t: ftl_graph::VertexId,
    /// Index into the request's fault-set list.
    pub fault_set: usize,
}

/// A fault set after its one-time elimination: the null-space generators of
/// its `φ` columns plus, for each **tree** fault, the precomputed child
/// ancestry interval. Everything queries need; nothing per-query remains to
/// eliminate or decode.
#[derive(Debug, Clone)]
pub struct EliminatedFaultSet {
    /// Fault edge ids, sorted ascending (the canonical order).
    edge_ids: Vec<EdgeId>,
    /// `(position in edge_ids, child pre, child post)` of the tree faults —
    /// see `tree_child_interval_of` in [`crate::store`] for why one child
    /// interval captures the whole `on_root_path_of` test.
    tree_intervals: Vec<(u32, u32, u32)>,
    /// Null-space generators over positions in `edge_ids`.
    null_gens: Vec<BitVec>,
    /// Rank of the `φ` columns.
    rank: usize,
}

impl EliminatedFaultSet {
    /// Runs the one-time elimination. `labels[i]` must be the label of
    /// `edge_ids[i]`, with `edge_ids` sorted ascending and distinct.
    pub fn eliminate(edge_ids: Vec<EdgeId>, labels: Vec<CycleSpaceEdgeLabel>) -> Self {
        assert_eq!(edge_ids.len(), labels.len(), "ids/labels misaligned");
        debug_assert!(
            edge_ids.windows(2).all(|w| w[0] < w[1]),
            "ids not canonical"
        );
        let f = labels.len();
        let mut null_gens = Vec::new();
        let mut rank = 0;
        let mut tree_intervals = Vec::new();
        if f > 0 {
            let b = labels[0].phi.len();
            let mut basis = Basis::new(b, f);
            let mut scratch = DecodeScratch::new();
            for (i, l) in labels.iter().enumerate() {
                if basis.insert_with(&l.phi, &mut scratch) {
                    rank += 1;
                } else {
                    null_gens.push(scratch.combo().clone());
                }
                if let Some((pre, post)) = crate::store::tree_child_interval_of(l) {
                    tree_intervals.push((i as u32, pre, post));
                }
            }
        }
        EliminatedFaultSet {
            edge_ids,
            tree_intervals,
            null_gens,
            rank,
        }
    }

    /// [`EliminatedFaultSet::eliminate`] fed straight from a store's
    /// [`DecodedSidecar`]: `φ` columns are read out of the contiguous
    /// column bank and the tree intervals were precomputed at freeze time,
    /// so the elimination touches no `WireReader` and materializes no
    /// [`CycleSpaceEdgeLabel`]s.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Missing`] if any fault edge has no decoded
    /// record in the sidecar (callers fall back to the wire path).
    pub fn eliminate_from_sidecar(
        edge_ids: Vec<EdgeId>,
        sidecar: &DecodedSidecar,
    ) -> Result<Self, StoreError> {
        debug_assert!(
            edge_ids.windows(2).all(|w| w[0] < w[1]),
            "ids not canonical"
        );
        let f = edge_ids.len();
        let mut null_gens = Vec::new();
        let mut rank = 0;
        let mut tree_intervals = Vec::new();
        if f > 0 {
            let b = sidecar.phi_width();
            let mut basis = Basis::new(b, f);
            let mut scratch = DecodeScratch::new();
            let mut col = BitVec::zeros(0);
            for (i, &e) in edge_ids.iter().enumerate() {
                if !sidecar.read_phi_into(e, &mut col) {
                    return Err(StoreError::Missing(StoreKey::edge(e)));
                }
                if basis.insert_with(&col, &mut scratch) {
                    rank += 1;
                } else {
                    null_gens.push(scratch.combo().clone());
                }
                if let Some((pre, post)) = sidecar.tree_child_interval(e) {
                    tree_intervals.push((i as u32, pre, post));
                }
            }
        }
        Ok(EliminatedFaultSet {
            edge_ids,
            tree_intervals,
            null_gens,
            rank,
        })
    }

    /// Number of faults.
    pub fn num_faults(&self) -> usize {
        self.edge_ids.len()
    }

    /// Rank of the eliminated `φ` columns.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of null-space generators (`num_faults − rank`).
    pub fn num_null_generators(&self) -> usize {
        self.null_gens.len()
    }

    /// The canonical (sorted) fault edge ids.
    pub fn edge_ids(&self) -> &[EdgeId] {
        &self.edge_ids
    }

    /// Approximate resident size in bytes (for cache accounting).
    pub fn resident_bytes(&self) -> usize {
        self.null_gens.len() * (self.edge_ids.len() / 8 + 24)
            + self.edge_ids.len() * 4
            + self.tree_intervals.len() * 12
    }

    /// Answers one query: returns the index of a separating null-space
    /// generator, or `None` when `s` and `t` stay connected (w.h.p.).
    ///
    /// `diff` is caller-owned scratch for the `D(s, t)` membership vector —
    /// reused across queries, so the test allocates nothing.
    pub fn separating_generator(
        &self,
        s: &CycleSpaceVertexLabel,
        t: &CycleSpaceVertexLabel,
        diff: &mut BitVec,
    ) -> Option<usize> {
        self.separating_generator_anc(&s.anc, &t.anc, diff)
    }

    /// [`EliminatedFaultSet::separating_generator`] on bare ancestry
    /// intervals — the zero-decode hot path: one containment test per
    /// **tree** fault (non-tree faults were dropped at elimination time)
    /// and one AND-popcount per generator.
    // ftl-analyzer: hot-path
    pub fn separating_generator_anc(
        &self,
        s: &AncestryLabel,
        t: &AncestryLabel,
        diff: &mut BitVec,
    ) -> Option<usize> {
        if s == t || self.null_gens.is_empty() {
            return None;
        }
        diff.reset_zeroed(self.edge_ids.len());
        for &(i, pre, post) in &self.tree_intervals {
            let on_s = pre <= s.pre && s.post <= post;
            let on_t = pre <= t.pre && t.post <= post;
            if on_s != on_t {
                diff.set(i as usize, true);
            }
        }
        self.null_gens
            .iter()
            .position(|g| g.count_ones_and(diff) % 2 == 1)
    }

    /// Whether `s` and `t` are connected in `G \ F` (w.h.p.).
    pub fn is_connected(
        &self,
        s: &CycleSpaceVertexLabel,
        t: &CycleSpaceVertexLabel,
        diff: &mut BitVec,
    ) -> bool {
        self.separating_generator(s, t, diff).is_none()
    }

    /// The disconnecting cut `F′` witnessed by generator `gen`, as edge ids.
    pub fn certificate(&self, gen: usize) -> Vec<EdgeId> {
        self.null_gens[gen]
            .ones()
            .map(|i| self.edge_ids[i])
            .collect()
    }
}

/// The canonical hash of a fault set: order-insensitive (the slice must be
/// sorted), collision-resistant enough to key the elimination cache.
pub fn canonical_fault_hash(sorted_ids: &[EdgeId]) -> u64 {
    // SplitMix64 absorption: mix each id into a running state.
    let mut h: u64 = 0x243F_6A88_85A3_08D3 ^ (sorted_ids.len() as u64);
    for &e in sorted_ids {
        h = ftl_seeded::splitmix64(h ^ e.index() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_cycle_space::CycleSpaceScheme;
    use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
    use ftl_graph::{generators, Graph, VertexId};
    use ftl_seeded::Seed;

    fn eliminate_for(scheme: &CycleSpaceScheme, faults: &[EdgeId]) -> EliminatedFaultSet {
        let mut ids = faults.to_vec();
        ids.sort();
        ids.dedup();
        let labels = ids.iter().map(|&e| scheme.edge_label(e)).collect();
        EliminatedFaultSet::eliminate(ids, labels)
    }

    /// The batched parity decoder must agree with the per-query eliminator
    /// on every pair, and its certificates must be genuine cuts.
    fn check_all_pairs(g: &Graph, faults: &[EdgeId], seed: u64) {
        let scheme = CycleSpaceScheme::label(g, faults.len(), Seed::new(seed)).unwrap();
        let efs = eliminate_for(&scheme, faults);
        let flabels: Vec<_> = faults.iter().map(|&e| scheme.edge_label(e)).collect();
        let mask = forbidden_mask(g, faults);
        let mut diff = BitVec::zeros(0);
        for a in 0..g.num_vertices() {
            for b in 0..g.num_vertices() {
                let (s, t) = (VertexId::new(a), VertexId::new(b));
                let sl = scheme.vertex_label(s);
                let tl = scheme.vertex_label(t);
                let truth = connected_avoiding(g, s, t, &mask);
                let eager = ftl_cycle_space::decode(&sl, &tl, &flabels);
                let batched = efs.is_connected(&sl, &tl, &mut diff);
                assert_eq!(batched, eager, "pair ({a},{b}) vs eager, faults {faults:?}");
                assert_eq!(batched, truth, "pair ({a},{b}) vs truth, faults {faults:?}");
                if let Some(gen) = efs.separating_generator(&sl, &tl, &mut diff) {
                    // The certificate must be a real separating cut: remove
                    // it from the graph and s, t must be disconnected.
                    let cut = efs.certificate(gen);
                    let cut_mask = forbidden_mask(g, &cut);
                    assert!(
                        !connected_avoiding(g, s, t, &cut_mask),
                        "certificate {cut:?} does not separate ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn path_graph_single_faults() {
        let g = generators::path(6);
        for e in 0..g.num_edges() {
            check_all_pairs(&g, &[EdgeId::new(e)], 400 + e as u64);
        }
    }

    #[test]
    fn cycle_graph_fault_pairs() {
        let g = generators::cycle(6);
        for e1 in 0..6 {
            for e2 in (e1 + 1)..6 {
                check_all_pairs(&g, &[EdgeId::new(e1), EdgeId::new(e2)], 41);
            }
        }
    }

    #[test]
    fn grid_random_fault_sets() {
        let g = generators::grid(3, 4);
        let mut state = 0xE1E1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let f = 1 + (next() as usize) % 6;
            let mut faults = Vec::new();
            while faults.len() < f {
                let e = EdgeId::new((next() as usize) % g.num_edges());
                if !faults.contains(&e) {
                    faults.push(e);
                }
            }
            check_all_pairs(&g, &faults, 9000 + trial);
        }
    }

    #[test]
    fn empty_fault_set_always_connected() {
        let g = generators::grid(2, 3);
        let scheme = CycleSpaceScheme::label(&g, 0, Seed::new(2)).unwrap();
        let efs = EliminatedFaultSet::eliminate(vec![], vec![]);
        let mut diff = BitVec::zeros(0);
        assert_eq!(efs.num_null_generators(), 0);
        assert!(efs.is_connected(
            &scheme.vertex_label(VertexId::new(0)),
            &scheme.vertex_label(VertexId::new(5)),
            &mut diff,
        ));
    }

    #[test]
    fn rank_and_generator_counts_add_up() {
        let g = generators::cycle(8);
        let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(5)).unwrap();
        let faults: Vec<EdgeId> = (0..4).map(EdgeId::new).collect();
        let efs = eliminate_for(&scheme, &faults);
        assert_eq!(efs.num_faults(), 4);
        assert_eq!(efs.rank() + efs.num_null_generators(), 4);
        assert!(efs.resident_bytes() > 0);
    }

    #[test]
    fn canonical_hash_is_order_stable_and_discriminating() {
        let a = [EdgeId::new(1), EdgeId::new(5), EdgeId::new(9)];
        let b = [EdgeId::new(1), EdgeId::new(5), EdgeId::new(9)];
        let c = [EdgeId::new(1), EdgeId::new(5), EdgeId::new(10)];
        let d = [EdgeId::new(1), EdgeId::new(5)];
        assert_eq!(canonical_fault_hash(&a), canonical_fault_hash(&b));
        assert_ne!(canonical_fault_hash(&a), canonical_fault_hash(&c));
        assert_ne!(canonical_fault_hash(&a), canonical_fault_hash(&d));
        assert_ne!(canonical_fault_hash(&[]), canonical_fault_hash(&d));
    }
}
