//! Scenario workloads for the engine: fault-model generators, multi-round
//! churn, and a driver that reports throughput, per-query latency,
//! reachability, and (optionally) routed stretch — the DRFE-R-style
//! experiment loop, aimed at the engine instead of a bare decoder.

use crate::batch::ConnQuery;
use crate::engine::{BatchRequest, BatchResponse, Engine, EngineError};
use crate::epoch::LiveStore;
use crate::inject::{plan_edge_removals, plan_vertex_removals, RemovalModel};
use crate::par::{ParEngine, WorkerStats};
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{EdgeId, Graph, VertexId};
use ftl_routing::FtRoutingScheme;
use ftl_seeded::Seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;

/// Anything the scenario driver can push batches through: the serial
/// [`Engine`] or the multi-worker [`ParEngine`]. The driver builds the
/// same request stream either way (it draws from its own RNG), so two runs
/// with the same config differ only in who served them — which is exactly
/// what the differential verification in the benches compares.
pub trait QueryEngine {
    /// Serves one batch.
    ///
    /// # Errors
    ///
    /// Propagates the engine's batch failure.
    fn run_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError>;

    /// Cumulative per-worker counters (empty for single-worker engines
    /// that do not track them).
    fn worker_stats(&self) -> Vec<WorkerStats> {
        Vec::new()
    }
}

impl QueryEngine for Engine {
    fn run_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError> {
        self.execute(req)
    }
}

impl QueryEngine for ParEngine {
    fn run_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError> {
        self.execute(req)
    }

    fn worker_stats(&self) -> Vec<WorkerStats> {
        ParEngine::worker_stats(self).to_vec()
    }
}

/// The nearest-rank percentile of an **ascending-sorted** sample array:
/// the smallest sample with at least `⌈p·n⌉` samples at or below it
/// (0 for an empty array; `p` is a fraction, e.g. `0.99`).
///
/// Nearest-rank never interpolates and never picks below the true rank —
/// in particular `p = 0.99` over a handful of samples returns the maximum
/// rather than silently truncating toward the median, which is how an
/// earlier index formula reported a p99 *below* the mean.
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// How a round's fault sets are drawn.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum FaultModel {
    /// Faults sampled uniformly over the edge set.
    Uniform,
    /// Faults concentrated on edges incident to the highest-degree
    /// vertices — a targeted attack on the hubs.
    HighDegree,
}

/// One scenario's shape.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario name (appears in reports).
    pub name: String,
    /// Faults per fault set.
    pub f: usize,
    /// Rounds of churn.
    pub rounds: usize,
    /// Fault-set variants per round (variant 0 is the round's base set;
    /// further variants swap one fault each — the "nearby fault set"
    /// traffic that makes the elimination cache earn its keep).
    pub fault_sets_per_round: usize,
    /// Queries per fault set per round.
    pub queries_per_fault_set: usize,
    /// Fraction of the base fault set replaced between rounds
    /// (0.0 = static faults, 1.0 = fresh set each round).
    pub churn: f64,
    /// The fault generator.
    pub model: FaultModel,
    /// RNG seed.
    pub seed: u64,
    /// Check every answer against a graph traversal and count mismatches
    /// (slow; for correctness-focused runs).
    pub verify: bool,
    /// Routed s–t pairs sampled per round for stretch measurement through a
    /// fault-tolerant routing scheme (0 = skip).
    pub stretch_samples: usize,
}

impl ScenarioConfig {
    /// A small default shape: uniform faults, light churn, no verification.
    pub fn new(name: &str, f: usize) -> Self {
        ScenarioConfig {
            name: name.to_string(),
            f,
            rounds: 5,
            fault_sets_per_round: 4,
            queries_per_fault_set: 32,
            churn: 0.25,
            model: FaultModel::Uniform,
            seed: 0xF17,
            verify: false,
            stretch_samples: 0,
        }
    }
}

/// Per-round observations.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index.
    pub round: usize,
    /// Queries answered this round.
    pub queries: usize,
    /// Fraction of queries answered "connected".
    pub reachable_fraction: f64,
    /// Wall time of the round's batches, nanoseconds.
    pub elapsed_ns: u64,
    /// Disagreements with ground truth (only counted when verifying).
    pub mismatches: usize,
}

/// One worker's share of a scenario run (derived from the engine's
/// cumulative [`WorkerStats`] delta across the run).
#[derive(Debug, Clone)]
pub struct WorkerSummary {
    /// Worker index.
    pub worker: usize,
    /// Queries this worker served during the run.
    pub queries: u64,
    /// Wall time this worker spent serving, nanoseconds.
    pub busy_ns: u64,
    /// This worker's own serving rate over its busy time.
    pub throughput_qps: f64,
}

/// Routed-stretch summary over the sampled pairs.
#[derive(Debug, Clone)]
pub struct StretchStats {
    /// Delivered routes measured.
    pub samples: usize,
    /// Mean observed stretch (routed weight / optimal weight).
    pub mean: f64,
    /// Worst observed stretch.
    pub max: f64,
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Workload graph name.
    pub graph: String,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Faults per set.
    pub f: usize,
    /// Per-round observations.
    pub rounds: Vec<RoundReport>,
    /// Total queries across rounds.
    pub total_queries: usize,
    /// Total batch wall time, nanoseconds.
    pub total_elapsed_ns: u64,
    /// Queries per second over the batch wall time.
    pub throughput_qps: f64,
    /// Mean per-query latency, nanoseconds.
    pub latency_mean_ns: f64,
    /// Median of the per-batch per-query latencies, nanoseconds.
    pub latency_p50_ns: f64,
    /// 99th percentile of the per-batch per-query latencies, nanoseconds.
    pub latency_p99_ns: f64,
    /// Fraction of all queries answered "connected".
    pub reachable_fraction: f64,
    /// Eliminations actually run.
    pub eliminations: usize,
    /// Fault sets served from the cache.
    pub cache_hits: usize,
    /// Ground-truth disagreements (0 unless verifying).
    pub mismatches: usize,
    /// Routed stretch, when sampled.
    pub stretch: Option<StretchStats>,
    /// Per-worker shares when the engine is multi-worker (empty for the
    /// serial engine).
    pub workers: Vec<WorkerSummary>,
}

impl ScenarioReport {
    /// Serializes the report as a JSON object (hand-rolled; the workspace
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", self.name));
        s.push_str(&format!("      \"graph\": \"{}\",\n", self.graph));
        s.push_str(&format!(
            "      \"n\": {}, \"m\": {}, \"f\": {},\n",
            self.n, self.m, self.f
        ));
        s.push_str(&format!(
            "      \"total_queries\": {},\n",
            self.total_queries
        ));
        s.push_str(&format!(
            "      \"throughput_qps\": {:.0},\n",
            self.throughput_qps
        ));
        s.push_str(&format!(
            "      \"latency_mean_ns\": {:.0},\n",
            self.latency_mean_ns
        ));
        s.push_str(&format!(
            "      \"latency_p50_ns\": {:.0},\n",
            self.latency_p50_ns
        ));
        s.push_str(&format!(
            "      \"latency_p99_ns\": {:.0},\n",
            self.latency_p99_ns
        ));
        s.push_str(&format!(
            "      \"reachable_fraction\": {:.4},\n",
            self.reachable_fraction
        ));
        s.push_str(&format!("      \"eliminations\": {},\n", self.eliminations));
        s.push_str(&format!("      \"cache_hits\": {},\n", self.cache_hits));
        s.push_str(&format!("      \"mismatches\": {},\n", self.mismatches));
        match &self.stretch {
            None => s.push_str("      \"stretch\": null,\n"),
            Some(st) => s.push_str(&format!(
                "      \"stretch\": {{ \"samples\": {}, \"mean\": {:.2}, \"max\": {:.2} }},\n",
                st.samples, st.mean, st.max
            )),
        }
        s.push_str("      \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            s.push_str(&format!(
                "{}{{ \"worker\": {}, \"queries\": {}, \"busy_ns\": {}, \"throughput_qps\": {:.0} }}",
                if i == 0 { "" } else { ", " },
                w.worker,
                w.queries,
                w.busy_ns,
                w.throughput_qps
            ));
        }
        s.push_str("],\n");
        s.push_str("      \"rounds\": [\n");
        for (i, r) in self.rounds.iter().enumerate() {
            s.push_str(&format!(
                "        {{ \"round\": {}, \"queries\": {}, \"reachable_fraction\": {:.4}, \"elapsed_ns\": {}, \"mismatches\": {} }}{}\n",
                r.round,
                r.queries,
                r.reachable_fraction,
                r.elapsed_ns,
                r.mismatches,
                if i + 1 < self.rounds.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str("    }");
        s
    }
}

/// Draws up to `f` distinct faults under the model, avoiding `exclude`.
/// Returns fewer when the graph cannot supply `f` fresh edges.
fn draw_faults(
    g: &Graph,
    f: usize,
    model: FaultModel,
    rng: &mut StdRng,
    exclude: &HashSet<EdgeId>,
) -> Vec<EdgeId> {
    let fresh_edges = g.num_edges().saturating_sub(exclude.len());
    let want = f.min(fresh_edges);
    let mut seen = exclude.clone();
    let mut out = Vec::with_capacity(want);
    match model {
        FaultModel::Uniform => {
            while out.len() < want {
                let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
                if seen.insert(e) {
                    out.push(e);
                }
            }
        }
        FaultModel::HighDegree => {
            // Rank vertices by degree; fail random edges incident to the
            // top hubs until the budget is spent. Walking every hub
            // guarantees termination even when the top hubs' edges are all
            // excluded.
            let mut by_degree: Vec<VertexId> = g.vertices().collect();
            by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            'outer: for &hub in &by_degree {
                let mut ports: Vec<EdgeId> = g.neighbors(hub).iter().map(|nb| nb.edge).collect();
                // Shuffle the hub's ports so repeated draws vary.
                for i in (1..ports.len()).rev() {
                    ports.swap(i, rng.gen_range(0..=i));
                }
                for e in ports {
                    if seen.insert(e) {
                        out.push(e);
                        if out.len() == want {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Replaces `ceil(churn * f)` members of `base` with fresh draws.
fn churn_faults(
    g: &Graph,
    base: &[EdgeId],
    churn: f64,
    model: FaultModel,
    rng: &mut StdRng,
) -> Vec<EdgeId> {
    let f = base.len();
    let replace = ((churn * f as f64).ceil() as usize).min(f);
    if replace == 0 {
        return base.to_vec();
    }
    let mut out = base.to_vec();
    // Evict `replace` random members…
    for _ in 0..replace {
        out.swap_remove(rng.gen_range(0..out.len()));
    }
    // …and refill from the model, avoiding the survivors.
    let survivors: HashSet<EdgeId> = out.iter().copied().collect();
    out.extend(draw_faults(g, f - out.len(), model, rng, &survivors));
    out
}

/// A fault-set variant: the base with one member swapped.
fn variant_of(g: &Graph, base: &[EdgeId], rng: &mut StdRng) -> Vec<EdgeId> {
    if base.is_empty() || g.num_edges() <= base.len() {
        return base.to_vec();
    }
    let mut out = base.to_vec();
    let at = rng.gen_range(0..out.len());
    loop {
        let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
        if !out.contains(&e) {
            out[at] = e;
            return out;
        }
    }
}

/// Runs one scenario against an engine (serial [`Engine`] or multi-worker
/// [`ParEngine`] — anything implementing [`QueryEngine`]), returning the
/// full report. The request stream depends only on `cfg`, never on the
/// engine, so serial and parallel runs of the same config see identical
/// traffic.
///
/// `routing` supplies the stretch measurements when
/// [`ScenarioConfig::stretch_samples`] is non-zero; pass `None` to skip.
///
/// # Errors
///
/// Propagates any [`EngineError`] from the batches.
pub fn run_scenario(
    graph: &Graph,
    graph_name: &str,
    engine: &mut impl QueryEngine,
    routing: Option<&FtRoutingScheme>,
    cfg: &ScenarioConfig,
) -> Result<ScenarioReport, EngineError> {
    let workers_before = engine.worker_stats();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut base = draw_faults(graph, cfg.f, cfg.model, &mut rng, &HashSet::new());
    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut batch_latencies: Vec<f64> = Vec::new();
    let mut total_queries = 0usize;
    let mut total_elapsed = 0u64;
    let mut total_reachable = 0usize;
    let mut eliminations = 0usize;
    let mut cache_hits = 0usize;
    let mut mismatches_total = 0usize;
    let mut stretch_samples = 0usize;
    let mut stretch_sum = 0.0f64;
    let mut stretch_max = 0.0f64;

    for round in 0..cfg.rounds {
        if round > 0 {
            base = churn_faults(graph, &base, cfg.churn, cfg.model, &mut rng);
        }
        // One request per fault set: the per-request wall time over its
        // query count is one per-query latency sample.
        let mut round_elapsed = 0u64;
        let mut round_queries = 0usize;
        let mut round_reachable = 0usize;
        let mut round_mismatches = 0usize;
        for v in 0..cfg.fault_sets_per_round {
            let fs = if v == 0 {
                base.clone()
            } else {
                variant_of(graph, &base, &mut rng)
            };
            let queries: Vec<ConnQuery> = (0..cfg.queries_per_fault_set)
                .map(|_| ConnQuery {
                    s: VertexId::new(rng.gen_range(0..graph.num_vertices())),
                    t: VertexId::new(rng.gen_range(0..graph.num_vertices())),
                    fault_set: 0,
                })
                .collect();
            let req = BatchRequest {
                fault_sets: vec![fs.clone()],
                queries,
            };
            let start = Instant::now();
            let resp = engine.run_batch(&req)?;
            let elapsed = start.elapsed().as_nanos() as u64;
            round_elapsed += elapsed;
            round_queries += resp.results.len();
            if !resp.results.is_empty() {
                batch_latencies.push(elapsed as f64 / resp.results.len() as f64);
            }
            eliminations += resp.stats.eliminations;
            cache_hits += resp.stats.cache_hits;
            round_reachable += resp.results.iter().filter(|r| r.connected).count();
            if cfg.verify {
                let mask = forbidden_mask(graph, &fs);
                for (q, r) in req.queries.iter().zip(&resp.results) {
                    if connected_avoiding(graph, q.s, q.t, &mask) != r.connected {
                        round_mismatches += 1;
                    }
                }
            }
        }
        if let Some(rt) = routing {
            let faults: HashSet<EdgeId> = base.iter().copied().collect();
            for _ in 0..cfg.stretch_samples {
                let s = VertexId::new(rng.gen_range(0..graph.num_vertices()));
                let t = VertexId::new(rng.gen_range(0..graph.num_vertices()));
                let out = rt.route(graph, s, t, &faults);
                if let (true, Some(opt)) = (out.delivered, out.optimal) {
                    if s != t && opt > 0 {
                        let stretch = out.weight as f64 / opt as f64;
                        stretch_samples += 1;
                        stretch_sum += stretch;
                        stretch_max = stretch_max.max(stretch);
                    }
                }
            }
        }
        total_queries += round_queries;
        total_elapsed += round_elapsed;
        total_reachable += round_reachable;
        mismatches_total += round_mismatches;
        rounds.push(RoundReport {
            round,
            queries: round_queries,
            reachable_fraction: round_reachable as f64 / round_queries.max(1) as f64,
            elapsed_ns: round_elapsed,
            mismatches: round_mismatches,
        });
    }

    batch_latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| percentile_nearest_rank(&batch_latencies, p);
    // Per-worker shares: the delta of the engine's cumulative counters
    // across this run.
    let workers_after = engine.worker_stats();
    let workers = workers_after
        .iter()
        .map(|after| {
            let before = workers_before
                .iter()
                .find(|b| b.worker == after.worker)
                .copied()
                .unwrap_or(WorkerStats {
                    worker: after.worker,
                    ..WorkerStats::default()
                });
            let queries = after.queries - before.queries;
            let busy_ns = after.busy_ns - before.busy_ns;
            WorkerSummary {
                worker: after.worker,
                queries,
                busy_ns,
                throughput_qps: queries as f64 / (busy_ns.max(1) as f64 / 1e9),
            }
        })
        .collect();
    Ok(ScenarioReport {
        name: cfg.name.clone(),
        graph: graph_name.to_string(),
        n: graph.num_vertices(),
        m: graph.num_edges(),
        f: cfg.f,
        rounds,
        total_queries,
        total_elapsed_ns: total_elapsed,
        throughput_qps: total_queries as f64 / (total_elapsed.max(1) as f64 / 1e9),
        latency_mean_ns: total_elapsed as f64 / total_queries.max(1) as f64,
        latency_p50_ns: pct(0.5),
        latency_p99_ns: pct(0.99),
        reachable_fraction: total_reachable as f64 / total_queries.max(1) as f64,
        eliminations,
        cache_hits,
        mismatches: mismatches_total,
        stretch: (stretch_samples > 0).then(|| StretchStats {
            samples: stretch_samples,
            mean: stretch_sum / stretch_samples as f64,
            max: stretch_max,
        }),
        workers,
    })
}

/// Shape of a live-churn scenario: structural removals (not just fault
/// sets) every round, served through an epoch-following engine over a
/// [`LiveStore`], with **always-on** BFS ground-truth verification — the
/// DRFE-R loop with real topology churn instead of rebuilt tables.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Scenario name (appears in reports).
    pub name: String,
    /// Rounds of churn.
    pub rounds: usize,
    /// Edges structurally removed per round (bridges are skipped).
    pub edge_removals_per_round: usize,
    /// Vertices structurally removed per round (cut vertices are skipped).
    pub vertex_removals_per_round: usize,
    /// How victims are chosen.
    pub model: RemovalModel,
    /// Transient fault sets queried per round (on top of the structural
    /// removals already baked into the epoch).
    pub fault_sets_per_round: usize,
    /// Faults per transient fault set.
    pub f: usize,
    /// Queries per fault set per round.
    pub queries_per_fault_set: usize,
    /// Seed for victim planning, fault draws, and query endpoints.
    pub seed: u64,
}

impl ChurnConfig {
    /// A small default shape: random removals, light per-round traffic.
    pub fn new(name: &str, f: usize) -> Self {
        ChurnConfig {
            name: name.to_string(),
            rounds: 8,
            edge_removals_per_round: 4,
            vertex_removals_per_round: 1,
            model: RemovalModel::Random,
            fault_sets_per_round: 3,
            f,
            queries_per_fault_set: 24,
            seed: 0xC4B2,
        }
    }
}

/// One churn round's observations — one output row.
#[derive(Debug, Clone)]
pub struct ChurnRoundReport {
    /// Round index.
    pub round: usize,
    /// Edges actually removed this round.
    pub removed_edges: usize,
    /// Vertices actually removed this round.
    pub removed_vertices: usize,
    /// Planned removals skipped (bridge / cut-vertex / already dead).
    pub skipped: usize,
    /// Epoch published at the end of the round's removals.
    pub epoch: u64,
    /// Whether any swap this round fell back to a full rebuild.
    pub full_rebuild: bool,
    /// Records re-encoded across this round's delta swaps.
    pub delta_upserts: usize,
    /// Records evicted across this round's delta swaps.
    pub delta_removals: usize,
    /// Total mutate + freeze + publish wall time this round, nanoseconds —
    /// the per-round rebuild latency.
    pub swap_ns: u64,
    /// Queries answered this round.
    pub queries: usize,
    /// Fraction answered "connected".
    pub reachable_fraction: f64,
    /// Disagreements with BFS ground truth (verification is always on).
    pub mismatches: usize,
    /// Query-serving wall time this round, nanoseconds.
    pub elapsed_ns: u64,
}

/// Everything a churn run produced.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Scenario name.
    pub name: String,
    /// Per-round rows.
    pub rounds: Vec<ChurnRoundReport>,
    /// Total queries across rounds.
    pub total_queries: usize,
    /// Total ground-truth disagreements (must be 0).
    pub mismatches: usize,
    /// Epoch current after the last round.
    pub final_epoch: u64,
    /// Rounds whose swaps all stayed on the delta path.
    pub delta_rounds: usize,
    /// Rounds where some swap fell back to a full rebuild.
    pub full_rebuild_rounds: usize,
}

impl ChurnReport {
    /// Serializes the report as a JSON object (hand-rolled; the workspace
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", self.name));
        s.push_str(&format!(
            "      \"total_queries\": {},\n",
            self.total_queries
        ));
        s.push_str(&format!("      \"mismatches\": {},\n", self.mismatches));
        s.push_str(&format!("      \"final_epoch\": {},\n", self.final_epoch));
        s.push_str(&format!(
            "      \"delta_rounds\": {}, \"full_rebuild_rounds\": {},\n",
            self.delta_rounds, self.full_rebuild_rounds
        ));
        s.push_str("      \"rounds\": [\n");
        for (i, r) in self.rounds.iter().enumerate() {
            s.push_str(&format!(
                "        {{ \"round\": {}, \"removed_edges\": {}, \"removed_vertices\": {}, \"skipped\": {}, \"epoch\": {}, \"full_rebuild\": {}, \"delta_upserts\": {}, \"delta_removals\": {}, \"swap_ns\": {}, \"queries\": {}, \"reachable_fraction\": {:.4}, \"mismatches\": {}, \"elapsed_ns\": {} }}{}\n",
                r.round,
                r.removed_edges,
                r.removed_vertices,
                r.skipped,
                r.epoch,
                r.full_rebuild,
                r.delta_upserts,
                r.delta_removals,
                r.swap_ns,
                r.queries,
                r.reachable_fraction,
                r.mismatches,
                r.elapsed_ns,
                if i + 1 < self.rounds.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str("    }");
        s
    }
}

/// Runs a live-churn scenario: every round plans removals under the
/// configured [`RemovalModel`], applies them to the [`LiveStore`] (one
/// epoch swap per removal kind), then pushes transient-fault query traffic
/// through `engine` and checks **every** answer against a BFS over the
/// surviving topology. The engine should be epoch-following (built with
/// [`Engine::over_epochs`](crate::Engine::over_epochs) or
/// [`ParEngine::over_epochs`](crate::ParEngine::over_epochs) on
/// `store.epochs()`), otherwise it keeps serving the pre-churn snapshot
/// and verification will fail.
///
/// # Errors
///
/// Propagates any [`EngineError`] from the batches.
pub fn run_churn_scenario(
    store: &mut LiveStore,
    engine: &mut impl QueryEngine,
    cfg: &ChurnConfig,
) -> Result<ChurnReport, EngineError> {
    let seed = Seed::new(cfg.seed);
    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut total_queries = 0usize;
    let mut mismatches_total = 0usize;
    let mut delta_rounds = 0usize;
    let mut full_rebuild_rounds = 0usize;
    for round in 0..cfg.rounds {
        let round_seed = seed.derive(round as u64);
        // --- structural churn: remove victims, publish epochs ---
        let edge_plan = plan_edge_removals(
            store.live(),
            cfg.edge_removals_per_round,
            cfg.model,
            round_seed.derive(1),
        );
        let (edge_swap, edge_skipped) = store.remove_edges(&edge_plan)?;
        let vertex_plan = plan_vertex_removals(
            store.live(),
            cfg.vertex_removals_per_round,
            cfg.model,
            round_seed.derive(2),
        );
        let (vertex_swap, vertex_skipped) = store.remove_vertices(&vertex_plan)?;
        let skipped = edge_skipped.len() + vertex_skipped.len();
        let mut full_rebuild = false;
        let mut delta_upserts = 0usize;
        let mut delta_removals = 0usize;
        for swap in [&edge_swap, &vertex_swap] {
            match swap.path {
                crate::epoch::SwapPath::Delta { upserts, removals } => {
                    delta_upserts += upserts;
                    delta_removals += removals;
                }
                crate::epoch::SwapPath::FullRebuild => full_rebuild = true,
            }
        }
        if full_rebuild {
            full_rebuild_rounds += 1;
        } else {
            delta_rounds += 1;
        }
        // --- traffic over the survivors ---
        let live = store.live();
        let alive_edges: Vec<EdgeId> = live.alive_edges().collect();
        let alive_vertices: Vec<VertexId> = live.alive_vertices().collect();
        let mut rng = round_seed.derive(3).stream();
        let mut fault_sets = Vec::with_capacity(cfg.fault_sets_per_round);
        let mut queries = Vec::with_capacity(cfg.fault_sets_per_round * cfg.queries_per_fault_set);
        for v in 0..cfg.fault_sets_per_round {
            let mut fs = Vec::with_capacity(cfg.f);
            while fs.len() < cfg.f.min(alive_edges.len()) {
                let e = alive_edges[(rng() % alive_edges.len() as u64) as usize];
                if !fs.contains(&e) {
                    fs.push(e);
                }
            }
            fault_sets.push(fs);
            for _ in 0..cfg.queries_per_fault_set {
                queries.push(ConnQuery {
                    s: alive_vertices[(rng() % alive_vertices.len() as u64) as usize],
                    t: alive_vertices[(rng() % alive_vertices.len() as u64) as usize],
                    fault_set: v,
                });
            }
        }
        let req = BatchRequest {
            fault_sets,
            queries,
        };
        let start = Instant::now();
        let resp = engine.run_batch(&req)?;
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        // --- always-on ground truth: BFS over alive topology minus the
        // query's transient faults; every answer must agree ---
        let mut round_mismatches = 0usize;
        let mut reachable = 0usize;
        let mut mask = live.forbidden_base();
        for (fi, fs) in req.fault_sets.iter().enumerate() {
            for &e in fs {
                mask[e.index()] = true;
            }
            for (q, r) in req
                .queries
                .iter()
                .zip(&resp.results)
                .filter(|(q, _)| q.fault_set == fi)
            {
                if r.connected {
                    reachable += 1;
                }
                if connected_avoiding(live.graph(), q.s, q.t, &mask) != r.connected {
                    round_mismatches += 1;
                }
            }
            for &e in fs {
                mask[e.index()] = false;
            }
        }
        total_queries += resp.results.len();
        mismatches_total += round_mismatches;
        rounds.push(ChurnRoundReport {
            round,
            removed_edges: edge_plan.len() - edge_skipped.len(),
            removed_vertices: vertex_plan.len() - vertex_skipped.len(),
            skipped,
            epoch: vertex_swap.epoch.max(edge_swap.epoch),
            full_rebuild,
            delta_upserts,
            delta_removals,
            swap_ns: edge_swap.elapsed_ns + vertex_swap.elapsed_ns,
            queries: resp.results.len(),
            reachable_fraction: reachable as f64 / resp.results.len().max(1) as f64,
            mismatches: round_mismatches,
            elapsed_ns,
        });
    }
    Ok(ChurnReport {
        name: cfg.name.clone(),
        rounds,
        total_queries,
        mismatches: mismatches_total,
        final_epoch: store.epochs().current().number(),
        delta_rounds,
        full_rebuild_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ftl_cycle_space::CycleSpaceScheme;
    use ftl_graph::generators;
    use ftl_seeded::Seed;

    fn engine_for(g: &Graph, f: usize) -> Engine {
        let scheme = CycleSpaceScheme::label(g, f, Seed::new(77)).unwrap();
        Engine::from_cycle_space(&scheme, EngineConfig::default()).unwrap()
    }

    #[test]
    fn nearest_rank_percentiles_on_known_distribution() {
        // 1..=100: the nearest-rank pN of n=100 samples is exactly N.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_nearest_rank(&samples, 0.50), 50.0);
        assert_eq!(percentile_nearest_rank(&samples, 0.99), 99.0);
        assert_eq!(percentile_nearest_rank(&samples, 1.0), 100.0);
        assert_eq!(percentile_nearest_rank(&samples, 0.001), 1.0);
        assert_eq!(percentile_nearest_rank(&samples, 0.0), 1.0);
        // Small arrays: p99 of six samples is the maximum — the old
        // truncating index formula returned the 5th-smallest here, which
        // is how a p99 below the mean got reported.
        let six = [10.0, 11.0, 12.0, 13.0, 14.0, 500.0];
        assert_eq!(percentile_nearest_rank(&six, 0.99), 500.0);
        assert_eq!(percentile_nearest_rank(&six, 0.5), 12.0);
        // p99 can no longer fall below the median for any sample array.
        assert!(percentile_nearest_rank(&six, 0.99) >= percentile_nearest_rank(&six, 0.5));
        assert_eq!(percentile_nearest_rank(&[], 0.99), 0.0);
        assert_eq!(percentile_nearest_rank(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn parallel_scenario_reports_workers_and_matches_serial_reachability() {
        use crate::par::ParEngine;
        let g = generators::grid(4, 4);
        let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(77)).unwrap();
        let mut cfg = ScenarioConfig::new("par-uniform", 4);
        cfg.rounds = 3;
        cfg.fault_sets_per_round = 2;
        cfg.queries_per_fault_set = 40;
        cfg.verify = true;
        let mut par = ParEngine::from_cycle_space(&scheme, EngineConfig::default(), 3).unwrap();
        let par_report = run_scenario(&g, "grid-4x4", &mut par, None, &cfg).unwrap();
        let mut serial = par.serial_engine();
        let serial_report = run_scenario(&g, "grid-4x4", &mut serial, None, &cfg).unwrap();
        assert_eq!(par_report.mismatches, 0);
        assert_eq!(serial_report.mismatches, 0);
        // Identical traffic, identical aggregate reachability.
        assert_eq!(
            par_report.reachable_fraction,
            serial_report.reachable_fraction
        );
        assert_eq!(par_report.workers.len(), 3);
        let total: u64 = par_report.workers.iter().map(|w| w.queries).sum();
        assert_eq!(total as usize, par_report.total_queries);
        assert!(serial_report.workers.is_empty());
        let json = par_report.to_json();
        assert!(json.contains("\"workers\": [{ \"worker\": 0"));
    }

    #[test]
    fn verified_uniform_churn_run_has_no_mismatches() {
        let g = generators::grid(4, 4);
        let mut engine = engine_for(&g, 4);
        let mut cfg = ScenarioConfig::new("uniform-churn", 4);
        cfg.rounds = 4;
        cfg.fault_sets_per_round = 3;
        cfg.queries_per_fault_set = 20;
        cfg.churn = 0.5;
        cfg.verify = true;
        let report = run_scenario(&g, "grid-4x4", &mut engine, None, &cfg).unwrap();
        assert_eq!(report.mismatches, 0, "engine disagreed with ground truth");
        assert_eq!(report.total_queries, 4 * 3 * 20);
        assert!(report.reachable_fraction > 0.0 && report.reachable_fraction <= 1.0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.latency_p50_ns <= report.latency_p99_ns);
        assert_eq!(report.rounds.len(), 4);
    }

    #[test]
    fn high_degree_attack_reduces_reachability_below_uniform_on_star() {
        // On a star, hub-targeted faults must disconnect more pairs than
        // the same number of uniform faults does on a richer graph; at the
        // very least the run must complete and report sane numbers.
        let g = generators::star(20);
        let mut engine = engine_for(&g, 6);
        let mut cfg = ScenarioConfig::new("hub-attack", 6);
        cfg.model = FaultModel::HighDegree;
        cfg.rounds = 3;
        cfg.verify = true;
        let report = run_scenario(&g, "star-20", &mut engine, None, &cfg).unwrap();
        assert_eq!(report.mismatches, 0);
        assert!(
            report.reachable_fraction < 1.0,
            "hub faults must cut someone off"
        );
    }

    #[test]
    fn static_faults_hit_the_cache_across_rounds() {
        let g = generators::grid(4, 4);
        let mut engine = engine_for(&g, 3);
        let mut cfg = ScenarioConfig::new("static", 3);
        cfg.rounds = 5;
        cfg.fault_sets_per_round = 1;
        cfg.churn = 0.0;
        let report = run_scenario(&g, "grid-4x4", &mut engine, None, &cfg).unwrap();
        // Round 1 eliminates; rounds 2..5 reuse the cached basis.
        assert_eq!(report.eliminations, 1);
        assert_eq!(report.cache_hits, 4);
    }

    #[test]
    fn churn_scenario_verifies_every_round_against_ground_truth() {
        let g = generators::grid(6, 6);
        let mut store = LiveStore::new(&g, 4, Seed::new(0xC0A1), EngineConfig::default()).unwrap();
        let mut engine = Engine::over_epochs(
            std::sync::Arc::clone(store.epochs()),
            EngineConfig::default(),
        );
        let mut cfg = ChurnConfig::new("grid-churn", 3);
        cfg.rounds = 5;
        let report = run_churn_scenario(&mut store, &mut engine, &cfg).unwrap();
        assert_eq!(report.mismatches, 0, "engine disagreed with BFS truth");
        assert_eq!(report.rounds.len(), 5);
        assert!(report.final_epoch > 1, "no epoch was ever published");
        assert!(report.total_queries > 0);
        let removed: usize = report
            .rounds
            .iter()
            .map(|r| r.removed_edges + r.removed_vertices)
            .sum();
        assert!(removed > 0, "churn rounds removed nothing");
        assert!(report.rounds.iter().all(|r| r.mismatches == 0));
        let json = report.to_json();
        assert!(json.contains("\"swap_ns\""));
        assert!(json.contains("\"final_epoch\""));
    }

    #[test]
    fn churn_scenario_targeted_model_stays_correct() {
        let g = generators::barabasi_albert(60, 3, &mut StdRng::seed_from_u64(7));
        let mut store = LiveStore::new(&g, 4, Seed::new(0xC0A2), EngineConfig::default()).unwrap();
        let mut engine = crate::par::ParEngine::over_epochs(
            std::sync::Arc::clone(store.epochs()),
            EngineConfig::default(),
            3,
        );
        let mut cfg = ChurnConfig::new("ba-targeted-churn", 3);
        cfg.rounds = 4;
        cfg.model = RemovalModel::Targeted;
        cfg.edge_removals_per_round = 6;
        cfg.vertex_removals_per_round = 2;
        let report = run_churn_scenario(&mut store, &mut engine, &cfg).unwrap();
        assert_eq!(report.mismatches, 0);
        assert!(report.final_epoch > 1);
    }

    #[test]
    fn stale_engine_fails_churn_verification() {
        // An engine pinned to epoch 1 (NOT epoch-following) keeps serving
        // the pre-churn labels; the always-on verification must notice.
        let g = generators::complete(10);
        let mut store = LiveStore::new(&g, 3, Seed::new(0xC0A3), EngineConfig::default()).unwrap();
        let stale_store = std::sync::Arc::clone(store.epochs().current().store());
        let mut stale = Engine::with_shared(stale_store, EngineConfig::default());
        let mut cfg = ChurnConfig::new("stale", 3);
        cfg.rounds = 4;
        cfg.edge_removals_per_round = 8;
        cfg.vertex_removals_per_round = 2;
        // The stale engine answers from the dead topology; if the run
        // completes at all, the truth check must have caught it.
        if let Ok(r) = run_churn_scenario(&mut store, &mut stale, &cfg) {
            assert!(r.mismatches > 0, "stale snapshot escaped detection");
        }
    }

    #[test]
    fn stretch_measured_through_routing_scheme() {
        let g = generators::grid(3, 3);
        let mut engine = engine_for(&g, 2);
        let routing = FtRoutingScheme::new(&g, ftl_routing::RoutingParams::new(2, 2), Seed::new(5));
        let mut cfg = ScenarioConfig::new("stretch", 2);
        cfg.rounds = 2;
        cfg.stretch_samples = 8;
        let report = run_scenario(&g, "grid-3x3", &mut engine, Some(&routing), &cfg).unwrap();
        let st = report
            .stretch
            .clone()
            .expect("sampled routes must yield stretch");
        assert!(st.samples > 0);
        assert!(st.mean >= 1.0, "stretch cannot beat the optimum");
        assert!(st.max >= st.mean);
        let json = report.to_json();
        assert!(json.contains("\"stretch\""));
        assert!(json.contains("\"throughput_qps\""));
    }
}
