//! Scenario workloads for the engine: fault-model generators, multi-round
//! churn, and a driver that reports throughput, per-query latency,
//! reachability, and (optionally) routed stretch — the DRFE-R-style
//! experiment loop, aimed at the engine instead of a bare decoder.

use crate::batch::ConnQuery;
use crate::engine::{BatchRequest, Engine, EngineError};
use ftl_graph::traversal::{connected_avoiding, forbidden_mask};
use ftl_graph::{EdgeId, Graph, VertexId};
use ftl_routing::FtRoutingScheme;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;

/// How a round's fault sets are drawn.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum FaultModel {
    /// Faults sampled uniformly over the edge set.
    Uniform,
    /// Faults concentrated on edges incident to the highest-degree
    /// vertices — a targeted attack on the hubs.
    HighDegree,
}

/// One scenario's shape.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario name (appears in reports).
    pub name: String,
    /// Faults per fault set.
    pub f: usize,
    /// Rounds of churn.
    pub rounds: usize,
    /// Fault-set variants per round (variant 0 is the round's base set;
    /// further variants swap one fault each — the "nearby fault set"
    /// traffic that makes the elimination cache earn its keep).
    pub fault_sets_per_round: usize,
    /// Queries per fault set per round.
    pub queries_per_fault_set: usize,
    /// Fraction of the base fault set replaced between rounds
    /// (0.0 = static faults, 1.0 = fresh set each round).
    pub churn: f64,
    /// The fault generator.
    pub model: FaultModel,
    /// RNG seed.
    pub seed: u64,
    /// Check every answer against a graph traversal and count mismatches
    /// (slow; for correctness-focused runs).
    pub verify: bool,
    /// Routed s–t pairs sampled per round for stretch measurement through a
    /// fault-tolerant routing scheme (0 = skip).
    pub stretch_samples: usize,
}

impl ScenarioConfig {
    /// A small default shape: uniform faults, light churn, no verification.
    pub fn new(name: &str, f: usize) -> Self {
        ScenarioConfig {
            name: name.to_string(),
            f,
            rounds: 5,
            fault_sets_per_round: 4,
            queries_per_fault_set: 32,
            churn: 0.25,
            model: FaultModel::Uniform,
            seed: 0xF17,
            verify: false,
            stretch_samples: 0,
        }
    }
}

/// Per-round observations.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index.
    pub round: usize,
    /// Queries answered this round.
    pub queries: usize,
    /// Fraction of queries answered "connected".
    pub reachable_fraction: f64,
    /// Wall time of the round's batches, nanoseconds.
    pub elapsed_ns: u64,
    /// Disagreements with ground truth (only counted when verifying).
    pub mismatches: usize,
}

/// Routed-stretch summary over the sampled pairs.
#[derive(Debug, Clone)]
pub struct StretchStats {
    /// Delivered routes measured.
    pub samples: usize,
    /// Mean observed stretch (routed weight / optimal weight).
    pub mean: f64,
    /// Worst observed stretch.
    pub max: f64,
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Workload graph name.
    pub graph: String,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Faults per set.
    pub f: usize,
    /// Per-round observations.
    pub rounds: Vec<RoundReport>,
    /// Total queries across rounds.
    pub total_queries: usize,
    /// Total batch wall time, nanoseconds.
    pub total_elapsed_ns: u64,
    /// Queries per second over the batch wall time.
    pub throughput_qps: f64,
    /// Mean per-query latency, nanoseconds.
    pub latency_mean_ns: f64,
    /// Median of the per-batch per-query latencies, nanoseconds.
    pub latency_p50_ns: f64,
    /// 99th percentile of the per-batch per-query latencies, nanoseconds.
    pub latency_p99_ns: f64,
    /// Fraction of all queries answered "connected".
    pub reachable_fraction: f64,
    /// Eliminations actually run.
    pub eliminations: usize,
    /// Fault sets served from the cache.
    pub cache_hits: usize,
    /// Ground-truth disagreements (0 unless verifying).
    pub mismatches: usize,
    /// Routed stretch, when sampled.
    pub stretch: Option<StretchStats>,
}

impl ScenarioReport {
    /// Serializes the report as a JSON object (hand-rolled; the workspace
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", self.name));
        s.push_str(&format!("      \"graph\": \"{}\",\n", self.graph));
        s.push_str(&format!(
            "      \"n\": {}, \"m\": {}, \"f\": {},\n",
            self.n, self.m, self.f
        ));
        s.push_str(&format!(
            "      \"total_queries\": {},\n",
            self.total_queries
        ));
        s.push_str(&format!(
            "      \"throughput_qps\": {:.0},\n",
            self.throughput_qps
        ));
        s.push_str(&format!(
            "      \"latency_mean_ns\": {:.0},\n",
            self.latency_mean_ns
        ));
        s.push_str(&format!(
            "      \"latency_p50_ns\": {:.0},\n",
            self.latency_p50_ns
        ));
        s.push_str(&format!(
            "      \"latency_p99_ns\": {:.0},\n",
            self.latency_p99_ns
        ));
        s.push_str(&format!(
            "      \"reachable_fraction\": {:.4},\n",
            self.reachable_fraction
        ));
        s.push_str(&format!("      \"eliminations\": {},\n", self.eliminations));
        s.push_str(&format!("      \"cache_hits\": {},\n", self.cache_hits));
        s.push_str(&format!("      \"mismatches\": {},\n", self.mismatches));
        match &self.stretch {
            None => s.push_str("      \"stretch\": null,\n"),
            Some(st) => s.push_str(&format!(
                "      \"stretch\": {{ \"samples\": {}, \"mean\": {:.2}, \"max\": {:.2} }},\n",
                st.samples, st.mean, st.max
            )),
        }
        s.push_str("      \"rounds\": [\n");
        for (i, r) in self.rounds.iter().enumerate() {
            s.push_str(&format!(
                "        {{ \"round\": {}, \"queries\": {}, \"reachable_fraction\": {:.4}, \"elapsed_ns\": {}, \"mismatches\": {} }}{}\n",
                r.round,
                r.queries,
                r.reachable_fraction,
                r.elapsed_ns,
                r.mismatches,
                if i + 1 < self.rounds.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str("    }");
        s
    }
}

/// Draws up to `f` distinct faults under the model, avoiding `exclude`.
/// Returns fewer when the graph cannot supply `f` fresh edges.
fn draw_faults(
    g: &Graph,
    f: usize,
    model: FaultModel,
    rng: &mut StdRng,
    exclude: &HashSet<EdgeId>,
) -> Vec<EdgeId> {
    let fresh_edges = g.num_edges().saturating_sub(exclude.len());
    let want = f.min(fresh_edges);
    let mut seen = exclude.clone();
    let mut out = Vec::with_capacity(want);
    match model {
        FaultModel::Uniform => {
            while out.len() < want {
                let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
                if seen.insert(e) {
                    out.push(e);
                }
            }
        }
        FaultModel::HighDegree => {
            // Rank vertices by degree; fail random edges incident to the
            // top hubs until the budget is spent. Walking every hub
            // guarantees termination even when the top hubs' edges are all
            // excluded.
            let mut by_degree: Vec<VertexId> = g.vertices().collect();
            by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
            'outer: for &hub in &by_degree {
                let mut ports: Vec<EdgeId> = g.neighbors(hub).iter().map(|nb| nb.edge).collect();
                // Shuffle the hub's ports so repeated draws vary.
                for i in (1..ports.len()).rev() {
                    ports.swap(i, rng.gen_range(0..=i));
                }
                for e in ports {
                    if seen.insert(e) {
                        out.push(e);
                        if out.len() == want {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Replaces `ceil(churn * f)` members of `base` with fresh draws.
fn churn_faults(
    g: &Graph,
    base: &[EdgeId],
    churn: f64,
    model: FaultModel,
    rng: &mut StdRng,
) -> Vec<EdgeId> {
    let f = base.len();
    let replace = ((churn * f as f64).ceil() as usize).min(f);
    if replace == 0 {
        return base.to_vec();
    }
    let mut out = base.to_vec();
    // Evict `replace` random members…
    for _ in 0..replace {
        out.swap_remove(rng.gen_range(0..out.len()));
    }
    // …and refill from the model, avoiding the survivors.
    let survivors: HashSet<EdgeId> = out.iter().copied().collect();
    out.extend(draw_faults(g, f - out.len(), model, rng, &survivors));
    out
}

/// A fault-set variant: the base with one member swapped.
fn variant_of(g: &Graph, base: &[EdgeId], rng: &mut StdRng) -> Vec<EdgeId> {
    if base.is_empty() || g.num_edges() <= base.len() {
        return base.to_vec();
    }
    let mut out = base.to_vec();
    let at = rng.gen_range(0..out.len());
    loop {
        let e = EdgeId::new(rng.gen_range(0..g.num_edges()));
        if !out.contains(&e) {
            out[at] = e;
            return out;
        }
    }
}

/// Runs one scenario against an engine, returning the full report.
///
/// `routing` supplies the stretch measurements when
/// [`ScenarioConfig::stretch_samples`] is non-zero; pass `None` to skip.
///
/// # Errors
///
/// Propagates any [`EngineError`] from the batches.
pub fn run_scenario(
    graph: &Graph,
    graph_name: &str,
    engine: &mut Engine,
    routing: Option<&FtRoutingScheme>,
    cfg: &ScenarioConfig,
) -> Result<ScenarioReport, EngineError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut base = draw_faults(graph, cfg.f, cfg.model, &mut rng, &HashSet::new());
    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut batch_latencies: Vec<f64> = Vec::new();
    let mut total_queries = 0usize;
    let mut total_elapsed = 0u64;
    let mut total_reachable = 0usize;
    let mut eliminations = 0usize;
    let mut cache_hits = 0usize;
    let mut mismatches_total = 0usize;
    let mut stretch_samples = 0usize;
    let mut stretch_sum = 0.0f64;
    let mut stretch_max = 0.0f64;

    for round in 0..cfg.rounds {
        if round > 0 {
            base = churn_faults(graph, &base, cfg.churn, cfg.model, &mut rng);
        }
        // One request per fault set: the per-request wall time over its
        // query count is one per-query latency sample.
        let mut round_elapsed = 0u64;
        let mut round_queries = 0usize;
        let mut round_reachable = 0usize;
        let mut round_mismatches = 0usize;
        for v in 0..cfg.fault_sets_per_round {
            let fs = if v == 0 {
                base.clone()
            } else {
                variant_of(graph, &base, &mut rng)
            };
            let queries: Vec<ConnQuery> = (0..cfg.queries_per_fault_set)
                .map(|_| ConnQuery {
                    s: VertexId::new(rng.gen_range(0..graph.num_vertices())),
                    t: VertexId::new(rng.gen_range(0..graph.num_vertices())),
                    fault_set: 0,
                })
                .collect();
            let req = BatchRequest {
                fault_sets: vec![fs.clone()],
                queries,
            };
            let start = Instant::now();
            let resp = engine.execute(&req)?;
            let elapsed = start.elapsed().as_nanos() as u64;
            round_elapsed += elapsed;
            round_queries += resp.results.len();
            if !resp.results.is_empty() {
                batch_latencies.push(elapsed as f64 / resp.results.len() as f64);
            }
            eliminations += resp.stats.eliminations;
            cache_hits += resp.stats.cache_hits;
            round_reachable += resp.results.iter().filter(|r| r.connected).count();
            if cfg.verify {
                let mask = forbidden_mask(graph, &fs);
                for (q, r) in req.queries.iter().zip(&resp.results) {
                    if connected_avoiding(graph, q.s, q.t, &mask) != r.connected {
                        round_mismatches += 1;
                    }
                }
            }
        }
        if let Some(rt) = routing {
            let faults: HashSet<EdgeId> = base.iter().copied().collect();
            for _ in 0..cfg.stretch_samples {
                let s = VertexId::new(rng.gen_range(0..graph.num_vertices()));
                let t = VertexId::new(rng.gen_range(0..graph.num_vertices()));
                let out = rt.route(graph, s, t, &faults);
                if let (true, Some(opt)) = (out.delivered, out.optimal) {
                    if s != t && opt > 0 {
                        let stretch = out.weight as f64 / opt as f64;
                        stretch_samples += 1;
                        stretch_sum += stretch;
                        stretch_max = stretch_max.max(stretch);
                    }
                }
            }
        }
        total_queries += round_queries;
        total_elapsed += round_elapsed;
        total_reachable += round_reachable;
        mismatches_total += round_mismatches;
        rounds.push(RoundReport {
            round,
            queries: round_queries,
            reachable_fraction: round_reachable as f64 / round_queries.max(1) as f64,
            elapsed_ns: round_elapsed,
            mismatches: round_mismatches,
        });
    }

    batch_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| -> f64 {
        if batch_latencies.is_empty() {
            0.0
        } else {
            batch_latencies[((batch_latencies.len() - 1) as f64 * p) as usize]
        }
    };
    Ok(ScenarioReport {
        name: cfg.name.clone(),
        graph: graph_name.to_string(),
        n: graph.num_vertices(),
        m: graph.num_edges(),
        f: cfg.f,
        rounds,
        total_queries,
        total_elapsed_ns: total_elapsed,
        throughput_qps: total_queries as f64 / (total_elapsed.max(1) as f64 / 1e9),
        latency_mean_ns: total_elapsed as f64 / total_queries.max(1) as f64,
        latency_p50_ns: pct(0.5),
        latency_p99_ns: pct(0.99),
        reachable_fraction: total_reachable as f64 / total_queries.max(1) as f64,
        eliminations,
        cache_hits,
        mismatches: mismatches_total,
        stretch: (stretch_samples > 0).then(|| StretchStats {
            samples: stretch_samples,
            mean: stretch_sum / stretch_samples as f64,
            max: stretch_max,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ftl_cycle_space::CycleSpaceScheme;
    use ftl_graph::generators;
    use ftl_seeded::Seed;

    fn engine_for(g: &Graph, f: usize) -> Engine {
        let scheme = CycleSpaceScheme::label(g, f, Seed::new(77)).unwrap();
        Engine::from_cycle_space(&scheme, EngineConfig::default())
    }

    #[test]
    fn verified_uniform_churn_run_has_no_mismatches() {
        let g = generators::grid(4, 4);
        let mut engine = engine_for(&g, 4);
        let mut cfg = ScenarioConfig::new("uniform-churn", 4);
        cfg.rounds = 4;
        cfg.fault_sets_per_round = 3;
        cfg.queries_per_fault_set = 20;
        cfg.churn = 0.5;
        cfg.verify = true;
        let report = run_scenario(&g, "grid-4x4", &mut engine, None, &cfg).unwrap();
        assert_eq!(report.mismatches, 0, "engine disagreed with ground truth");
        assert_eq!(report.total_queries, 4 * 3 * 20);
        assert!(report.reachable_fraction > 0.0 && report.reachable_fraction <= 1.0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.latency_p50_ns <= report.latency_p99_ns);
        assert_eq!(report.rounds.len(), 4);
    }

    #[test]
    fn high_degree_attack_reduces_reachability_below_uniform_on_star() {
        // On a star, hub-targeted faults must disconnect more pairs than
        // the same number of uniform faults does on a richer graph; at the
        // very least the run must complete and report sane numbers.
        let g = generators::star(20);
        let mut engine = engine_for(&g, 6);
        let mut cfg = ScenarioConfig::new("hub-attack", 6);
        cfg.model = FaultModel::HighDegree;
        cfg.rounds = 3;
        cfg.verify = true;
        let report = run_scenario(&g, "star-20", &mut engine, None, &cfg).unwrap();
        assert_eq!(report.mismatches, 0);
        assert!(
            report.reachable_fraction < 1.0,
            "hub faults must cut someone off"
        );
    }

    #[test]
    fn static_faults_hit_the_cache_across_rounds() {
        let g = generators::grid(4, 4);
        let mut engine = engine_for(&g, 3);
        let mut cfg = ScenarioConfig::new("static", 3);
        cfg.rounds = 5;
        cfg.fault_sets_per_round = 1;
        cfg.churn = 0.0;
        let report = run_scenario(&g, "grid-4x4", &mut engine, None, &cfg).unwrap();
        // Round 1 eliminates; rounds 2..5 reuse the cached basis.
        assert_eq!(report.eliminations, 1);
        assert_eq!(report.cache_hits, 4);
    }

    #[test]
    fn stretch_measured_through_routing_scheme() {
        let g = generators::grid(3, 3);
        let mut engine = engine_for(&g, 2);
        let routing = FtRoutingScheme::new(&g, ftl_routing::RoutingParams::new(2, 2), Seed::new(5));
        let mut cfg = ScenarioConfig::new("stretch", 2);
        cfg.rounds = 2;
        cfg.stretch_samples = 8;
        let report = run_scenario(&g, "grid-3x3", &mut engine, Some(&routing), &cfg).unwrap();
        let st = report
            .stretch
            .clone()
            .expect("sampled routes must yield stretch");
        assert!(st.samples > 0);
        assert!(st.mean >= 1.0, "stretch cannot beat the optimum");
        assert!(st.max >= st.mean);
        let json = report.to_json();
        assert!(json.contains("\"stretch\""));
        assert!(json.contains("\"throughput_qps\""));
    }
}
