//! Epoch-versioned label stores: lock-free snapshot-swap publication and
//! the delta-freeze pipeline driving it.
//!
//! The store itself is build-then-freeze (see [`crate::store`]); this
//! module adds the *versioning* layer that lets the topology change while
//! queries are in flight:
//!
//! * An [`Epoch`] is an immutable pair `(number, Arc<LabelStore>)`.
//! * An [`EpochStore`] publishes epochs by **atomic pointer swap**: a
//!   reader takes a brief read-lock only to clone the current `Arc` —
//!   never across a query — so in-flight batches always complete against
//!   the consistent snapshot they pinned, and a publish never waits for
//!   readers to drain.
//! * A [`LiveStore`] owns a [`LiveCycleSpace`] (the incrementally
//!   maintained labeling) plus an `EpochStore`, and turns each removal
//!   into either a **delta-freeze** — re-encoding only the labels the
//!   mutation actually dirtied and splicing every untouched shard from the
//!   previous epoch — or a full rebuild when the live scheme had to
//!   relabel from scratch. Which path ran, and how long the whole
//!   mutate-and-publish took, is reported per swap in a [`SwapReport`].
//!
//! Readers built with [`Engine::over_epochs`](crate::Engine::over_epochs)
//! / [`ParEngine::over_epochs`](crate::ParEngine::over_epochs) refresh
//! their pinned snapshot at batch boundaries, so a swap becomes visible at
//! the next batch — never mid-batch.

use crate::engine::EngineConfig;
use crate::store::{LabelStore, LabelStoreBuilder, StoreError, StoreKey};
use ftl_cycle_space::{LiveCycleSpace, LiveError};
use ftl_graph::{EdgeId, Graph, VertexId};
use ftl_labels::wire::WireLabel;
use ftl_seeded::Seed;
use std::fmt;
// ftl-analyzer: allow(lock-free) the epoch writer side is the one blessed lock in ftl-engine
#[allow(clippy::disallowed_types)]
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Why a live-store operation failed: either the live labeling rejected
/// the mutation (topology error) or the successor snapshot could not be
/// frozen (store error). Either way nothing observable changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveStoreError {
    /// The live labeling rejected the mutation.
    Live(LiveError),
    /// The successor snapshot could not be frozen.
    Store(StoreError),
}

impl fmt::Display for LiveStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveStoreError::Live(e) => write!(f, "live labeling: {e}"),
            LiveStoreError::Store(e) => write!(f, "snapshot freeze: {e}"),
        }
    }
}

impl std::error::Error for LiveStoreError {}

impl From<LiveError> for LiveStoreError {
    fn from(e: LiveError) -> Self {
        LiveStoreError::Live(e)
    }
}

impl From<StoreError> for LiveStoreError {
    fn from(e: StoreError) -> Self {
        LiveStoreError::Store(e)
    }
}

/// One immutable published snapshot: an epoch number and its store.
#[derive(Debug)]
pub struct Epoch {
    number: u64,
    store: Arc<LabelStore>,
}

impl Epoch {
    /// The epoch number (strictly increasing across publishes; the first
    /// epoch of an [`EpochStore`] is 1).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The store of this epoch.
    pub fn store(&self) -> &Arc<LabelStore> {
        &self.store
    }
}

/// Atomic publication point for epoch snapshots.
///
/// Readers call [`current`](EpochStore::current) and hold the returned
/// `Arc<Epoch>` for as long as they need a consistent view; publishers
/// call [`publish`](EpochStore::publish) and return immediately. Previous
/// epochs stay alive exactly as long as some reader still pins them.
#[derive(Debug)]
pub struct EpochStore {
    // The one blessed lock in ftl-engine: held for exactly one Arc clone
    // (readers) or one pointer assignment (the single writer).
    // ftl-analyzer: allow(lock-free) writer-side publication point
    #[allow(clippy::disallowed_types)]
    current: RwLock<Arc<Epoch>>,
}

impl EpochStore {
    /// Wraps an initial store as epoch 1.
    #[allow(clippy::disallowed_types)]
    pub fn new(store: Arc<LabelStore>) -> Self {
        ftl_obs::global().epoch.published.set(1);
        EpochStore {
            // ftl-analyzer: allow(lock-free) writer-side construction of the publication slot
            current: RwLock::new(Arc::new(Epoch { number: 1, store })),
        }
    }

    /// The currently published epoch. A brief read-lock around one `Arc`
    /// clone — never held across label reads, so readers cannot block a
    /// publisher for longer than that clone.
    pub fn current(&self) -> Arc<Epoch> {
        // A poisoned lock only means a publisher panicked *between*
        // pointer writes, which cannot happen (the swap is a single
        // assignment) — recover rather than propagate.
        // ftl-analyzer: allow(lock-free) one Arc clone under the read guard, never across a query
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publishes `store` as the next epoch and returns its number.
    pub fn publish(&self, store: Arc<LabelStore>) -> u64 {
        // ftl-analyzer: allow(lock-free) single-writer publication swap
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        let number = slot.number + 1;
        *slot = Arc::new(Epoch { number, store });
        ftl_obs::global().epoch.published.set(number);
        number
    }
}

/// Which freeze path a swap took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapPath {
    /// Delta-freeze: only dirtied labels were re-encoded; all untouched
    /// shards were spliced from the previous epoch.
    Delta {
        /// Number of re-encoded (upserted) records.
        upserts: usize,
        /// Number of evicted records.
        removals: usize,
    },
    /// The live scheme relabeled from scratch and the store was rebuilt
    /// wholesale.
    FullRebuild,
}

/// What one mutate-and-publish cycle did and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The epoch number the new snapshot was published as. Equal to the
    /// previous epoch when nothing changed (no publish happened).
    pub epoch: u64,
    /// Freeze path taken.
    pub path: SwapPath,
    /// Wall time of the whole cycle: live mutation + freeze + publish.
    pub elapsed_ns: u64,
}

/// A live, epoch-published label store over a mutating topology.
///
/// Owns the single-writer side: apply removals to the live labeling, turn
/// the resulting [`LiveDelta`](ftl_cycle_space::LiveDelta) into a frozen
/// successor snapshot, publish it. Readers hang off
/// [`epochs`](LiveStore::epochs) and never see a half-applied change.
#[derive(Debug)]
pub struct LiveStore {
    live: LiveCycleSpace,
    epochs: Arc<EpochStore>,
    config: EngineConfig,
}

impl LiveStore {
    /// Labels `graph` against up to `f` faults and publishes the initial
    /// snapshot as epoch 1.
    ///
    /// # Errors
    ///
    /// Fails if the graph cannot be labeled ([`LiveStoreError::Live`]) or
    /// the initial snapshot cannot be frozen ([`LiveStoreError::Store`]).
    pub fn new(
        graph: &Graph,
        f: usize,
        seed: Seed,
        config: EngineConfig,
    ) -> Result<Self, LiveStoreError> {
        let mut live = LiveCycleSpace::new(graph, f, seed)?;
        live.take_delta(); // the initial all-dirty state is the baseline
        let store = Arc::new(full_store_of(&live, &config)?);
        Ok(LiveStore {
            live,
            epochs: Arc::new(EpochStore::new(store)),
            config,
        })
    }

    /// The publication point readers subscribe to.
    pub fn epochs(&self) -> &Arc<EpochStore> {
        &self.epochs
    }

    /// The live labeling (read access — all mutation goes through the
    /// removal methods so every change is published).
    pub fn live(&self) -> &LiveCycleSpace {
        &self.live
    }

    /// The engine configuration freezes are built with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Removes one edge and publishes the successor snapshot. On error the
    /// topology, labels, and published epoch are all unchanged (a freeze
    /// error leaves the previous epoch serving).
    ///
    /// # Errors
    ///
    /// [`LiveStoreError::Live`] when the removal is rejected (dead edge,
    /// would disconnect); [`LiveStoreError::Store`] when the successor
    /// snapshot cannot be frozen.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<SwapReport, LiveStoreError> {
        let t0 = Instant::now();
        self.live.remove_edge(e)?;
        Ok(self.publish_pending(t0)?)
    }

    /// Removes one vertex (and its incident edges) and publishes the
    /// successor snapshot. On error nothing changes.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`LiveStore::remove_edge`].
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<SwapReport, LiveStoreError> {
        let t0 = Instant::now();
        self.live.remove_vertex(v)?;
        Ok(self.publish_pending(t0)?)
    }

    /// Removes a batch of edges under **one** published swap. Edges whose
    /// removal fails (already dead, would disconnect) are skipped and
    /// returned; the rest are applied.
    ///
    /// # Errors
    ///
    /// Fails only when the successor snapshot cannot be frozen — per-edge
    /// rejections come back in the skip list, not as an error.
    pub fn remove_edges(
        &mut self,
        edges: &[EdgeId],
    ) -> Result<(SwapReport, Vec<(EdgeId, LiveError)>), StoreError> {
        let t0 = Instant::now();
        let mut skipped = Vec::new();
        for &e in edges {
            if let Err(err) = self.live.remove_edge(e) {
                skipped.push((e, err));
            }
        }
        Ok((self.publish_pending(t0)?, skipped))
    }

    /// Removes a batch of vertices under one published swap, skipping (and
    /// returning) the ones that cannot be removed.
    ///
    /// # Errors
    ///
    /// Fails only when the successor snapshot cannot be frozen.
    pub fn remove_vertices(
        &mut self,
        vertices: &[VertexId],
    ) -> Result<(SwapReport, Vec<(VertexId, LiveError)>), StoreError> {
        let t0 = Instant::now();
        let mut skipped = Vec::new();
        for &v in vertices {
            if let Err(err) = self.live.remove_vertex(v) {
                skipped.push((v, err));
            }
        }
        Ok((self.publish_pending(t0)?, skipped))
    }

    /// Forces a full relabel + full freeze + publish, regardless of dirty
    /// state — the escape hatch for reclaiming dead arena bytes after long
    /// churn, and the honest baseline delta-freezes are measured against.
    ///
    /// # Errors
    ///
    /// Fails if the rebuilt snapshot cannot be frozen; the previous epoch
    /// keeps serving.
    pub fn rebuild(&mut self) -> Result<SwapReport, StoreError> {
        let t0 = Instant::now();
        self.live.relabel();
        self.live.take_delta();
        let store = Arc::new(full_store_of(&self.live, &self.config)?);
        let epoch = self.epochs.publish(store);
        let report = SwapReport {
            epoch,
            path: SwapPath::FullRebuild,
            elapsed_ns: t0.elapsed().as_nanos() as u64,
        };
        record_obs_swap(&report);
        Ok(report)
    }

    /// Measures (without publishing or mutating anything observable) what
    /// a from-scratch relabel + full freeze of the current topology costs.
    ///
    /// # Errors
    ///
    /// Fails if the trial freeze fails (nothing was published either way).
    pub fn measure_full_rebuild_ns(&self) -> Result<u64, StoreError> {
        let t0 = Instant::now();
        let mut clone = self.live.clone();
        clone.relabel();
        let store = full_store_of(&clone, &self.config)?;
        let ns = t0.elapsed().as_nanos() as u64;
        drop(store);
        Ok(ns)
    }

    /// Drains the live delta into a successor snapshot and publishes it.
    fn publish_pending(&mut self, t0: Instant) -> Result<SwapReport, StoreError> {
        let delta = self.live.take_delta();
        if delta.is_empty() {
            // Nothing changed (e.g. a batch where every removal was
            // skipped): don't invalidate caches with a no-op epoch.
            return Ok(SwapReport {
                epoch: self.epochs.current().number(),
                path: SwapPath::Delta {
                    upserts: 0,
                    removals: 0,
                },
                elapsed_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        let (store, path) = if delta.full {
            (
                full_store_of(&self.live, &self.config)?,
                SwapPath::FullRebuild,
            )
        } else {
            let mut upserts: Vec<(StoreKey, Vec<u8>)> =
                Vec::with_capacity(delta.vertex_upserts.len() + delta.edge_upserts.len());
            for &v in &delta.vertex_upserts {
                upserts.push((StoreKey::vertex(v), self.live.vertex_label(v).to_wire()));
            }
            for &e in &delta.edge_upserts {
                upserts.push((StoreKey::edge(e), self.live.edge_label(e).to_wire()));
            }
            let mut removals: Vec<StoreKey> =
                Vec::with_capacity(delta.removed_vertices.len() + delta.removed_edges.len());
            removals.extend(delta.removed_vertices.iter().map(|&v| StoreKey::vertex(v)));
            removals.extend(delta.removed_edges.iter().map(|&e| StoreKey::edge(e)));
            let path = SwapPath::Delta {
                upserts: upserts.len(),
                removals: removals.len(),
            };
            let prev = self.epochs.current();
            (prev.store().delta_freeze(&upserts, &removals)?, path)
        };
        let epoch = self.epochs.publish(Arc::new(store));
        let report = SwapReport {
            epoch,
            path,
            elapsed_ns: t0.elapsed().as_nanos() as u64,
        };
        record_obs_swap(&report);
        Ok(report)
    }
}

/// Folds one *published* swap into the process-wide epoch metrics (no-op
/// publishes — an empty delta — never reach this). Cold path: a swap is
/// a whole-store event, not a per-query one.
fn record_obs_swap(report: &SwapReport) {
    let epoch = &ftl_obs::global().epoch;
    epoch.swap_ns.record(report.elapsed_ns);
    match report.path {
        SwapPath::Delta { .. } => epoch.delta_swaps.inc(),
        SwapPath::FullRebuild => epoch.full_rebuilds.inc(),
    }
}

/// Freezes the complete current state of a live labeling into a store.
///
/// # Errors
///
/// Fails if a label is too large for its shard's arena.
pub fn full_store_of(
    live: &LiveCycleSpace,
    config: &EngineConfig,
) -> Result<LabelStore, StoreError> {
    let mut b = LabelStoreBuilder::new(config.num_shards);
    for v in live.alive_vertices() {
        b.put_vertex_label(v, &live.vertex_label(v))?;
    }
    for e in live.alive_edges() {
        b.put_edge_label(e, &live.edge_label(e))?;
    }
    Ok(if config.use_sidecar {
        b.freeze()
    } else {
        b.freeze_wire_only()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_graph::generators;

    fn live_store(g: &Graph) -> LiveStore {
        LiveStore::new(g, 4, Seed::new(0xE50), EngineConfig::default()).unwrap()
    }

    #[test]
    fn epochs_start_at_one_and_increase() {
        let g = generators::grid(4, 4);
        let mut ls = live_store(&g);
        assert_eq!(ls.epochs().current().number(), 1);
        let nt = ls
            .live()
            .alive_edges()
            .find(|&e| !ls.live().edge_label(e).is_tree)
            .unwrap();
        let report = ls.remove_edge(nt).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(ls.epochs().current().number(), 2);
        assert!(matches!(report.path, SwapPath::Delta { removals: 1, .. }));
    }

    #[test]
    fn failed_removal_publishes_nothing() {
        let g = generators::path(5);
        let mut ls = live_store(&g);
        let uid = ls.epochs().current().store().uid();
        assert!(ls.remove_edge(EdgeId::new(0)).is_err()); // bridge
        assert_eq!(ls.epochs().current().number(), 1);
        assert_eq!(ls.epochs().current().store().uid(), uid);
    }

    #[test]
    fn batch_with_only_skips_keeps_epoch() {
        let g = generators::path(5);
        let mut ls = live_store(&g);
        let (report, skipped) = ls
            .remove_edges(&[EdgeId::new(0), EdgeId::new(1), EdgeId::new(2)])
            .unwrap();
        assert_eq!(skipped.len(), 3, "every path edge is a bridge");
        assert_eq!(report.epoch, 1);
        assert_eq!(
            report.path,
            SwapPath::Delta {
                upserts: 0,
                removals: 0
            }
        );
    }

    #[test]
    fn old_epoch_survives_while_pinned() {
        let g = generators::complete(6);
        let mut ls = live_store(&g);
        let pinned = ls.epochs().current();
        let pinned_len = pinned.store().len();
        ls.remove_edge(EdgeId::new(0)).unwrap();
        ls.remove_vertex(VertexId::new(5)).unwrap();
        // The pinned snapshot still serves its full original content.
        assert_eq!(pinned.store().len(), pinned_len);
        assert!(pinned
            .store()
            .get_bytes(StoreKey::edge(EdgeId::new(0)))
            .is_some());
        // The current one does not.
        assert!(ls
            .epochs()
            .current()
            .store()
            .get_bytes(StoreKey::edge(EdgeId::new(0)))
            .is_none());
    }

    #[test]
    fn delta_swap_splices_most_shards() {
        let g = generators::grid(10, 10);
        let mut ls = live_store(&g);
        let before = ls.epochs().current();
        let nt = ls
            .live()
            .alive_edges()
            .find(|&e| !ls.live().edge_label(e).is_tree)
            .unwrap();
        ls.remove_edge(nt).unwrap();
        let after = ls.epochs().current();
        let shared = (0..after.store().num_shards())
            .filter(|&i| after.store().shares_shard_with(before.store(), i))
            .count();
        // A non-tree removal dirties only its fundamental-cycle tree path;
        // with 16 shards and a handful of touched records, at least one
        // shard must splice (in practice most do).
        assert!(shared >= 1, "no shard was spliced");
        assert_ne!(after.store().uid(), before.store().uid());
    }

    #[test]
    fn rebuild_publishes_full_path() {
        let g = generators::grid(4, 4);
        let mut ls = live_store(&g);
        let report = ls.rebuild().unwrap();
        assert_eq!(report.path, SwapPath::FullRebuild);
        assert_eq!(report.epoch, 2);
        assert!(ls.measure_full_rebuild_ns().unwrap() > 0);
        // measure_full_rebuild_ns publishes nothing.
        assert_eq!(ls.epochs().current().number(), 2);
    }
}
