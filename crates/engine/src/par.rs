//! `ParEngine`: N worker threads over one shared `Arc<LabelStore>`.
//!
//! The frozen store reads are pure `&self`, so the only per-thread state a
//! worker needs is its own private serving core — elimination cache, decode
//! scratch, diff vector. A `ParEngine` owns one core per worker (**no
//! shared mutable state, no locks**): each batch is split into contiguous
//! query chunks, every worker serves its chunk against the shared store
//! with its private cache, and the per-worker result vectors are merged
//! back in request order.
//!
//! Per-worker caches mean a fault set referenced by several workers'
//! chunks is eliminated once *per worker* rather than once globally — the
//! deliberate trade for a lock-free serve path (elimination is the
//! amortized cost; queries are the volume). Results are **bit-identical**
//! to the serial [`Engine`] on the same request stream: every query's
//! answer depends only on its canonical fault set and the frozen labels,
//! never on which worker ran it.
//!
//! With the `parallel` feature off (or `num_workers == 1`) the workers run
//! sequentially on the calling thread — same results, same per-worker
//! bookkeeping, no threads.
//!
//! # Panic containment
//!
//! A panic inside a worker (a poisoned query, a chaos injection via
//! [`EngineConfig::chaos_panic_edge`]) is caught at the batch boundary and
//! surfaced as [`EngineError::WorkerPanicked`]: the batch fails with an
//! error result, the *other* workers' chunks complete normally (and are
//! discarded with the batch), the panicked worker's core is rebuilt, and
//! the process — and every other in-flight engine over the same store —
//! survives.

use crate::engine::{BatchRequest, BatchResponse, BatchStats, EngineConfig, EngineError};
use crate::engine::{Engine, EngineCore, FaultSetBatch, GroupResult, GroupedResponse, QueryResult};
use crate::store::{LabelStore, StoreError};
use ftl_cycle_space::CycleSpaceScheme;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// What one worker returns for its chunk: results, stats, busy time.
type ChunkOutput = Result<(Vec<QueryResult>, BatchStats, u64), EngineError>;

/// Cumulative per-worker serving counters.
#[derive(Debug, Copy, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Queries this worker answered.
    pub queries: u64,
    /// Wall time this worker spent serving its chunks, nanoseconds.
    pub busy_ns: u64,
    /// Eliminations this worker ran.
    pub eliminations: u64,
    /// Fault sets this worker served from its cache.
    pub cache_hits: u64,
}

/// The multi-worker engine. See the module docs.
pub struct ParEngine {
    store: Arc<LabelStore>,
    config: EngineConfig,
    cores: Vec<EngineCore>,
    stats: Vec<WorkerStats>,
    /// Publication point to re-pin from at batch boundaries, when epoch-
    /// following; `None` for engines over a fixed store.
    epochs: Option<Arc<crate::epoch::EpochStore>>,
    /// Number of the currently pinned epoch (0 when fixed-store).
    epoch: u64,
}

impl ParEngine {
    /// Builds a `ParEngine` with `num_workers` workers (minimum 1) over a
    /// shared frozen store.
    pub fn new(store: Arc<LabelStore>, config: EngineConfig, num_workers: usize) -> Self {
        let n = num_workers.max(1);
        ParEngine {
            store,
            config,
            cores: (0..n).map(|_| EngineCore::new(config)).collect(),
            stats: (0..n)
                .map(|worker| WorkerStats {
                    worker,
                    ..WorkerStats::default()
                })
                .collect(),
            epochs: None,
            epoch: 0,
        }
    }

    /// Builds an epoch-following `ParEngine`: each batch is served against
    /// the snapshot current at its start, re-pinned per batch — a batch in
    /// flight never observes a swap, and a publisher never waits for one.
    pub fn over_epochs(
        epochs: Arc<crate::epoch::EpochStore>,
        config: EngineConfig,
        num_workers: usize,
    ) -> Self {
        let current = epochs.current();
        let mut engine = ParEngine::new(Arc::clone(current.store()), config, num_workers);
        engine.epoch = current.number();
        engine.epochs = Some(epochs);
        engine
    }

    /// The epoch the engine is currently pinned to (0 for fixed-store
    /// engines).
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-pins the store from the epoch source, if following one.
    fn refresh_epoch(&mut self) {
        if let Some(epochs) = &self.epochs {
            let current = epochs.current();
            self.epoch = current.number();
            ftl_obs::global().epoch.pinned.set(self.epoch);
            if !Arc::ptr_eq(&self.store, current.store()) {
                self.store = Arc::clone(current.store());
            }
        }
    }

    /// Encodes a cycle-space scheme into a fresh store and stands the
    /// multi-worker engine up over it. Like
    /// [`Engine::from_cycle_space`], `use_sidecar = false` freezes the
    /// store wire-only.
    ///
    /// # Errors
    ///
    /// Fails if a label is too large for its shard's arena.
    pub fn from_cycle_space(
        scheme: &CycleSpaceScheme,
        config: EngineConfig,
        num_workers: usize,
    ) -> Result<Self, StoreError> {
        let engine = Engine::from_cycle_space(scheme, config)?;
        Ok(ParEngine::new(engine.shared_store(), config, num_workers))
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.cores.len()
    }

    /// The shared store.
    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    /// A shared handle to the store.
    pub fn shared_store(&self) -> Arc<LabelStore> {
        Arc::clone(&self.store)
    }

    /// Engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Cumulative per-worker counters since construction.
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.stats
    }

    /// A serial [`Engine`] over the same shared store and configuration —
    /// the differential-verification partner.
    pub fn serial_engine(&self) -> Engine {
        Engine::with_shared(self.shared_store(), self.config)
    }

    /// Serves a batch across all workers: queries are split into
    /// contiguous chunks, one per worker; results come back merged in
    /// request order, with aggregate statistics. Bit-identical to the
    /// serial [`Engine::execute`] on the same request.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::execute`]; the first worker error
    /// (in worker order) is returned.
    pub fn execute(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError> {
        self.refresh_epoch();
        let total = req.queries.len();
        let workers = self.cores.len();
        let chunk = total.div_ceil(workers.max(1)).max(1);
        // (core, range) pairs; trailing workers may get empty ranges.
        let jobs: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| (chunk * w).min(total)..(chunk * (w + 1)).min(total))
            .collect();
        let store = &self.store;
        let run_one = |core: &mut EngineCore, range: std::ops::Range<usize>| -> ChunkOutput {
            let start = Instant::now();
            let (results, stats) = core.execute_range(store, req, range)?;
            Ok((results, stats, start.elapsed().as_nanos() as u64))
        };
        let outputs: Vec<ChunkOutput> = run_workers(&mut self.cores, &jobs, &run_one);
        // Propagate the first worker error (in worker order) BEFORE
        // committing anything to the cumulative per-worker stats — a batch
        // that errors must not attribute its discarded results to workers.
        // A panicked worker may have unwound mid-update, so its core is
        // rebuilt before the error surfaces; the other cores kept their
        // caches and finished their chunks normally.
        let mut first_err = None;
        let mut oks = Vec::with_capacity(outputs.len());
        for (w, out) in outputs.into_iter().enumerate() {
            match out {
                Ok(ok) => oks.push(ok),
                Err(err) => {
                    if matches!(err, EngineError::WorkerPanicked { .. }) {
                        self.cores[w] = EngineCore::new(self.config);
                    }
                    if first_err.is_none() {
                        first_err = Some(err);
                    }
                }
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        // Same failure modes as the serial engine: fault sets no query
        // references still get resolved (and cached, on worker 0), so a
        // request naming a missing edge is rejected by both engines even
        // when the offending set is never queried.
        let mut referenced = vec![false; req.fault_sets.len()];
        for q in &req.queries {
            if let Some(r) = referenced.get_mut(q.fault_set) {
                *r = true;
            }
        }
        let mut unreferenced_stats = BatchStats::default();
        for (fs, _) in req.fault_sets.iter().zip(&referenced).filter(|(_, &r)| !r) {
            self.cores[0].resolve_fault_set(&self.store, fs, &mut unreferenced_stats)?;
        }
        let mut merged = Vec::with_capacity(total);
        let mut agg = BatchStats {
            queries: total,
            fault_sets: req.fault_sets.len(),
            eliminations: unreferenced_stats.eliminations,
            cache_hits: unreferenced_stats.cache_hits,
            epoch: self.epoch,
        };
        self.stats[0].eliminations += unreferenced_stats.eliminations as u64;
        self.stats[0].cache_hits += unreferenced_stats.cache_hits as u64;
        for (w, (results, stats, busy_ns)) in oks.into_iter().enumerate() {
            self.stats[w].queries += results.len() as u64;
            self.stats[w].busy_ns += busy_ns;
            self.stats[w].eliminations += stats.eliminations as u64;
            self.stats[w].cache_hits += stats.cache_hits as u64;
            agg.eliminations += stats.eliminations;
            agg.cache_hits += stats.cache_hits;
            merged.extend(results);
        }
        crate::engine::record_obs_batch(&agg);
        Ok(BatchResponse {
            results: merged,
            stats: agg,
        })
    }

    /// Serves pre-grouped fault-set batches across the workers — the
    /// batching front end's entry point. Groups are split into contiguous
    /// **group-granular** chunks (a group never straddles workers, so each
    /// fault set is eliminated exactly once, on exactly one worker — no
    /// cross-worker duplicate eliminations as with per-query chunking).
    ///
    /// Failures are isolated per group: a bad fault set fails only its own
    /// group, a bad vertex id fails only its own query within the group,
    /// and a worker panic fails only the groups of that worker's chunk
    /// (the panicked core is rebuilt; the other chunks' answers are
    /// kept). The call itself never fails — see [`GroupedResponse`].
    pub fn execute_grouped(&mut self, groups: &[FaultSetBatch]) -> GroupedResponse {
        self.refresh_epoch();
        let total = groups.len();
        let workers = self.cores.len();
        let chunk = total.div_ceil(workers.max(1)).max(1);
        let jobs: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| (chunk * w).min(total)..(chunk * (w + 1)).min(total))
            .collect();
        let store = &self.store;
        let run_one = |core: &mut EngineCore,
                       range: std::ops::Range<usize>|
         -> Result<(Vec<GroupResult>, BatchStats, u64), EngineError> {
            let start = Instant::now();
            let mut stats = BatchStats::default();
            let slice = groups.get(range).unwrap_or(&[]);
            let results: Vec<GroupResult> = slice
                .iter()
                .map(|g| core.execute_group(store, g, &mut stats))
                .collect();
            Ok((results, stats, start.elapsed().as_nanos() as u64))
        };
        let outputs = run_workers(&mut self.cores, &jobs, &run_one);
        let mut merged: Vec<GroupResult> = Vec::with_capacity(total);
        let mut agg = BatchStats {
            fault_sets: total,
            epoch: self.epoch,
            ..BatchStats::default()
        };
        for ((w, out), job) in outputs.into_iter().enumerate().zip(&jobs) {
            match out {
                Ok((results, stats, busy_ns)) => {
                    if let Some(ws) = self.stats.get_mut(w) {
                        ws.queries += stats.queries as u64;
                        ws.busy_ns += busy_ns;
                        ws.eliminations += stats.eliminations as u64;
                        ws.cache_hits += stats.cache_hits as u64;
                    }
                    agg.queries += stats.queries;
                    agg.eliminations += stats.eliminations;
                    agg.cache_hits += stats.cache_hits;
                    merged.extend(results);
                }
                Err(err) => {
                    if matches!(err, EngineError::WorkerPanicked { .. }) {
                        if let Some(core) = self.cores.get_mut(w) {
                            *core = EngineCore::new(self.config);
                        }
                    }
                    // Every group of the failed chunk reports the worker's
                    // error; the other chunks' groups are unaffected.
                    merged.extend(job.clone().map(|_| Err(err.clone())));
                }
            }
        }
        crate::engine::record_obs_batch(&agg);
        GroupedResponse {
            groups: merged,
            stats: agg,
        }
    }
}

/// Runs one job per core — scoped threads under the `parallel` feature,
/// a sequential loop otherwise (or for a single worker). Outputs come back
/// in worker order either way; a panicked worker's output is
/// [`EngineError::WorkerPanicked`].
fn run_workers<T, F>(
    cores: &mut [EngineCore],
    jobs: &[std::ops::Range<usize>],
    run_one: &F,
) -> Vec<Result<T, EngineError>>
where
    T: Send,
    F: Fn(&mut EngineCore, std::ops::Range<usize>) -> Result<T, EngineError> + Sync,
{
    #[cfg(feature = "parallel")]
    {
        if cores.len() > 1 {
            return std::thread::scope(|scope| {
                let handles: Vec<_> = cores
                    .iter_mut()
                    .zip(jobs)
                    .map(|(core, range)| {
                        let range = range.clone();
                        scope.spawn(move || run_one(core, range))
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(worker, h)| match h.join() {
                        Ok(out) => out,
                        Err(payload) => Err(EngineError::WorkerPanicked {
                            worker,
                            message: panic_message(payload.as_ref()),
                        }),
                    })
                    .collect()
            });
        }
    }
    cores
        .iter_mut()
        .zip(jobs)
        .enumerate()
        .map(|(worker, (core, range))| {
            let range = range.clone();
            catch_unwind(AssertUnwindSafe(|| run_one(core, range))).unwrap_or_else(|payload| {
                Err(EngineError::WorkerPanicked {
                    worker,
                    message: panic_message(payload.as_ref()),
                })
            })
        })
        .collect()
}

/// Best-effort text out of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
