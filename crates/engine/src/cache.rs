//! A compact LRU cache for eliminated fault-set bases.
//!
//! Keys are 64-bit canonical fault-set hashes; values are whatever the
//! caller caches (the engine stores `Arc<EliminatedFaultSet>`). Entries
//! live in a `Vec`-backed intrusive doubly-linked list — no per-entry
//! allocation, O(1) hit/insert/evict — and the cache tracks hit/miss
//! counters for the engine's batch statistics.

use ftl_seeded::DetHashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map from `u64` keys to `V`.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    // Deterministically hashed (FTL004): eviction order must not vary with
    // std's per-process hasher key.
    map: DetHashMap<u64, usize>,
    nodes: Vec<Node<V>>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries. Capacity 0 disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: DetHashMap::with_capacity_and_hasher(capacity, ftl_seeded::DetBuildHasher),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found their key.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that did not.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Fetches `key`, marking it most-recently used.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        match self.map.get(&key).copied() {
            None => {
                self.misses += 1;
                None
            }
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(&self.nodes[i].value)
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// if the cache is full. The new entry is most-recently used.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let slot = if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.nodes[victim].key = key;
            self.nodes[victim].value = value;
            victim
        } else {
            self.nodes.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys from most- to least-recently used, by walking the list.
    fn order<V>(c: &LruCache<V>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut i = c.head;
        while i != NIL {
            out.push(c.nodes[i].key);
            i = c.nodes[i].next;
        }
        out
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        assert_eq!(order(&c), vec![3, 2, 1]);
        // Touch 1: now 2 is the LRU.
        assert_eq!(c.get(1), Some(&"a"));
        c.insert(4, "d");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), None, "2 must have been evicted");
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), Some(&"c"));
        assert_eq!(c.get(4), Some(&"d"));
    }

    #[test]
    fn replace_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(order(&c), vec![1, 2]);
        assert_eq!(c.get(1), Some(&11));
        c.insert(3, 30);
        assert_eq!(c.get(2), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = LruCache::new(2);
        assert_eq!(c.get(9), None);
        c.insert(9, ());
        assert!(c.get(9).is_some());
        assert!(c.get(9).is_some());
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot_cache() {
        let mut c = LruCache::new(1);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(&"b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u64 {
            c.insert(i % 13, i);
            let _ = c.get((i * 7) % 13);
            assert!(c.len() <= 8);
        }
        // Every cached key must resolve to the latest value written to it.
        let keys = order(&c);
        assert_eq!(keys.len(), c.len());
        for &k in &keys {
            let v = *c.get(k).unwrap();
            assert_eq!(v % 13, k);
        }
    }
}
