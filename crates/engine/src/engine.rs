//! The query engine: store → batcher → decoder → cache.
//!
//! An [`Engine`] serves [`BatchRequest`]s — connectivity queries grouped by
//! fault set — over a frozen [`LabelStore`] of wire-encoded cycle-space
//! labels. Each distinct fault set is eliminated **once** (or fetched from
//! the LRU cache of eliminated bases, keyed by the canonical fault-set
//! hash); each query then costs ancestry compares plus a parity test — see
//! [`crate::batch`] for the math.
//!
//! # The zero-decode hot path
//!
//! The store's [`DecodedSidecar`](crate::store::DecodedSidecar) holds every
//! label decoded at freeze time, so the cache-hot path touches no
//! `WireReader`: vertex lookups are array reads of ancestry intervals, and
//! elimination (on cache miss) streams `φ` columns straight out of the
//! sidecar's contiguous bank. Records the sidecar could not place fall
//! back to wire decoding transparently;
//! [`EngineConfig::use_sidecar`] `= false` forces the wire path everywhere
//! (the pre-sidecar behavior, kept as a benchmark baseline).
//!
//! The serving state lives in the private `EngineCore` — cache, scratch, and decoder
//! arenas with no reference to a particular store — so one store shared
//! behind an `Arc` can serve any number of engines;
//! [`ParEngine`](crate::par::ParEngine) runs one core per worker thread.
//!
//! The naive serving path — a fresh elimination per query — is kept as
//! [`Engine::execute_naive`], both as the differential-testing oracle and
//! as the benchmark baseline; it shares the per-engine
//! [`ftl_gf2::DecodeScratch`] arenas, so the batched-vs-naive comparison
//! measures algorithm, not allocator.

use crate::batch::{canonical_fault_hash, ConnQuery, EliminatedFaultSet};
use crate::cache::LruCache;
use crate::store::{LabelStore, LabelStoreBuilder, StoreError};
use ftl_cycle_space::{
    CycleSpaceDecoder, CycleSpaceEdgeLabel, CycleSpaceScheme, CycleSpaceVertexLabel,
};
use ftl_gf2::BitVec;
use ftl_graph::{EdgeId, VertexId};
use ftl_labels::AncestryLabel;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Engine tuning knobs.
#[derive(Debug, Copy, Clone)]
pub struct EngineConfig {
    /// Store shard count.
    pub num_shards: usize,
    /// Capacity of the eliminated-basis LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// Whether disconnected results carry the cut certificate `F′`
    /// (costs one small allocation per disconnected query).
    pub collect_certificates: bool,
    /// Whether to serve from the store's decoded sidecar (default). `false`
    /// forces the wire-decoding path on every lookup — the pre-sidecar
    /// behavior, kept for benchmarking the zero-decode win.
    pub use_sidecar: bool,
    /// Chaos hook: panic while resolving any fault set containing this
    /// edge. Exercises [`crate::ParEngine`]'s panic containment
    /// (`catch_unwind` → [`EngineError::WorkerPanicked`]); `None` (the
    /// default) in all production configurations.
    pub chaos_panic_edge: Option<EdgeId>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_shards: 16,
            cache_capacity: 64,
            collect_certificates: false,
            use_sidecar: true,
            chaos_panic_edge: None,
        }
    }
}

/// Why a batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query named a fault set index outside the request.
    UnknownFaultSet {
        /// The offending index.
        index: usize,
        /// How many fault sets the request carried.
        available: usize,
    },
    /// A label was missing from the store or failed to decode.
    Store(StoreError),
    /// A worker thread panicked mid-batch. The panic was contained
    /// ([`crate::ParEngine`] catches it at the batch boundary): the batch
    /// fails with this error, the process survives, and the worker's core
    /// is reset before the next batch.
    WorkerPanicked {
        /// Index of the worker whose closure panicked.
        worker: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFaultSet { index, available } => {
                write!(f, "query names fault set {index}, request has {available}")
            }
            EngineError::Store(e) => write!(f, "label store: {e}"),
            EngineError::WorkerPanicked { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// A batch of connectivity queries, grouped by shared fault sets.
#[derive(Debug, Clone, Default)]
pub struct BatchRequest {
    /// The distinct fault sets of this batch (order and duplicates within a
    /// set are tolerated; sets are canonicalised internally).
    pub fault_sets: Vec<Vec<EdgeId>>,
    /// The queries, each naming its fault set by index.
    pub queries: Vec<ConnQuery>,
}

/// One query's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Whether `s` and `t` are connected in `G \ F` (w.h.p.).
    pub connected: bool,
    /// When disconnected and certificates are enabled: the disconnecting
    /// induced cut `F′ ⊆ F`, as edge ids.
    pub certificate: Option<Vec<EdgeId>>,
}

/// What one [`Engine::execute`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries answered.
    pub queries: usize,
    /// Distinct fault sets in the request.
    pub fault_sets: usize,
    /// Eliminations actually run (fault sets that missed the cache).
    pub eliminations: usize,
    /// Fault sets served from the cache.
    pub cache_hits: usize,
    /// The epoch this batch was served against — 0 for engines over a
    /// fixed store, the [`crate::Epoch`] number for engines built with
    /// `over_epochs` (pinned for the whole batch).
    pub epoch: u64,
}

/// A batch response: per-query results in request order, plus statistics.
///
/// Reusable: [`Engine::execute_into`] clears and refills an existing
/// response, so a serving loop that keeps one around allocates nothing
/// once its `results` vector has reached the high-water batch size.
#[derive(Debug, Clone, Default)]
pub struct BatchResponse {
    /// `results[i]` answers `queries[i]`.
    pub results: Vec<QueryResult>,
    /// Batch statistics.
    pub stats: BatchStats,
}

/// One pre-grouped unit of serving work: a fault set and the queries that
/// share it. This is the shape a batching front end (`ftl-server`) hands
/// the engine after grouping traffic by canonical fault-set hash — no
/// per-query fault-set indices to validate, one elimination per group by
/// construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSetBatch {
    /// The (not necessarily canonicalised) fault set shared by every query
    /// of this group.
    pub faults: Vec<EdgeId>,
    /// `(s, t)` connectivity queries against `G \ faults`.
    pub queries: Vec<(VertexId, VertexId)>,
}

/// One query's outcome inside a group: its answer, or the error that
/// failed *that query alone* (e.g. an out-of-range vertex id).
pub type GroupQueryResult = Result<QueryResult, EngineError>;

/// The outcome of one group of a grouped execute: per-query outcomes in
/// group order, or the group-level error (an unresolvable fault set, a
/// contained worker panic) that failed the whole group.
pub type GroupResult = Result<Vec<GroupQueryResult>, EngineError>;

/// Response to a grouped execute: one [`GroupResult`] per submitted
/// [`FaultSetBatch`], in submission order.
///
/// Unlike [`Engine::execute`], grouped execution isolates failures at the
/// finest granularity the work allows. Per **group**: a group whose fault
/// set names a missing edge (or whose worker panicked) fails alone, and
/// every other group still gets its answers. Per **query** within a
/// group: a query naming an out-of-range vertex fails alone
/// ([`GroupQueryResult`]), and the group's other queries still get their
/// answers — the property a multi-tenant front end needs, since one group
/// can mix queries from many independent connections.
#[derive(Debug, Clone, Default)]
pub struct GroupedResponse {
    /// `groups[i]` answers `FaultSetBatch` `i`.
    pub groups: Vec<GroupResult>,
    /// Aggregate statistics across all groups.
    pub stats: BatchStats,
}

/// Per-thread serving state: the eliminated-basis cache, the decode
/// scratch arenas, and the naive-path decoder. A core holds **no** store
/// reference — callers pass the (shared, immutable) store into every call,
/// which is what lets [`crate::par::ParEngine`] run one core per worker
/// over a single `Arc<LabelStore>` with no shared mutable state.
#[derive(Debug)]
pub(crate) struct EngineCore {
    config: EngineConfig,
    /// Eliminated bases keyed by the canonical fault-set hash **mixed with
    /// the store uid**, each entry also carrying the uid it was computed
    /// against. A basis is only ever a function of the store's `φ` bank,
    /// so a hit requires the uid to match — otherwise an epoch swap (same
    /// edge ids, different labels) could serve a stale basis.
    cache: LruCache<(u64, Arc<EliminatedFaultSet>)>,
    /// Scratch for the per-query `D(s, t)` vector.
    diff: BitVec,
    /// Scratch for canonicalising fault sets.
    ids_scratch: Vec<EdgeId>,
    /// Reusable per-query eliminator for the naive baseline path.
    naive: CycleSpaceDecoder,
    /// Reusable per-fault-set label buffer for the naive baseline path.
    naive_labels: Vec<Vec<CycleSpaceEdgeLabel>>,
    /// Reusable resolved-set buffer for [`EngineCore::execute_into`] —
    /// taken out of `self` for the duration of a batch (it borrows the
    /// core mutably per entry), returned cleared.
    resolved_scratch: Vec<Arc<EliminatedFaultSet>>,
}

impl EngineCore {
    pub(crate) fn new(config: EngineConfig) -> Self {
        EngineCore {
            config,
            cache: LruCache::new(config.cache_capacity),
            diff: BitVec::zeros(0),
            ids_scratch: Vec::new(),
            naive: CycleSpaceDecoder::new(),
            naive_labels: Vec::new(),
            resolved_scratch: Vec::new(),
        }
    }

    pub(crate) fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    pub(crate) fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// The ancestry interval of `v`: a sidecar array read on the hot path,
    /// wire decoding only for records the sidecar could not place.
    // ftl-analyzer: hot-path
    #[inline]
    fn vertex_anc(&self, store: &LabelStore, v: VertexId) -> Result<AncestryLabel, EngineError> {
        if self.config.use_sidecar {
            if let Some(anc) = store.sidecar().vertex_anc(v) {
                return Ok(anc);
            }
        }
        ftl_obs::global().engine.sidecar_fallbacks.inc();
        // ftl-analyzer: allow(hot-alloc) wire fallback only for records the sidecar could not place
        Ok(store.vertex_label::<CycleSpaceVertexLabel>(v)?.anc)
    }

    /// Resolves one fault set to its eliminated basis: canonicalise, probe
    /// the cache, eliminate on miss — from the sidecar's `φ` bank when it
    /// covers the whole set, from wire otherwise.
    pub(crate) fn resolve_fault_set(
        &mut self,
        store: &LabelStore,
        faults: &[EdgeId],
        stats: &mut BatchStats,
    ) -> Result<Arc<EliminatedFaultSet>, EngineError> {
        self.ids_scratch.clear();
        self.ids_scratch.extend_from_slice(faults);
        self.ids_scratch.sort();
        self.ids_scratch.dedup();
        if let Some(chaos) = self.config.chaos_panic_edge {
            if self.ids_scratch.contains(&chaos) {
                // The whole point of this hook is to panic: it exercises
                // ParEngine's catch_unwind containment. Never set in
                // production configs.
                #[allow(clippy::panic)]
                {
                    // ftl-analyzer: allow(panic-free) deliberate chaos-injection hook
                    panic!(
                        "chaos: injected panic resolving fault set containing edge {}",
                        chaos.index()
                    );
                }
            }
        }
        // The store uid is folded into the hash so entries from different
        // epochs land in different slots instead of evicting each other,
        // and checked on hit so a stale epoch's basis (same ids, different
        // φ bank) can never be served.
        let uid = store.uid();
        let hash = canonical_fault_hash(&self.ids_scratch) ^ ftl_seeded::splitmix64(uid);
        if let Some((cached_uid, efs)) = self.cache.get(hash) {
            // Guard against 64-bit hash collisions between distinct fault
            // sets: a hit only counts if the canonical ids really match.
            // On a collision the sets simply keep re-eliminating (correct,
            // just slower) as the cache slot ping-pongs.
            if *cached_uid == uid && efs.edge_ids() == self.ids_scratch.as_slice() {
                stats.cache_hits += 1;
                return Ok(Arc::clone(efs));
            }
        }
        let ids = self.ids_scratch.clone();
        // Time the elimination itself (cold path: cache hits returned
        // above) into the process-wide Elimination stage histogram.
        let eliminate_t0 = std::time::Instant::now();
        let efs = if self.config.use_sidecar && store.sidecar().covers_edges(&ids) {
            EliminatedFaultSet::eliminate_from_sidecar(ids, store.sidecar())?
        } else {
            let labels: Vec<CycleSpaceEdgeLabel> = ids
                .iter()
                .map(|&e| store.edge_label(e))
                .collect::<Result<_, _>>()?;
            EliminatedFaultSet::eliminate(ids, labels)
        };
        ftl_obs::global().stages.record(
            ftl_obs::Stage::Elimination,
            eliminate_t0.elapsed().as_nanos() as u64,
        );
        let efs = Arc::new(efs);
        stats.eliminations += 1;
        self.cache.insert(hash, (uid, Arc::clone(&efs)));
        Ok(efs)
    }

    /// Serves a batch: one elimination (or cache hit) per distinct fault
    /// set, a parity test per query. Results come back in request order.
    pub(crate) fn execute(
        &mut self,
        store: &LabelStore,
        req: &BatchRequest,
    ) -> Result<BatchResponse, EngineError> {
        let mut stats = BatchStats {
            queries: req.queries.len(),
            fault_sets: req.fault_sets.len(),
            ..BatchStats::default()
        };
        let resolved: Vec<Arc<EliminatedFaultSet>> = req
            .fault_sets
            .iter()
            .map(|fs| self.resolve_fault_set(store, fs, &mut stats))
            .collect::<Result<_, _>>()?;
        let mut results = Vec::with_capacity(req.queries.len());
        for q in &req.queries {
            let efs = resolved
                .get(q.fault_set)
                .ok_or(EngineError::UnknownFaultSet {
                    index: q.fault_set,
                    available: resolved.len(),
                })?;
            results.push(self.answer(store, efs, q)?);
        }
        Ok(BatchResponse { results, stats })
    }

    /// [`EngineCore::execute`], but refilling a caller-owned response
    /// instead of allocating one — the steady-state serving shape. The
    /// response's `results` vector and the core's resolved-set scratch are
    /// both reused, so a cache-hot sidecar-served batch performs **zero**
    /// heap allocations end to end (asserted at runtime by the
    /// counting-allocator test `alloc_free.rs`, and lexically by
    /// `ftl-analyzer`'s hot-path rule).
    pub(crate) fn execute_into(
        &mut self,
        store: &LabelStore,
        req: &BatchRequest,
        out: &mut BatchResponse,
    ) -> Result<(), EngineError> {
        out.results.clear();
        out.stats = BatchStats {
            queries: req.queries.len(),
            fault_sets: req.fault_sets.len(),
            ..BatchStats::default()
        };
        // Take the scratch out of `self` for the batch: filling it needs
        // `&mut self` per entry, and `answer` needs `&mut self` per query.
        let mut resolved = std::mem::take(&mut self.resolved_scratch);
        resolved.clear();
        let mut failed = None;
        for fs in &req.fault_sets {
            match self.resolve_fault_set(store, fs, &mut out.stats) {
                Ok(efs) => resolved.push(efs),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if failed.is_none() {
            for q in &req.queries {
                let step = resolved
                    .get(q.fault_set)
                    .ok_or(EngineError::UnknownFaultSet {
                        index: q.fault_set,
                        available: resolved.len(),
                    })
                    .and_then(|efs| {
                        let efs = Arc::clone(efs);
                        self.answer(store, &efs, q)
                    });
                match step {
                    Ok(r) => out.results.push(r),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
        }
        // Drop the batch's Arcs but keep the vector's capacity, then put
        // the scratch back — even on the error path.
        resolved.clear();
        self.resolved_scratch = resolved;
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serves one pre-grouped fault-set batch: resolve the set once,
    /// answer its queries. Only a fault set that fails to resolve fails
    /// the group as a unit; a query that fails on its own (out-of-range
    /// vertex) carries its error in its [`GroupQueryResult`] slot without
    /// touching its neighbors — a group merges queries from many
    /// independent requests, so one bad vertex id must not poison the
    /// rest. See [`GroupedResponse`] for the isolation contract.
    pub(crate) fn execute_group(
        &mut self,
        store: &LabelStore,
        group: &FaultSetBatch,
        stats: &mut BatchStats,
    ) -> GroupResult {
        let efs = self.resolve_fault_set(store, &group.faults, stats)?;
        let mut results = Vec::with_capacity(group.queries.len());
        for &(s, t) in &group.queries {
            let q = ConnQuery { s, t, fault_set: 0 };
            results.push(self.answer(store, &efs, &q));
        }
        stats.queries += group.queries.len();
        Ok(results)
    }

    /// Serves a slice of pre-grouped batches, isolating failures per
    /// group (and per query within a group). Never fails wholesale: the
    /// per-group and per-query `Result`s carry the errors.
    pub(crate) fn execute_grouped(
        &mut self,
        store: &LabelStore,
        groups: &[FaultSetBatch],
    ) -> GroupedResponse {
        let mut stats = BatchStats {
            fault_sets: groups.len(),
            ..BatchStats::default()
        };
        let results = groups
            .iter()
            .map(|g| self.execute_group(store, g, &mut stats))
            .collect();
        GroupedResponse {
            groups: results,
            stats,
        }
    }

    /// [`EngineCore::execute`] restricted to `queries[range]` — the
    /// per-worker slice of a [`crate::par::ParEngine`] batch. Fault sets
    /// are resolved lazily, so a worker eliminates (and caches) only the
    /// sets its own queries reference.
    pub(crate) fn execute_range(
        &mut self,
        store: &LabelStore,
        req: &BatchRequest,
        range: Range<usize>,
    ) -> Result<(Vec<QueryResult>, BatchStats), EngineError> {
        let mut stats = BatchStats {
            queries: range.len(),
            fault_sets: req.fault_sets.len(),
            ..BatchStats::default()
        };
        let mut resolved: Vec<Option<Arc<EliminatedFaultSet>>> = vec![None; req.fault_sets.len()];
        let mut results = Vec::with_capacity(range.len());
        for q in &req.queries[range] {
            // `resolved` is a local, so cloning an entry's Arc out does
            // not pin `self`: answer() can still take its scratch mutably.
            // (The bounds probe and lazy fill collapse into one `get_mut`
            // so no infallible index ever follows a "just filled" fact.)
            let slot = resolved
                .get_mut(q.fault_set)
                .ok_or(EngineError::UnknownFaultSet {
                    index: q.fault_set,
                    available: req.fault_sets.len(),
                })?;
            let efs = match slot {
                Some(efs) => Arc::clone(efs),
                None => {
                    let efs =
                        self.resolve_fault_set(store, &req.fault_sets[q.fault_set], &mut stats)?;
                    resolved[q.fault_set] = Some(Arc::clone(&efs));
                    efs
                }
            };
            results.push(self.answer(store, &efs, q)?);
        }
        Ok((results, stats))
    }

    /// Answers one query against its eliminated fault set — the zero-decode
    /// kernel: two ancestry lookups, one interval compare per tree fault,
    /// one AND-popcount per generator.
    // ftl-analyzer: hot-path
    #[inline]
    fn answer(
        &mut self,
        store: &LabelStore,
        efs: &EliminatedFaultSet,
        q: &ConnQuery,
    ) -> Result<QueryResult, EngineError> {
        let s_anc = self.vertex_anc(store, q.s)?;
        let t_anc = self.vertex_anc(store, q.t)?;
        let gen = efs.separating_generator_anc(&s_anc, &t_anc, &mut self.diff);
        Ok(QueryResult {
            connected: gen.is_none(),
            certificate: match gen {
                // ftl-analyzer: allow(hot-alloc) certificates are opt-in and only built for disconnected queries
                Some(g) if self.config.collect_certificates => Some(efs.certificate(g)),
                _ => None,
            },
        })
    }

    /// The naive serving path: labels are still fetched per fault set, but
    /// every query pays a **fresh elimination** of the augmented system
    /// (the pre-engine `ftl_cycle_space::decode` formulation). Baseline for
    /// the batched path; also its differential oracle.
    ///
    /// All elimination state is arena-reused across queries (the core's
    /// [`CycleSpaceDecoder`] and per-set label buffers), so what this
    /// measures against [`EngineCore::execute`] is the algorithmic gap —
    /// per-query elimination versus shared elimination — not allocator
    /// noise.
    pub(crate) fn execute_naive(
        &mut self,
        store: &LabelStore,
        req: &BatchRequest,
    ) -> Result<BatchResponse, EngineError> {
        let mut stats = BatchStats {
            queries: req.queries.len(),
            fault_sets: req.fault_sets.len(),
            ..BatchStats::default()
        };
        // Decode each fault set's labels once into reusable buffers —
        // through the sidecar when it covers them (decode-free, like the
        // batched path), from wire otherwise.
        if self.naive_labels.len() < req.fault_sets.len() {
            self.naive_labels
                .resize_with(req.fault_sets.len(), Vec::new);
        }
        for (buf, fs) in self.naive_labels.iter_mut().zip(&req.fault_sets) {
            buf.clear();
            for &e in fs {
                let label = if self.config.use_sidecar {
                    match store.sidecar().materialize_edge_label(e) {
                        Some(l) => l,
                        None => store.edge_label(e)?,
                    }
                } else {
                    store.edge_label(e)?
                };
                buf.push(label);
            }
        }
        let mut results = Vec::with_capacity(req.queries.len());
        for q in &req.queries {
            if q.fault_set >= req.fault_sets.len() {
                return Err(EngineError::UnknownFaultSet {
                    index: q.fault_set,
                    available: req.fault_sets.len(),
                });
            }
            let s_anc = self.vertex_anc(store, q.s)?;
            let t_anc = self.vertex_anc(store, q.t)?;
            let sl = CycleSpaceVertexLabel { anc: s_anc };
            let tl = CycleSpaceVertexLabel { anc: t_anc };
            let labels = &self.naive_labels[q.fault_set];
            stats.eliminations += 1;
            let (connected, certificate) = if self.config.collect_certificates {
                match self.naive.decode_with_certificate(&sl, &tl, labels) {
                    Some(idx) => (
                        false,
                        Some(
                            idx.into_iter()
                                .map(|i| req.fault_sets[q.fault_set][i])
                                .collect(),
                        ),
                    ),
                    None => (true, None),
                }
            } else {
                // Boolean decode: no certificate is ever materialized, so
                // separated queries allocate nothing either.
                (self.naive.decode(&sl, &tl, labels), None)
            };
            results.push(QueryResult {
                connected,
                certificate,
            });
        }
        Ok(BatchResponse { results, stats })
    }
}

/// The sharded, batch-decoding label-query engine: one per-thread serving
/// core (cache + scratch) over one (shareable) frozen store.
///
/// Built with [`Engine::over_epochs`], the engine re-pins its store from
/// the [`EpochStore`](crate::EpochStore) at every batch boundary: a batch
/// always runs against one consistent snapshot, and a concurrent epoch
/// swap becomes visible at the *next* batch without the reader ever
/// blocking.
pub struct Engine {
    store: Arc<LabelStore>,
    core: EngineCore,
    /// Publication point to re-pin from at batch boundaries, when epoch-
    /// following; `None` for engines over a fixed store.
    epochs: Option<Arc<crate::epoch::EpochStore>>,
    /// Number of the currently pinned epoch (0 when fixed-store).
    epoch: u64,
}

impl Engine {
    /// Builds an engine over an already-frozen store.
    pub fn new(store: LabelStore, config: EngineConfig) -> Self {
        Engine::with_shared(Arc::new(store), config)
    }

    /// Builds an engine over a store already shared behind an `Arc` —
    /// e.g. the same store a [`crate::par::ParEngine`] serves.
    pub fn with_shared(store: Arc<LabelStore>, config: EngineConfig) -> Self {
        Engine {
            store,
            core: EngineCore::new(config),
            epochs: None,
            epoch: 0,
        }
    }

    /// Builds an epoch-following engine: each batch is served against the
    /// snapshot current at its start, re-pinned per batch.
    pub fn over_epochs(epochs: Arc<crate::epoch::EpochStore>, config: EngineConfig) -> Self {
        let current = epochs.current();
        Engine {
            store: Arc::clone(current.store()),
            core: EngineCore::new(config),
            epochs: Some(epochs),
            epoch: current.number(),
        }
    }

    /// Re-pins the store from the epoch source, if following one. The
    /// stale-epoch cache guard lives in the core (keyed by store uid), so
    /// nothing needs flushing here.
    fn refresh_epoch(&mut self) {
        if let Some(epochs) = &self.epochs {
            let current = epochs.current();
            self.epoch = current.number();
            ftl_obs::global().epoch.pinned.set(self.epoch);
            if !Arc::ptr_eq(&self.store, current.store()) {
                self.store = Arc::clone(current.store());
            }
        }
    }

    /// The epoch the engine is currently pinned to (0 for fixed-store
    /// engines).
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Encodes every label of a cycle-space scheme to the wire format and
    /// loads the frozen store — the usual way to stand an engine up. A
    /// config with `use_sidecar = false` freezes wire-only, skipping the
    /// sidecar's build time and resident bytes along with its reads.
    ///
    /// # Errors
    ///
    /// Fails if a label is too large for its shard's arena
    /// ([`StoreError::ArenaOverflow`]).
    pub fn from_cycle_space(
        scheme: &CycleSpaceScheme,
        config: EngineConfig,
    ) -> Result<Self, StoreError> {
        Ok(Engine::new(
            store_from_cycle_space_for(scheme, config.num_shards, config.use_sidecar)?,
            config,
        ))
    }

    /// The underlying store.
    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    /// A shared handle to the store (for standing up further engines or a
    /// [`crate::par::ParEngine`] over the same frozen labels).
    pub fn shared_store(&self) -> Arc<LabelStore> {
        Arc::clone(&self.store)
    }

    /// Engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.core.config
    }

    /// Cumulative cache hits since construction.
    pub fn cache_hits(&self) -> u64 {
        self.core.cache_hits()
    }

    /// Cumulative cache misses since construction.
    pub fn cache_misses(&self) -> u64 {
        self.core.cache_misses()
    }

    /// Serves a batch: one elimination (or cache hit) per distinct fault
    /// set, a parity test per query. Results come back in request order.
    ///
    /// # Errors
    ///
    /// Fails if a query names a fault set the request does not carry, or if
    /// a referenced label is missing from the store / fails to decode.
    pub fn execute(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError> {
        self.refresh_epoch();
        let mut resp = self.core.execute(&self.store, req)?;
        resp.stats.epoch = self.epoch;
        record_obs_batch(&resp.stats);
        Ok(resp)
    }

    /// [`Engine::execute`], but refilling a caller-owned [`BatchResponse`]
    /// instead of allocating a fresh one. A serving loop that keeps one
    /// response around performs zero heap allocations per cache-hot
    /// sidecar-served batch once its buffers have warmed up (the runtime
    /// twin of `ftl-analyzer`'s no-alloc hot-path rule; asserted by the
    /// counting-allocator test).
    ///
    /// On error the response's contents are unspecified (its buffers are
    /// still valid to reuse).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::execute`].
    pub fn execute_into(
        &mut self,
        req: &BatchRequest,
        out: &mut BatchResponse,
    ) -> Result<(), EngineError> {
        self.refresh_epoch();
        self.core.execute_into(&self.store, req, out)?;
        out.stats.epoch = self.epoch;
        record_obs_batch(&out.stats);
        Ok(())
    }

    /// Serves pre-grouped fault-set batches — the batching front end's
    /// entry point ([`FaultSetBatch`] is what `ftl-server` builds after
    /// grouping cross-connection traffic by canonical fault-set hash).
    /// Each group pays one elimination (or cache hit); failures are
    /// isolated per group, so the call itself never fails — see
    /// [`GroupedResponse`].
    pub fn execute_grouped(&mut self, groups: &[FaultSetBatch]) -> GroupedResponse {
        self.refresh_epoch();
        let mut resp = self.core.execute_grouped(&self.store, groups);
        resp.stats.epoch = self.epoch;
        record_obs_batch(&resp.stats);
        resp
    }

    /// The naive serving path — a fresh elimination per query — kept as
    /// the benchmark baseline and differential oracle. See
    /// `EngineCore::execute_naive` for the arena-reuse story.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::execute`].
    pub fn execute_naive(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError> {
        self.refresh_epoch();
        let mut resp = self.core.execute_naive(&self.store, req)?;
        resp.stats.epoch = self.epoch;
        record_obs_batch(&resp.stats);
        Ok(resp)
    }
}

/// Folds one batch's counters into the process-wide engine metrics —
/// three relaxed atomic adds per *batch* (not per query), off the
/// per-query hot loop.
// ftl-analyzer: hot-path
#[inline]
pub(crate) fn record_obs_batch(stats: &BatchStats) {
    ftl_obs::global().engine.record_batch(
        stats.queries as u64,
        stats.eliminations as u64,
        stats.cache_hits as u64,
    );
}

/// Wire-encodes every label of a cycle-space scheme into a frozen store
/// (with the decoded sidecar).
///
/// # Errors
///
/// Fails if a label is too large for its shard's arena
/// ([`StoreError::ArenaOverflow`]).
pub fn store_from_cycle_space(
    scheme: &CycleSpaceScheme,
    num_shards: usize,
) -> Result<LabelStore, StoreError> {
    store_from_cycle_space_for(scheme, num_shards, true)
}

fn store_from_cycle_space_for(
    scheme: &CycleSpaceScheme,
    num_shards: usize,
    with_sidecar: bool,
) -> Result<LabelStore, StoreError> {
    let mut builder = LabelStoreBuilder::new(num_shards);
    for i in 0..scheme.num_vertices() {
        let v = VertexId::new(i);
        builder.put_vertex_label(v, &scheme.vertex_label(v))?;
    }
    for i in 0..scheme.num_edges() {
        let e = EdgeId::new(i);
        builder.put_edge_label(e, &scheme.edge_label(e))?;
    }
    Ok(if with_sidecar {
        builder.freeze()
    } else {
        builder.freeze_wire_only()
    })
}
