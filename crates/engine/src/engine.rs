//! The query engine: store → batcher → decoder → cache.
//!
//! An [`Engine`] owns a frozen [`LabelStore`] of wire-encoded cycle-space
//! labels and serves [`BatchRequest`]s: connectivity queries grouped by
//! fault set. Each distinct fault set is eliminated **once** (or fetched
//! from the LRU cache of eliminated bases, keyed by the canonical
//! fault-set hash); each query then costs ancestry checks plus a parity
//! test — see [`crate::batch`] for the math.
//!
//! The naive serving path — a fresh elimination per query — is kept as
//! [`Engine::execute_naive`], both as the differential-testing oracle and
//! as the benchmark baseline.

use crate::batch::{canonical_fault_hash, ConnQuery, EliminatedFaultSet};
use crate::cache::LruCache;
use crate::store::{LabelStore, LabelStoreBuilder, StoreError};
use ftl_cycle_space::{
    CycleSpaceDecoder, CycleSpaceEdgeLabel, CycleSpaceScheme, CycleSpaceVertexLabel,
};
use ftl_gf2::BitVec;
use ftl_graph::{EdgeId, VertexId};
use std::fmt;
use std::sync::Arc;

/// Engine tuning knobs.
#[derive(Debug, Copy, Clone)]
pub struct EngineConfig {
    /// Store shard count.
    pub num_shards: usize,
    /// Capacity of the eliminated-basis LRU cache (0 disables caching).
    pub cache_capacity: usize,
    /// Whether disconnected results carry the cut certificate `F′`
    /// (costs one small allocation per disconnected query).
    pub collect_certificates: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_shards: 16,
            cache_capacity: 64,
            collect_certificates: false,
        }
    }
}

/// Why a batch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query named a fault set index outside the request.
    UnknownFaultSet {
        /// The offending index.
        index: usize,
        /// How many fault sets the request carried.
        available: usize,
    },
    /// A label was missing from the store or failed to decode.
    Store(StoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFaultSet { index, available } => {
                write!(f, "query names fault set {index}, request has {available}")
            }
            EngineError::Store(e) => write!(f, "label store: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// A batch of connectivity queries, grouped by shared fault sets.
#[derive(Debug, Clone, Default)]
pub struct BatchRequest {
    /// The distinct fault sets of this batch (order and duplicates within a
    /// set are tolerated; sets are canonicalised internally).
    pub fault_sets: Vec<Vec<EdgeId>>,
    /// The queries, each naming its fault set by index.
    pub queries: Vec<ConnQuery>,
}

/// One query's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Whether `s` and `t` are connected in `G \ F` (w.h.p.).
    pub connected: bool,
    /// When disconnected and certificates are enabled: the disconnecting
    /// induced cut `F′ ⊆ F`, as edge ids.
    pub certificate: Option<Vec<EdgeId>>,
}

/// What one [`Engine::execute`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries answered.
    pub queries: usize,
    /// Distinct fault sets in the request.
    pub fault_sets: usize,
    /// Eliminations actually run (fault sets that missed the cache).
    pub eliminations: usize,
    /// Fault sets served from the cache.
    pub cache_hits: usize,
}

/// A batch response: per-query results in request order, plus statistics.
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// `results[i]` answers `queries[i]`.
    pub results: Vec<QueryResult>,
    /// Batch statistics.
    pub stats: BatchStats,
}

/// The sharded, batch-decoding label-query engine.
pub struct Engine {
    config: EngineConfig,
    store: LabelStore,
    cache: LruCache<Arc<EliminatedFaultSet>>,
    /// Scratch for the per-query `D(s, t)` vector.
    diff: BitVec,
    /// Scratch for canonicalising fault sets.
    ids_scratch: Vec<EdgeId>,
    /// Reusable per-query eliminator for the naive baseline path.
    naive: CycleSpaceDecoder,
}

impl Engine {
    /// Builds an engine over an already-frozen store.
    pub fn new(store: LabelStore, config: EngineConfig) -> Self {
        Engine {
            config,
            store,
            cache: LruCache::new(config.cache_capacity),
            diff: BitVec::zeros(0),
            ids_scratch: Vec::new(),
            naive: CycleSpaceDecoder::new(),
        }
    }

    /// Encodes every label of a cycle-space scheme to the wire format and
    /// loads the frozen store — the usual way to stand an engine up.
    pub fn from_cycle_space(scheme: &CycleSpaceScheme, config: EngineConfig) -> Self {
        let mut builder = LabelStoreBuilder::new(config.num_shards);
        for i in 0..scheme.num_vertices() {
            let v = VertexId::new(i);
            builder.put_vertex_label(v, &scheme.vertex_label(v));
        }
        for i in 0..scheme.num_edges() {
            let e = EdgeId::new(i);
            builder.put_edge_label(e, &scheme.edge_label(e));
        }
        Engine::new(builder.freeze(), config)
    }

    /// The underlying store.
    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    /// Engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Cumulative cache hits since construction.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cumulative cache misses since construction.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Resolves one fault set to its eliminated basis: canonicalise, probe
    /// the cache, eliminate on miss.
    fn resolve_fault_set(
        &mut self,
        faults: &[EdgeId],
        stats: &mut BatchStats,
    ) -> Result<Arc<EliminatedFaultSet>, EngineError> {
        self.ids_scratch.clear();
        self.ids_scratch.extend_from_slice(faults);
        self.ids_scratch.sort();
        self.ids_scratch.dedup();
        let hash = canonical_fault_hash(&self.ids_scratch);
        if let Some(efs) = self.cache.get(hash) {
            // Guard against 64-bit hash collisions between distinct fault
            // sets: a hit only counts if the canonical ids really match.
            // On a collision the sets simply keep re-eliminating (correct,
            // just slower) as the cache slot ping-pongs.
            if efs.edge_ids() == self.ids_scratch.as_slice() {
                stats.cache_hits += 1;
                return Ok(Arc::clone(efs));
            }
        }
        let ids = self.ids_scratch.clone();
        let labels: Vec<CycleSpaceEdgeLabel> = ids
            .iter()
            .map(|&e| self.store.edge_label(e))
            .collect::<Result<_, _>>()?;
        let efs = Arc::new(EliminatedFaultSet::eliminate(ids, labels));
        stats.eliminations += 1;
        self.cache.insert(hash, Arc::clone(&efs));
        Ok(efs)
    }

    /// Serves a batch: one elimination (or cache hit) per distinct fault
    /// set, a parity test per query. Results come back in request order.
    ///
    /// # Errors
    ///
    /// Fails if a query names a fault set the request does not carry, or if
    /// a referenced label is missing from the store / fails to decode.
    pub fn execute(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError> {
        let mut stats = BatchStats {
            queries: req.queries.len(),
            fault_sets: req.fault_sets.len(),
            ..BatchStats::default()
        };
        let resolved: Vec<Arc<EliminatedFaultSet>> = req
            .fault_sets
            .iter()
            .map(|fs| self.resolve_fault_set(fs, &mut stats))
            .collect::<Result<_, _>>()?;
        let mut results = Vec::with_capacity(req.queries.len());
        for q in &req.queries {
            let efs = resolved
                .get(q.fault_set)
                .ok_or(EngineError::UnknownFaultSet {
                    index: q.fault_set,
                    available: resolved.len(),
                })?;
            let sl: CycleSpaceVertexLabel = self.store.vertex_label(q.s)?;
            let tl: CycleSpaceVertexLabel = self.store.vertex_label(q.t)?;
            let gen = efs.separating_generator(&sl, &tl, &mut self.diff);
            results.push(QueryResult {
                connected: gen.is_none(),
                certificate: match gen {
                    Some(g) if self.config.collect_certificates => Some(efs.certificate(g)),
                    _ => None,
                },
            });
        }
        Ok(BatchResponse { results, stats })
    }

    /// The naive serving path: labels are still fetched per fault set, but
    /// every query pays a **fresh elimination** of the augmented system
    /// (the pre-engine `ftl_cycle_space::decode` formulation). Baseline for
    /// the batched path; also its differential oracle.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Engine::execute`].
    pub fn execute_naive(&mut self, req: &BatchRequest) -> Result<BatchResponse, EngineError> {
        let mut stats = BatchStats {
            queries: req.queries.len(),
            fault_sets: req.fault_sets.len(),
            ..BatchStats::default()
        };
        let labels_per_set: Vec<Vec<CycleSpaceEdgeLabel>> = req
            .fault_sets
            .iter()
            .map(|fs| {
                fs.iter()
                    .map(|&e| self.store.edge_label(e))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;
        let mut results = Vec::with_capacity(req.queries.len());
        for q in &req.queries {
            let labels = labels_per_set
                .get(q.fault_set)
                .ok_or(EngineError::UnknownFaultSet {
                    index: q.fault_set,
                    available: labels_per_set.len(),
                })?;
            let sl: CycleSpaceVertexLabel = self.store.vertex_label(q.s)?;
            let tl: CycleSpaceVertexLabel = self.store.vertex_label(q.t)?;
            stats.eliminations += 1;
            let cert = self.naive.decode_with_certificate(&sl, &tl, labels);
            results.push(QueryResult {
                connected: cert.is_none(),
                certificate: match cert {
                    Some(idx) if self.config.collect_certificates => Some(
                        idx.into_iter()
                            .map(|i| req.fault_sets[q.fault_set][i])
                            .collect(),
                    ),
                    _ => None,
                },
            });
        }
        Ok(BatchResponse { results, stats })
    }
}
