//! The sharded label store: wire-encoded labels held off-struct, hash-
//! sharded by id, with a lock-free read path.
//!
//! The store follows a build-then-freeze lifecycle: a
//! [`LabelStoreBuilder`] routes encoded records to shards (any thread
//! layout — the builder is plain owned data), and [`freeze`] seals them
//! into an immutable [`LabelStore`]. After the freeze every read is a pure
//! `&self` lookup into that shard's index — no locks, no atomics, so
//! arbitrarily many query threads can share one store behind an `Arc`.
//!
//! Records live in one contiguous byte arena per shard (id → offset range),
//! keeping the resident footprint at the wire-format size rather than the
//! in-memory struct size.
//!
//! [`freeze`]: LabelStoreBuilder::freeze

use ftl_graph::{EdgeId, VertexId};
use ftl_labels::wire::{WireError, WireLabel};
use std::collections::HashMap;
use std::fmt;

/// Which id space a record belongs to.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Namespace {
    /// Vertex labels, keyed by vertex id.
    Vertex,
    /// Edge labels, keyed by edge id.
    Edge,
}

/// A store key: namespace plus 32-bit id.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// The id space.
    pub ns: Namespace,
    /// The id within it.
    pub id: u32,
}

impl StoreKey {
    /// The key of a vertex record.
    pub fn vertex(v: VertexId) -> Self {
        StoreKey {
            ns: Namespace::Vertex,
            id: v.raw(),
        }
    }

    /// The key of an edge record.
    pub fn edge(e: EdgeId) -> Self {
        StoreKey {
            ns: Namespace::Edge,
            id: e.index() as u32,
        }
    }

    /// SplitMix64 finalizer over the packed key — the shard router.
    fn hash(self) -> u64 {
        let ns_bit = match self.ns {
            Namespace::Vertex => 0u64,
            Namespace::Edge => 1u64 << 32,
        };
        ftl_seeded::splitmix64(self.id as u64 | ns_bit)
    }
}

/// Why a typed store read failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No record under that key.
    Missing(StoreKey),
    /// The stored bytes failed wire decoding.
    Wire(WireError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Missing(k) => write!(f, "no record for {k:?}"),
            StoreError::Wire(e) => write!(f, "stored record corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

#[derive(Debug, Default)]
struct Shard {
    /// Key → byte range into `bytes`.
    index: HashMap<StoreKey, (u32, u32)>,
    /// All records of this shard, back to back.
    bytes: Vec<u8>,
}

impl Shard {
    fn put(&mut self, key: StoreKey, record: &[u8]) {
        // Offsets are u32 to keep the index small; fail loudly rather than
        // wrap once a shard's arena outgrows that (add shards instead).
        // The *end* offset must fit too, or the record would be stored but
        // unreadable.
        let start = u32::try_from(self.bytes.len())
            .ok()
            .filter(|_| u32::try_from(self.bytes.len() + record.len()).is_ok())
            .expect("shard arena exceeds u32 offsets; raise num_shards");
        self.bytes.extend_from_slice(record);
        self.index.insert(key, (start, record.len() as u32));
    }

    fn get(&self, key: StoreKey) -> Option<&[u8]> {
        let &(start, len) = self.index.get(&key)?;
        Some(&self.bytes[start as usize..start as usize + len as usize])
    }
}

/// Mutable staging area for a [`LabelStore`].
#[derive(Debug)]
pub struct LabelStoreBuilder {
    shards: Vec<Shard>,
}

impl LabelStoreBuilder {
    /// A builder with `num_shards` shards (minimum 1).
    pub fn new(num_shards: usize) -> Self {
        let n = num_shards.max(1);
        LabelStoreBuilder {
            shards: (0..n).map(|_| Shard::default()).collect(),
        }
    }

    fn shard_of(&self, key: StoreKey) -> usize {
        (key.hash() % self.shards.len() as u64) as usize
    }

    /// Stores raw wire bytes under a key (overwrites an earlier record for
    /// the same key; its bytes are retained in the arena but unreachable).
    pub fn put_bytes(&mut self, key: StoreKey, record: &[u8]) {
        let s = self.shard_of(key);
        self.shards[s].put(key, record);
    }

    /// Encodes and stores a vertex label.
    pub fn put_vertex_label<L: WireLabel>(&mut self, v: VertexId, label: &L) {
        self.put_bytes(StoreKey::vertex(v), &label.to_wire());
    }

    /// Encodes and stores an edge label.
    pub fn put_edge_label<L: WireLabel>(&mut self, e: EdgeId, label: &L) {
        self.put_bytes(StoreKey::edge(e), &label.to_wire());
    }

    /// Seals the shards into an immutable, lock-free-readable store.
    pub fn freeze(self) -> LabelStore {
        LabelStore {
            shards: self.shards.into_boxed_slice(),
        }
    }
}

/// The frozen, shareable label store. See the module docs for the
/// concurrency story.
#[derive(Debug)]
pub struct LabelStore {
    shards: Box<[Shard]>,
}

impl LabelStore {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of stored records.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total wire bytes held across shards.
    pub fn bytes_total(&self) -> usize {
        self.shards.iter().map(|s| s.bytes.len()).sum()
    }

    /// Number of records in shard `i` (for balance diagnostics).
    pub fn shard_len(&self, i: usize) -> usize {
        self.shards[i].index.len()
    }

    /// The raw wire bytes stored under `key`, if any.
    pub fn get_bytes(&self, key: StoreKey) -> Option<&[u8]> {
        let s = (key.hash() % self.shards.len() as u64) as usize;
        self.shards[s].get(key)
    }

    /// Decodes the record under `key` as an `L`.
    pub fn get_label<L: WireLabel>(&self, key: StoreKey) -> Result<L, StoreError> {
        let bytes = self.get_bytes(key).ok_or(StoreError::Missing(key))?;
        Ok(L::from_wire(bytes)?)
    }

    /// Decodes the vertex record of `v` as an `L`.
    pub fn vertex_label<L: WireLabel>(&self, v: VertexId) -> Result<L, StoreError> {
        self.get_label(StoreKey::vertex(v))
    }

    /// Decodes the edge record of `e` as an `L`.
    pub fn edge_label<L: WireLabel>(&self, e: EdgeId) -> Result<L, StoreError> {
        self.get_label(StoreKey::edge(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_labels::AncestryLabel;

    fn anc(pre: u32, post: u32) -> AncestryLabel {
        AncestryLabel { pre, post }
    }

    #[test]
    fn put_freeze_get_roundtrip() {
        let mut b = LabelStoreBuilder::new(4);
        for i in 0..50u32 {
            b.put_vertex_label(VertexId::new(i as usize), &anc(i, i + 1));
            b.put_edge_label(EdgeId::new(i as usize), &anc(1000 + i, 1000 + i + 1));
        }
        let store = b.freeze();
        assert_eq!(store.len(), 100);
        assert!(!store.is_empty());
        assert!(store.bytes_total() >= 100 * 16);
        for i in 0..50u32 {
            let v: AncestryLabel = store.vertex_label(VertexId::new(i as usize)).unwrap();
            assert_eq!(v, anc(i, i + 1));
            let e: AncestryLabel = store.edge_label(EdgeId::new(i as usize)).unwrap();
            assert_eq!(e, anc(1000 + i, 1000 + i + 1));
        }
    }

    #[test]
    fn vertex_and_edge_namespaces_are_disjoint() {
        let mut b = LabelStoreBuilder::new(2);
        b.put_vertex_label(VertexId::new(7), &anc(1, 2));
        let store = b.freeze();
        assert!(store
            .vertex_label::<AncestryLabel>(VertexId::new(7))
            .is_ok());
        assert_eq!(
            store.edge_label::<AncestryLabel>(EdgeId::new(7)),
            Err(StoreError::Missing(StoreKey::edge(EdgeId::new(7))))
        );
    }

    #[test]
    fn overwrite_takes_effect() {
        let mut b = LabelStoreBuilder::new(1);
        b.put_vertex_label(VertexId::new(0), &anc(1, 1));
        b.put_vertex_label(VertexId::new(0), &anc(9, 9));
        let store = b.freeze();
        assert_eq!(
            store
                .vertex_label::<AncestryLabel>(VertexId::new(0))
                .unwrap(),
            anc(9, 9)
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn shards_spread_keys() {
        let mut b = LabelStoreBuilder::new(8);
        for i in 0..800 {
            b.put_vertex_label(VertexId::new(i), &anc(i as u32, i as u32));
        }
        let store = b.freeze();
        assert_eq!(store.num_shards(), 8);
        for s in 0..8 {
            let len = store.shard_len(s);
            assert!((40..=160).contains(&len), "shard {s} holds {len} of 800");
        }
    }

    #[test]
    fn corrupt_stored_bytes_surface_as_wire_error() {
        let mut b = LabelStoreBuilder::new(1);
        let mut bytes = anc(3, 4).to_wire();
        bytes[0] ^= 0xFF;
        b.put_bytes(StoreKey::vertex(VertexId::new(0)), &bytes);
        let store = b.freeze();
        assert!(matches!(
            store.vertex_label::<AncestryLabel>(VertexId::new(0)),
            Err(StoreError::Wire(WireError::BadMagic))
        ));
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let mut b = LabelStoreBuilder::new(0);
        b.put_vertex_label(VertexId::new(0), &anc(0, 0));
        let store = b.freeze();
        assert_eq!(store.num_shards(), 1);
        assert_eq!(store.len(), 1);
    }
}
