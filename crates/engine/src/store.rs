//! The sharded label store: wire-encoded labels held off-struct, hash-
//! sharded by id, with a lock-free read path.
//!
//! The store follows a build-then-freeze lifecycle: a
//! [`LabelStoreBuilder`] routes encoded records to shards (any thread
//! layout — the builder is plain owned data), and [`freeze`] seals them
//! into an immutable [`LabelStore`]. After the freeze every read is a pure
//! `&self` lookup into that shard's index — no locks, no atomics, so
//! arbitrarily many query threads can share one store behind an `Arc`.
//!
//! Records live in one contiguous byte arena per shard (id → offset range),
//! keeping the resident footprint at the wire-format size rather than the
//! in-memory struct size.
//!
//! [`freeze`]: LabelStoreBuilder::freeze

use ftl_cycle_space::{CycleSpaceEdgeLabel, CycleSpaceVertexLabel};
use ftl_gf2::{BitMatrix, BitVec};
use ftl_graph::{EdgeId, VertexId};
use ftl_labels::wire::{WireError, WireLabel};
use ftl_labels::AncestryLabel;
use ftl_seeded::{DetHashMap, Seed};
use ftl_sketch::{Sketch, SketchEdgeLabel, SketchParams, SketchVertexLabel};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic source of store identities. Every freeze — full, wire-only,
/// or delta — mints a fresh uid, so two stores with equal content but
/// different provenance (and possibly different `φ` banks) never compare
/// equal by identity. The engine's elimination cache keys on this to stay
/// epoch-correct.
static NEXT_STORE_UID: AtomicU64 = AtomicU64::new(1);

fn fresh_store_uid() -> u64 {
    NEXT_STORE_UID.fetch_add(1, Ordering::Relaxed)
}

/// Which id space a record belongs to.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Namespace {
    /// Vertex labels, keyed by vertex id.
    Vertex,
    /// Edge labels, keyed by edge id.
    Edge,
}

/// A store key: namespace plus 32-bit id.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// The id space.
    pub ns: Namespace,
    /// The id within it.
    pub id: u32,
}

impl StoreKey {
    /// The key of a vertex record.
    pub fn vertex(v: VertexId) -> Self {
        StoreKey {
            ns: Namespace::Vertex,
            id: v.raw(),
        }
    }

    /// The key of an edge record.
    pub fn edge(e: EdgeId) -> Self {
        StoreKey {
            ns: Namespace::Edge,
            id: e.index() as u32,
        }
    }

    /// SplitMix64 finalizer over the packed key — the shard router.
    fn hash(self) -> u64 {
        let ns_bit = match self.ns {
            Namespace::Vertex => 0u64,
            Namespace::Edge => 1u64 << 32,
        };
        ftl_seeded::splitmix64(self.id as u64 | ns_bit)
    }
}

/// Why a typed store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No record under that key.
    Missing(StoreKey),
    /// The stored bytes failed wire decoding.
    Wire(WireError),
    /// Writing this record would push its shard's byte arena past the
    /// `u32` offset space of the index. The store is unchanged; callers
    /// should rebuild with more shards.
    ArenaOverflow {
        /// The key whose record did not fit.
        key: StoreKey,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Missing(k) => write!(f, "no record for {k:?}"),
            StoreError::Wire(e) => write!(f, "stored record corrupt: {e}"),
            StoreError::ArenaOverflow { key } => write!(
                f,
                "record for {key:?} would overflow its shard's u32 arena offsets; \
                 raise num_shards"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

#[derive(Debug, Default, Clone)]
struct Shard {
    /// Key → byte range into `bytes`. Deterministic hasher: iteration
    /// order feeds the sidecar build, which must be reproducible run to
    /// run (FTL004).
    index: DetHashMap<StoreKey, (u32, u32)>,
    /// All records of this shard, back to back.
    bytes: Vec<u8>,
}

impl Shard {
    fn put(&mut self, key: StoreKey, record: &[u8]) -> Result<(), StoreError> {
        // Offsets are u32 to keep the index small; surface a typed error
        // rather than wrap once a shard's arena outgrows that (add shards
        // instead). The *end* offset must fit too, or the record would be
        // stored but unreadable.
        let start = u32::try_from(self.bytes.len())
            .ok()
            .filter(|_| u32::try_from(self.bytes.len() + record.len()).is_ok())
            .ok_or(StoreError::ArenaOverflow { key })?;
        self.bytes.extend_from_slice(record);
        self.index.insert(key, (start, record.len() as u32));
        Ok(())
    }

    fn get(&self, key: StoreKey) -> Option<&[u8]> {
        let &(start, len) = self.index.get(&key)?;
        Some(&self.bytes[start as usize..start as usize + len as usize])
    }
}

/// Mutable staging area for a [`LabelStore`].
#[derive(Debug)]
pub struct LabelStoreBuilder {
    shards: Vec<Shard>,
}

impl LabelStoreBuilder {
    /// A builder with `num_shards` shards (minimum 1).
    pub fn new(num_shards: usize) -> Self {
        let n = num_shards.max(1);
        LabelStoreBuilder {
            shards: (0..n).map(|_| Shard::default()).collect(),
        }
    }

    fn shard_of(&self, key: StoreKey) -> usize {
        (key.hash() % self.shards.len() as u64) as usize
    }

    /// Stores raw wire bytes under a key (overwrites an earlier record for
    /// the same key; its bytes are retained in the arena but unreachable).
    ///
    /// # Errors
    ///
    /// [`StoreError::ArenaOverflow`] if the record would push its shard's
    /// arena past `u32` offsets; the builder is unchanged.
    pub fn put_bytes(&mut self, key: StoreKey, record: &[u8]) -> Result<(), StoreError> {
        let s = self.shard_of(key);
        self.shards[s].put(key, record)
    }

    /// Encodes and stores a vertex label.
    ///
    /// # Errors
    ///
    /// Same failure mode as [`LabelStoreBuilder::put_bytes`].
    pub fn put_vertex_label<L: WireLabel>(
        &mut self,
        v: VertexId,
        label: &L,
    ) -> Result<(), StoreError> {
        self.put_bytes(StoreKey::vertex(v), &label.to_wire())
    }

    /// Encodes and stores an edge label.
    ///
    /// # Errors
    ///
    /// Same failure mode as [`LabelStoreBuilder::put_bytes`].
    pub fn put_edge_label<L: WireLabel>(&mut self, e: EdgeId, label: &L) -> Result<(), StoreError> {
        self.put_bytes(StoreKey::edge(e), &label.to_wire())
    }

    /// Seals the shards into an immutable, lock-free-readable store and
    /// materializes the [`DecodedSidecar`]: every record the sidecar
    /// understands is decoded **once, here**, so the serving hot path never
    /// touches a `WireReader` again.
    pub fn freeze(self) -> LabelStore {
        let shards: Vec<Arc<Shard>> = self.shards.into_iter().map(Arc::new).collect();
        let sidecar = DecodedSidecar::build(&shards);
        LabelStore {
            shards: shards.into_boxed_slice(),
            sidecar,
            uid: fresh_store_uid(),
            wire_only: false,
        }
    }

    /// [`LabelStoreBuilder::freeze`] without the decoded sidecar: every
    /// read goes through wire decoding. For memory-constrained stores —
    /// and for engines pinned to the wire path
    /// (`EngineConfig::use_sidecar = false`), which would otherwise pay
    /// the sidecar's build time and resident bytes without ever reading
    /// it.
    pub fn freeze_wire_only(self) -> LabelStore {
        LabelStore {
            shards: self
                .shards
                .into_iter()
                .map(Arc::new)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            sidecar: DecodedSidecar::default(),
            uid: fresh_store_uid(),
            wire_only: true,
        }
    }
}

/// The frozen, shareable label store. See the module docs for the
/// concurrency story.
#[derive(Debug)]
pub struct LabelStore {
    /// Shards are individually reference-counted so a delta-freeze can
    /// splice the untouched ones from the previous epoch at zero copy
    /// cost.
    shards: Box<[Arc<Shard>]>,
    sidecar: DecodedSidecar,
    /// Process-unique identity of this frozen snapshot (see
    /// [`LabelStore::uid`]).
    uid: u64,
    /// Whether this store was deliberately frozen without a sidecar.
    wire_only: bool,
}

impl LabelStore {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Process-unique identity of this frozen snapshot. Two stores never
    /// share a uid, even across delta-freezes of the same lineage —
    /// anything derived from label *contents* (e.g. a cached elimination
    /// basis) must be keyed or guarded by it.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Whether this store was frozen without a decoded sidecar
    /// ([`LabelStoreBuilder::freeze_wire_only`]); delta-freezes of such a
    /// store stay wire-only rather than growing a sidecar mid-lineage.
    pub fn is_wire_only(&self) -> bool {
        self.wire_only
    }

    /// Freezes a **successor snapshot**: applies `removals` then `upserts`
    /// on top of this store, deep-copying only the shards that one of the
    /// touched keys routes to and splicing every other shard from `self`
    /// by reference. The sidecar is patched in place when every upsert is
    /// placeable (dense cycle-space records of matching `φ` width) and
    /// rebuilt from the new shards otherwise.
    ///
    /// The successor has a fresh [`uid`](LabelStore::uid); `self` is
    /// untouched and keeps serving readers.
    ///
    /// # Errors
    ///
    /// [`StoreError::ArenaOverflow`] if an upsert would push its shard's
    /// arena past `u32` offsets; `self` keeps serving unchanged.
    pub fn delta_freeze(
        &self,
        upserts: &[(StoreKey, Vec<u8>)],
        removals: &[StoreKey],
    ) -> Result<Self, StoreError> {
        let n = self.shards.len() as u64;
        let mut touched = vec![false; self.shards.len()];
        for key in removals {
            touched[(key.hash() % n) as usize] = true;
        }
        for (key, _) in upserts {
            touched[(key.hash() % n) as usize] = true;
        }
        let mut shards: Vec<Arc<Shard>> = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            if !touched[i] {
                shards.push(Arc::clone(shard));
                continue;
            }
            let mut fresh = Shard::clone(shard);
            for key in removals {
                if (key.hash() % n) as usize == i {
                    // Bytes stay in the arena, dead; only the index entry
                    // goes. Churn-heavy lineages should rebuild
                    // periodically to reclaim them.
                    fresh.index.remove(key);
                }
            }
            for (key, record) in upserts {
                if (key.hash() % n) as usize == i {
                    fresh.put(*key, record)?;
                }
            }
            shards.push(Arc::new(fresh));
        }
        let sidecar = if self.wire_only {
            DecodedSidecar::default()
        } else {
            DecodedSidecar::delta(&self.sidecar, upserts, removals)
                .unwrap_or_else(|| DecodedSidecar::build(&shards))
        };
        Ok(LabelStore {
            shards: shards.into_boxed_slice(),
            sidecar,
            uid: fresh_store_uid(),
            wire_only: self.wire_only,
        })
    }

    /// Whether shard `i` is physically shared (same allocation) with the
    /// given other store — true for shards a delta-freeze spliced.
    pub fn shares_shard_with(&self, other: &LabelStore, i: usize) -> bool {
        Arc::ptr_eq(&self.shards[i], &other.shards[i])
    }

    /// Total number of stored records.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total wire bytes held across shards.
    pub fn bytes_total(&self) -> usize {
        self.shards.iter().map(|s| s.bytes.len()).sum()
    }

    /// Number of records in shard `i` (for balance diagnostics).
    pub fn shard_len(&self, i: usize) -> usize {
        self.shards[i].index.len()
    }

    /// The raw wire bytes stored under `key`, if any.
    pub fn get_bytes(&self, key: StoreKey) -> Option<&[u8]> {
        let s = (key.hash() % self.shards.len() as u64) as usize;
        self.shards[s].get(key)
    }

    /// Decodes the record under `key` as an `L`.
    pub fn get_label<L: WireLabel>(&self, key: StoreKey) -> Result<L, StoreError> {
        let bytes = self.get_bytes(key).ok_or(StoreError::Missing(key))?;
        Ok(L::from_wire(bytes)?)
    }

    /// Decodes the vertex record of `v` as an `L`.
    pub fn vertex_label<L: WireLabel>(&self, v: VertexId) -> Result<L, StoreError> {
        self.get_label(StoreKey::vertex(v))
    }

    /// Decodes the edge record of `e` as an `L`.
    pub fn edge_label<L: WireLabel>(&self, e: EdgeId) -> Result<L, StoreError> {
        self.get_label(StoreKey::edge(e))
    }

    /// The decoded-label sidecar materialized at freeze time — the
    /// zero-decode serving surface. Like the shards it is immutable, so it
    /// shares the store's lock-free `&self` read story.
    pub fn sidecar(&self) -> &DecodedSidecar {
        &self.sidecar
    }
}

/// Decoded subtree-sketch material of one tree edge (sketch-scheme
/// stores).
#[derive(Debug, Clone)]
pub struct SketchTreeEntry {
    /// `Sketch_G(V(T_c))` for the child endpoint `c`.
    pub sketch: Sketch,
    /// The identifier seed `S_ID`.
    pub sid: Seed,
    /// The sampling seed `S_h`.
    pub sh: Seed,
}

/// Per-vertex / per-edge label artifacts decoded **once at freeze time**
/// into contiguous arena-backed arrays, so the serving hot path is index
/// lookups + ancestry compares + parity tests with no `WireReader` in
/// sight:
///
/// * **ancestry intervals** — `anc(v)` for every vertex record
///   (cycle-space, sketch, or bare ancestry labels all carry one);
/// * **`φ` column bank** — one [`BitMatrix`] row per edge id for
///   cycle-space edge labels, plus the precomputed child interval of every
///   tree edge (what the per-query `D(s, t)` sweep needs);
/// * **sketch banks** — the subtree-sketch cell banks of tree edges in
///   sketch-scheme stores, one contiguous slot per edge.
///
/// Records the sidecar cannot place (unknown kinds, decode failures,
/// wildly sparse id spaces, mixed `φ` widths) simply stay wire-only: every
/// accessor returns `Option`/`bool` and the engine falls back to the
/// store's decoding read path for them.
#[derive(Debug, Default, Clone)]
pub struct DecodedSidecar {
    /// Ancestry interval per vertex id; aligned with `vertex_present`.
    vertex_anc: Vec<AncestryLabel>,
    vertex_present: Vec<bool>,
    /// `φ(e)` columns, one row per edge id (zero rows where absent).
    phi: BitMatrix,
    /// Child ancestry interval per tree edge; `(1, 0)` (an impossible
    /// interval) where the edge is absent or non-tree.
    edge_child: Vec<(u32, u32)>,
    edge_present: Vec<bool>,
    /// Tree-edge subtree sketches: slot index per edge id
    /// (`u32::MAX` = none) into `sketch_bank`.
    sketch_slot: Vec<u32>,
    sketch_params: Option<SketchParams>,
    /// `(S_ID, S_h)` per slot, aligned with the bank.
    sketch_seeds: Vec<(Seed, Seed)>,
    /// Contiguous cell banks, `units × levels` rows per slot.
    sketch_bank: BitMatrix,
}

/// Decodes a record as `L` if its kind byte says so; `None` on any
/// mismatch or decode failure (the record stays wire-only).
fn decode_as<L: WireLabel>(bytes: &[u8]) -> Option<L> {
    if bytes.len() < ftl_labels::wire::HEADER_BYTES || bytes[3] != L::KIND as u8 {
        return None;
    }
    L::from_wire(bytes).ok()
}

/// Dense-array guard: materializing by id only pays off when the id space
/// is reasonably dense; a store keyed by sparse huge ids keeps its records
/// wire-only rather than allocating gigabytes of absent slots.
fn dense_enough(max_id: usize, count: usize) -> bool {
    max_id < 4 * count + 1024
}

impl DecodedSidecar {
    /// Decodes everything it can out of the frozen shards. Called from
    /// [`LabelStoreBuilder::freeze`].
    fn build(shards: &[Arc<Shard>]) -> DecodedSidecar {
        let mut vertices: Vec<(u32, AncestryLabel)> = Vec::new();
        let mut cyc_edges: Vec<(u32, CycleSpaceEdgeLabel)> = Vec::new();
        let mut sk_edges: Vec<(u32, SketchEdgeLabel)> = Vec::new();
        for shard in shards {
            for (&key, &(start, len)) in &shard.index {
                let bytes = &shard.bytes[start as usize..(start + len) as usize];
                match key.ns {
                    Namespace::Vertex => {
                        let anc = decode_as::<CycleSpaceVertexLabel>(bytes)
                            .map(|l| l.anc)
                            .or_else(|| decode_as::<SketchVertexLabel>(bytes).map(|l| l.anc))
                            .or_else(|| decode_as::<AncestryLabel>(bytes));
                        if let Some(anc) = anc {
                            vertices.push((key.id, anc));
                        }
                    }
                    Namespace::Edge => {
                        if let Some(l) = decode_as::<CycleSpaceEdgeLabel>(bytes) {
                            cyc_edges.push((key.id, l));
                        } else if let Some(l) = decode_as::<SketchEdgeLabel>(bytes) {
                            sk_edges.push((key.id, l));
                        }
                    }
                }
            }
        }
        let mut sidecar = DecodedSidecar::default();
        sidecar.place_vertices(vertices);
        sidecar.place_cycle_edges(cyc_edges);
        sidecar.place_sketch_edges(sk_edges);
        sidecar
    }

    /// Patches a copy of `prev` with the given removals and upserts, in
    /// id-stable arrays. Returns `None` — meaning "rebuild from shards
    /// instead" — whenever an upsert cannot be placed structurally: an id
    /// beyond the existing arrays (including the empty arrays of a store
    /// that never placed anything), a `φ` width differing from the bank's,
    /// or a sketch edge record (whose contiguous bank does not support
    /// splicing — rebuilt wholesale).
    ///
    /// An upsert whose bytes *decode* to nothing placeable (corrupt or
    /// unknown kind) is not an error: the id is evicted from the sidecar
    /// and the record serves through the wire path — graceful degradation
    /// rather than a failed freeze.
    fn delta(
        prev: &DecodedSidecar,
        upserts: &[(StoreKey, Vec<u8>)],
        removals: &[StoreKey],
    ) -> Option<DecodedSidecar> {
        let mut next = prev.clone();
        let mut scratch = BitVec::zeros(0);
        fn zero_phi_row(phi: &mut BitMatrix, id: usize, scratch: &mut BitVec) {
            phi.read_row_into(id, scratch);
            phi.xor_bitvec_into_row(id, scratch);
        }
        fn evict(next: &mut DecodedSidecar, key: StoreKey, scratch: &mut BitVec) {
            let id = key.id as usize;
            match key.ns {
                Namespace::Vertex => {
                    if let Some(p) = next.vertex_present.get_mut(id) {
                        *p = false;
                    }
                }
                Namespace::Edge => {
                    if next.edge_present.get(id).copied().unwrap_or(false) {
                        zero_phi_row(&mut next.phi, id, scratch);
                    }
                    if let Some(p) = next.edge_present.get_mut(id) {
                        *p = false;
                    }
                    if let Some(c) = next.edge_child.get_mut(id) {
                        *c = (1, 0);
                    }
                    if let Some(s) = next.sketch_slot.get_mut(id) {
                        // The bank slot leaks until the next full build;
                        // correctness only needs the slot unreachable.
                        *s = u32::MAX;
                    }
                }
            }
        }

        for &key in removals {
            evict(&mut next, key, &mut scratch);
        }
        for (key, bytes) in upserts {
            let id = key.id as usize;
            match key.ns {
                Namespace::Vertex => {
                    if id >= next.vertex_present.len() {
                        return None;
                    }
                    let anc = decode_as::<CycleSpaceVertexLabel>(bytes)
                        .map(|l| l.anc)
                        .or_else(|| decode_as::<SketchVertexLabel>(bytes).map(|l| l.anc))
                        .or_else(|| decode_as::<AncestryLabel>(bytes));
                    match anc {
                        Some(anc) => {
                            next.vertex_anc[id] = anc;
                            next.vertex_present[id] = true;
                        }
                        None => evict(&mut next, *key, &mut scratch),
                    }
                }
                Namespace::Edge => {
                    if bytes.len() >= ftl_labels::wire::HEADER_BYTES
                        && bytes[3] == <SketchEdgeLabel as WireLabel>::KIND as u8
                    {
                        return None;
                    }
                    if id >= next.edge_present.len() {
                        return None;
                    }
                    match decode_as::<CycleSpaceEdgeLabel>(bytes) {
                        Some(l) => {
                            if l.phi.len() != next.phi.num_cols() {
                                return None;
                            }
                            if next.edge_present[id] {
                                zero_phi_row(&mut next.phi, id, &mut scratch);
                            }
                            next.phi.xor_bitvec_into_row(id, &l.phi);
                            next.edge_child[id] = tree_child_interval_of(&l).unwrap_or((1, 0));
                            next.edge_present[id] = true;
                        }
                        None => evict(&mut next, *key, &mut scratch),
                    }
                }
            }
        }
        Some(next)
    }

    fn place_vertices(&mut self, vertices: Vec<(u32, AncestryLabel)>) {
        let Some(max_id) = vertices.iter().map(|&(id, _)| id as usize).max() else {
            return;
        };
        if !dense_enough(max_id, vertices.len()) {
            return;
        }
        self.vertex_anc = vec![AncestryLabel { pre: 0, post: 0 }; max_id + 1];
        self.vertex_present = vec![false; max_id + 1];
        for (id, anc) in vertices {
            self.vertex_anc[id as usize] = anc;
            self.vertex_present[id as usize] = true;
        }
    }

    fn place_cycle_edges(&mut self, edges: Vec<(u32, CycleSpaceEdgeLabel)>) {
        let Some(max_id) = edges.iter().map(|&(id, _)| id as usize).max() else {
            return;
        };
        if !dense_enough(max_id, edges.len()) {
            return;
        }
        let b = edges[0].1.phi.len();
        if edges.iter().any(|(_, l)| l.phi.len() != b) {
            // Mixed φ widths cannot share one column bank; leave these
            // records wire-only rather than serve a partial bank.
            return;
        }
        self.phi = BitMatrix::with_rows(max_id + 1, b);
        self.edge_child = vec![(1, 0); max_id + 1];
        self.edge_present = vec![false; max_id + 1];
        for (id, l) in edges {
            self.phi.xor_bitvec_into_row(id as usize, &l.phi);
            if let Some(interval) = tree_child_interval_of(&l) {
                self.edge_child[id as usize] = interval;
            }
            self.edge_present[id as usize] = true;
        }
    }

    fn place_sketch_edges(&mut self, edges: Vec<(u32, SketchEdgeLabel)>) {
        let tree: Vec<(u32, _)> = edges
            .into_iter()
            .filter_map(|(id, l)| l.tree.map(|info| (id, info)))
            .collect();
        let Some(max_id) = tree.iter().map(|&(id, _)| id as usize).max() else {
            return;
        };
        if !dense_enough(max_id, tree.len()) {
            return;
        }
        let params = tree[0].1.params;
        if tree.iter().any(|(_, info)| info.params != params) {
            return; // mixed shapes cannot share one bank
        }
        self.sketch_params = Some(params);
        self.sketch_slot = vec![u32::MAX; max_id + 1];
        self.sketch_bank = BitMatrix::with_capacity(
            tree.len() * params.units * params.levels as usize,
            params.cell_bits(),
        );
        let mut row = BitVec::zeros(0);
        for (slot, (id, info)) in tree.into_iter().enumerate() {
            self.sketch_slot[id as usize] = slot as u32;
            self.sketch_seeds.push((info.sid, info.sh));
            let cells = info.sketch_subtree.cells();
            for r in 0..cells.num_rows() {
                cells.read_row_into(r, &mut row);
                self.sketch_bank.push_row(&row);
            }
        }
    }

    /// The decoded ancestry interval of vertex `v`, if its record made it
    /// into the sidecar.
    // ftl-analyzer: hot-path
    #[inline]
    pub fn vertex_anc(&self, v: VertexId) -> Option<AncestryLabel> {
        let i = v.index();
        if *self.vertex_present.get(i)? {
            Some(self.vertex_anc[i])
        } else {
            None
        }
    }

    /// Width of the `φ` column bank in bits (0 when the bank is empty).
    pub fn phi_width(&self) -> usize {
        self.phi.num_cols()
    }

    /// Whether edge `e` has a decoded cycle-space record.
    // ftl-analyzer: hot-path
    #[inline]
    pub fn has_edge(&self, e: EdgeId) -> bool {
        self.edge_present.get(e.index()).copied().unwrap_or(false)
    }

    /// Whether **every** id in `ids` has a decoded cycle-space record —
    /// the gate for the zero-decode elimination path.
    pub fn covers_edges(&self, ids: &[EdgeId]) -> bool {
        ids.iter().all(|&e| self.has_edge(e))
    }

    /// Copies `φ(e)` out of the column bank into `out` (reusing its
    /// allocation). Returns `false` when `e` has no decoded record.
    // ftl-analyzer: hot-path
    #[inline]
    pub fn read_phi_into(&self, e: EdgeId, out: &mut BitVec) -> bool {
        if !self.has_edge(e) {
            return false;
        }
        self.phi.read_row_into(e.index(), out);
        true
    }

    /// The precomputed child ancestry interval of `e` when it is a decoded
    /// **tree** edge (see `EliminatedFaultSet`'s per-query sweep).
    // ftl-analyzer: hot-path
    #[inline]
    pub fn tree_child_interval(&self, e: EdgeId) -> Option<(u32, u32)> {
        let &(pre, post) = self.edge_child.get(e.index())?;
        (pre <= post && self.has_edge(e)).then_some((pre, post))
    }

    /// Materializes a decode-equivalent [`CycleSpaceEdgeLabel`] from the
    /// banks: `φ` is bit-exact; the endpoint ancestry pair is collapsed to
    /// the child interval (both endpoints set to it), which preserves
    /// `on_root_path_of` for every query — the only thing decoders consult
    /// — without storing both endpoint intervals. Not wire-identical;
    /// strictly for serving paths.
    pub fn materialize_edge_label(&self, e: EdgeId) -> Option<CycleSpaceEdgeLabel> {
        if !self.has_edge(e) {
            return None;
        }
        let (is_tree, anc) = match self.tree_child_interval(e) {
            Some((pre, post)) => (true, AncestryLabel { pre, post }),
            None => (false, AncestryLabel { pre: 0, post: 0 }),
        };
        Some(CycleSpaceEdgeLabel {
            phi: self.phi.row_to_bitvec(e.index()),
            anc_u: anc,
            anc_v: anc,
            is_tree,
        })
    }

    /// The decoded subtree-sketch entry of tree edge `e` in a sketch-scheme
    /// store. The sketch is copied out of the contiguous bank — no wire
    /// decoding.
    pub fn sketch_tree(&self, e: EdgeId) -> Option<SketchTreeEntry> {
        let slot = *self.sketch_slot.get(e.index())?;
        if slot == u32::MAX {
            return None;
        }
        let params = self.sketch_params?;
        let rows = params.units * params.levels as usize;
        let (sid, sh) = self.sketch_seeds[slot as usize];
        Some(SketchTreeEntry {
            sketch: Sketch::from_cells(
                params,
                self.sketch_bank.clone_row_range(slot as usize * rows, rows),
            ),
            sid,
            sh,
        })
    }

    /// Number of vertices with decoded records.
    pub fn decoded_vertices(&self) -> usize {
        self.vertex_present.iter().filter(|&&p| p).count()
    }

    /// Number of edges with decoded cycle-space records.
    pub fn decoded_edges(&self) -> usize {
        self.edge_present.iter().filter(|&&p| p).count()
    }

    /// Number of tree edges with decoded sketch banks.
    pub fn decoded_sketch_edges(&self) -> usize {
        self.sketch_seeds.len()
    }
}

/// The ancestry interval of the *deeper* endpoint of a tree edge — all the
/// per-query material a fault contributes. A tree edge lies on the
/// root–`x` path iff **both** endpoints are ancestors of `x`, and the
/// endpoint intervals of a tree edge nest, so that collapses to one
/// containment test against the child's interval. Non-tree edges (and the
/// impossible case of disjoint endpoint intervals, which no genuine tree
/// edge produces) yield `None`, matching `on_root_path_of` returning
/// `false` everywhere.
pub(crate) fn tree_child_interval_of(l: &CycleSpaceEdgeLabel) -> Option<(u32, u32)> {
    if !l.is_tree {
        return None;
    }
    if l.anc_u.is_ancestor_of(&l.anc_v) {
        Some((l.anc_v.pre, l.anc_v.post))
    } else if l.anc_v.is_ancestor_of(&l.anc_u) {
        Some((l.anc_u.pre, l.anc_u.post))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl_labels::AncestryLabel;

    fn anc(pre: u32, post: u32) -> AncestryLabel {
        AncestryLabel { pre, post }
    }

    #[test]
    fn put_freeze_get_roundtrip() {
        let mut b = LabelStoreBuilder::new(4);
        for i in 0..50u32 {
            b.put_vertex_label(VertexId::new(i as usize), &anc(i, i + 1))
                .unwrap();
            b.put_edge_label(EdgeId::new(i as usize), &anc(1000 + i, 1000 + i + 1))
                .unwrap();
        }
        let store = b.freeze();
        assert_eq!(store.len(), 100);
        assert!(!store.is_empty());
        assert!(store.bytes_total() >= 100 * 16);
        for i in 0..50u32 {
            let v: AncestryLabel = store.vertex_label(VertexId::new(i as usize)).unwrap();
            assert_eq!(v, anc(i, i + 1));
            let e: AncestryLabel = store.edge_label(EdgeId::new(i as usize)).unwrap();
            assert_eq!(e, anc(1000 + i, 1000 + i + 1));
        }
    }

    #[test]
    fn vertex_and_edge_namespaces_are_disjoint() {
        let mut b = LabelStoreBuilder::new(2);
        b.put_vertex_label(VertexId::new(7), &anc(1, 2)).unwrap();
        let store = b.freeze();
        assert!(store
            .vertex_label::<AncestryLabel>(VertexId::new(7))
            .is_ok());
        assert_eq!(
            store.edge_label::<AncestryLabel>(EdgeId::new(7)),
            Err(StoreError::Missing(StoreKey::edge(EdgeId::new(7))))
        );
    }

    #[test]
    fn overwrite_takes_effect() {
        let mut b = LabelStoreBuilder::new(1);
        b.put_vertex_label(VertexId::new(0), &anc(1, 1)).unwrap();
        b.put_vertex_label(VertexId::new(0), &anc(9, 9)).unwrap();
        let store = b.freeze();
        assert_eq!(
            store
                .vertex_label::<AncestryLabel>(VertexId::new(0))
                .unwrap(),
            anc(9, 9)
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn shards_spread_keys() {
        let mut b = LabelStoreBuilder::new(8);
        for i in 0..800 {
            b.put_vertex_label(VertexId::new(i), &anc(i as u32, i as u32))
                .unwrap();
        }
        let store = b.freeze();
        assert_eq!(store.num_shards(), 8);
        for s in 0..8 {
            let len = store.shard_len(s);
            assert!((40..=160).contains(&len), "shard {s} holds {len} of 800");
        }
    }

    #[test]
    fn corrupt_stored_bytes_surface_as_wire_error() {
        let mut b = LabelStoreBuilder::new(1);
        let mut bytes = anc(3, 4).to_wire();
        bytes[0] ^= 0xFF;
        b.put_bytes(StoreKey::vertex(VertexId::new(0)), &bytes)
            .unwrap();
        let store = b.freeze();
        assert!(matches!(
            store.vertex_label::<AncestryLabel>(VertexId::new(0)),
            Err(StoreError::Wire(WireError::BadMagic))
        ));
        // The corrupt record also stays out of the sidecar: wire-only, and
        // the error above is what readers see.
        assert_eq!(store.sidecar().decoded_vertices(), 0);
        assert!(store.sidecar().vertex_anc(VertexId::new(0)).is_none());
    }

    #[test]
    fn sidecar_matches_wire_decoding_for_cycle_space_store() {
        use ftl_cycle_space::{CycleSpaceScheme, CycleSpaceVertexLabel};
        use ftl_seeded::Seed;
        let g = ftl_graph::generators::grid(4, 4);
        let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(5)).unwrap();
        let store = crate::engine::store_from_cycle_space(&scheme, 4).unwrap();
        let sidecar = store.sidecar();
        assert_eq!(sidecar.decoded_vertices(), g.num_vertices());
        assert_eq!(sidecar.decoded_edges(), g.num_edges());
        let mut phi = BitVec::zeros(0);
        for i in 0..g.num_vertices() {
            let v = VertexId::new(i);
            let wire: CycleSpaceVertexLabel = store.vertex_label(v).unwrap();
            assert_eq!(sidecar.vertex_anc(v), Some(wire.anc), "vertex {i}");
        }
        for i in 0..g.num_edges() {
            let e = EdgeId::new(i);
            let wire = scheme.edge_label(e);
            assert!(sidecar.has_edge(e));
            assert!(sidecar.read_phi_into(e, &mut phi));
            assert_eq!(phi, wire.phi, "phi of edge {i}");
            // The child interval reproduces on_root_path_of for every
            // vertex in the graph.
            for x in 0..g.num_vertices() {
                let anc = scheme.vertex_label(VertexId::new(x)).anc;
                let by_interval = sidecar
                    .tree_child_interval(e)
                    .is_some_and(|(pre, post)| pre <= anc.pre && anc.post <= post);
                assert_eq!(by_interval, wire.on_root_path_of(&anc), "edge {i} vs {x}");
            }
            // And so does the materialized decode-equivalent label.
            let mat = sidecar.materialize_edge_label(e).unwrap();
            assert_eq!(mat.phi, wire.phi);
            assert_eq!(mat.is_tree, wire.is_tree);
            for x in 0..g.num_vertices() {
                let anc = scheme.vertex_label(VertexId::new(x)).anc;
                assert_eq!(mat.on_root_path_of(&anc), wire.on_root_path_of(&anc));
            }
        }
    }

    #[test]
    fn sidecar_decodes_sketch_store_banks() {
        use ftl_seeded::Seed;
        use ftl_sketch::{SketchParams, SketchScheme};
        let g = ftl_graph::generators::grid(3, 3);
        let params = SketchParams::for_graph(&g);
        let scheme = SketchScheme::label(&g, &params, Seed::new(9)).unwrap();
        let mut b = LabelStoreBuilder::new(2);
        for i in 0..g.num_vertices() {
            let v = VertexId::new(i);
            b.put_vertex_label(v, &scheme.vertex_label(v)).unwrap();
        }
        for i in 0..g.num_edges() {
            let e = EdgeId::new(i);
            b.put_edge_label(e, &scheme.edge_label(e)).unwrap();
        }
        let store = b.freeze();
        let sidecar = store.sidecar();
        // Sketch vertex labels carry ancestry intervals too.
        assert_eq!(sidecar.decoded_vertices(), g.num_vertices());
        assert_eq!(sidecar.decoded_sketch_edges(), g.num_vertices() - 1);
        for i in 0..g.num_edges() {
            let e = EdgeId::new(i);
            let label = scheme.edge_label(e);
            match label.tree {
                None => assert!(sidecar.sketch_tree(e).is_none()),
                Some(info) => {
                    let entry = sidecar.sketch_tree(e).expect("tree edge bank");
                    assert_eq!(entry.sketch, info.sketch_subtree, "edge {i}");
                    assert_eq!(entry.sid, info.sid);
                    assert_eq!(entry.sh, info.sh);
                }
            }
        }
    }

    #[test]
    fn sparse_id_space_stays_wire_only() {
        let mut b = LabelStoreBuilder::new(1);
        // Two vertices, ids 3 and 900_000: far too sparse for dense arrays.
        b.put_vertex_label(VertexId::new(3), &anc(1, 2)).unwrap();
        b.put_vertex_label(VertexId::new(900_000), &anc(3, 4))
            .unwrap();
        let store = b.freeze();
        assert_eq!(store.sidecar().decoded_vertices(), 0);
        // Reads still work through the wire path.
        assert!(store
            .vertex_label::<AncestryLabel>(VertexId::new(900_000))
            .is_ok());
    }

    #[test]
    fn delta_freeze_splices_untouched_shards_and_mints_fresh_uid() {
        let mut b = LabelStoreBuilder::new(8);
        for i in 0..400 {
            b.put_vertex_label(VertexId::new(i), &anc(i as u32, i as u32 + 1))
                .unwrap();
        }
        let store = b.freeze();
        let key = StoreKey::vertex(VertexId::new(3));
        let touched = (key.hash() % 8) as usize;
        let next = store
            .delta_freeze(&[(key, anc(99, 100).to_wire())], &[])
            .unwrap();
        assert_ne!(next.uid(), store.uid());
        for s in 0..8 {
            assert_eq!(next.shares_shard_with(&store, s), s != touched, "shard {s}");
        }
        // The old snapshot is untouched; the new one sees the upsert.
        assert_eq!(
            store
                .vertex_label::<AncestryLabel>(VertexId::new(3))
                .unwrap(),
            anc(3, 4)
        );
        assert_eq!(
            next.vertex_label::<AncestryLabel>(VertexId::new(3))
                .unwrap(),
            anc(99, 100)
        );
        assert_eq!(
            next.sidecar().vertex_anc(VertexId::new(3)),
            Some(anc(99, 100))
        );
    }

    #[test]
    fn delta_freeze_matches_from_scratch_build() {
        use ftl_cycle_space::CycleSpaceScheme;
        use ftl_seeded::Seed;
        let g = ftl_graph::generators::grid(4, 4);
        let scheme = CycleSpaceScheme::label(&g, 4, Seed::new(5)).unwrap();
        let store = crate::engine::store_from_cycle_space(&scheme, 4).unwrap();

        // Remove two edges and move one vertex label.
        let removals = [
            StoreKey::edge(EdgeId::new(1)),
            StoreKey::edge(EdgeId::new(7)),
        ];
        let mut moved = scheme.vertex_label(VertexId::new(2));
        moved.anc.pre += 1;
        let upserts = [(StoreKey::vertex(VertexId::new(2)), moved.to_wire())];
        let next = store.delta_freeze(&upserts, &removals).unwrap();

        // From-scratch reference with the same final content.
        let mut b = LabelStoreBuilder::new(4);
        for i in 0..g.num_vertices() {
            let v = VertexId::new(i);
            if i == 2 {
                b.put_vertex_label(v, &moved).unwrap();
            } else {
                b.put_vertex_label(v, &scheme.vertex_label(v)).unwrap();
            }
        }
        for i in 0..g.num_edges() {
            if i == 1 || i == 7 {
                continue;
            }
            let e = EdgeId::new(i);
            b.put_edge_label(e, &scheme.edge_label(e)).unwrap();
        }
        let reference = b.freeze();

        assert_eq!(next.len(), reference.len());
        let mut a_phi = BitVec::zeros(0);
        let mut b_phi = BitVec::zeros(0);
        for i in 0..g.num_vertices() {
            let v = VertexId::new(i);
            assert_eq!(
                next.get_bytes(StoreKey::vertex(v)),
                reference.get_bytes(StoreKey::vertex(v))
            );
            assert_eq!(
                next.sidecar().vertex_anc(v),
                reference.sidecar().vertex_anc(v)
            );
        }
        for i in 0..g.num_edges() {
            let e = EdgeId::new(i);
            assert_eq!(
                next.get_bytes(StoreKey::edge(e)),
                reference.get_bytes(StoreKey::edge(e)),
                "edge {i}"
            );
            assert_eq!(next.sidecar().has_edge(e), reference.sidecar().has_edge(e));
            assert_eq!(
                next.sidecar().tree_child_interval(e),
                reference.sidecar().tree_child_interval(e)
            );
            if next.sidecar().has_edge(e) {
                assert!(next.sidecar().read_phi_into(e, &mut a_phi));
                assert!(reference.sidecar().read_phi_into(e, &mut b_phi));
                assert_eq!(a_phi, b_phi, "phi of edge {i}");
            }
        }
    }

    #[test]
    fn delta_freeze_evicts_undecodable_upsert_but_serves_wire() {
        use ftl_cycle_space::CycleSpaceScheme;
        use ftl_seeded::Seed;
        let g = ftl_graph::generators::cycle(6);
        let scheme = CycleSpaceScheme::label(&g, 2, Seed::new(3)).unwrap();
        let store = crate::engine::store_from_cycle_space(&scheme, 2).unwrap();
        assert!(store.sidecar().has_edge(EdgeId::new(0)));

        // Upsert bytes that fail to decode: sidecar eviction, not a panic,
        // and the wire path serves (and surfaces) the corrupt record.
        let mut bad = scheme.edge_label(EdgeId::new(0)).to_wire();
        bad[0] ^= 0xFF;
        let next = store
            .delta_freeze(&[(StoreKey::edge(EdgeId::new(0)), bad.clone())], &[])
            .unwrap();
        assert!(!next.sidecar().has_edge(EdgeId::new(0)));
        assert_eq!(
            next.get_bytes(StoreKey::edge(EdgeId::new(0))),
            Some(&bad[..])
        );
        assert!(matches!(
            next.edge_label::<CycleSpaceEdgeLabel>(EdgeId::new(0)),
            Err(StoreError::Wire(_))
        ));
        // Other records still decoded.
        assert!(next.sidecar().has_edge(EdgeId::new(1)));
    }

    #[test]
    fn wire_only_store_stays_wire_only_across_delta() {
        let mut b = LabelStoreBuilder::new(2);
        b.put_vertex_label(VertexId::new(0), &anc(1, 2)).unwrap();
        let store = b.freeze_wire_only();
        assert!(store.is_wire_only());
        let next = store
            .delta_freeze(
                &[(StoreKey::vertex(VertexId::new(1)), anc(3, 4).to_wire())],
                &[],
            )
            .unwrap();
        assert!(next.is_wire_only());
        assert_eq!(next.sidecar().decoded_vertices(), 0);
        assert_eq!(
            next.vertex_label::<AncestryLabel>(VertexId::new(1))
                .unwrap(),
            anc(3, 4)
        );
    }

    #[test]
    fn delta_freeze_removal_then_reinsert_roundtrips() {
        let mut b = LabelStoreBuilder::new(3);
        for i in 0..30 {
            b.put_vertex_label(VertexId::new(i), &anc(i as u32, i as u32 + 1))
                .unwrap();
        }
        let store = b.freeze();
        let key = StoreKey::vertex(VertexId::new(5));
        let gone = store.delta_freeze(&[], &[key]).unwrap();
        assert_eq!(gone.get_bytes(key), None);
        assert!(gone.sidecar().vertex_anc(VertexId::new(5)).is_none());
        assert_eq!(gone.len(), 29);
        let back = gone
            .delta_freeze(&[(key, anc(7, 8).to_wire())], &[])
            .unwrap();
        assert_eq!(
            back.vertex_label::<AncestryLabel>(VertexId::new(5))
                .unwrap(),
            anc(7, 8)
        );
        assert_eq!(back.sidecar().vertex_anc(VertexId::new(5)), Some(anc(7, 8)));
        assert_eq!(back.len(), 30);
    }

    #[test]
    fn arena_overflow_is_a_typed_error_not_a_panic() {
        // A shard arena past u32::MAX cannot be built in a test, but the
        // end-offset check is reachable by faking the precondition: a
        // record so large the *end* offset overflows. Use a sparse huge
        // record via the builder's byte path.
        let mut b = LabelStoreBuilder::new(1);
        // First fill a small record so the arena is non-empty.
        b.put_vertex_label(VertexId::new(0), &anc(0, 0)).unwrap();
        // A record of u32::MAX bytes cannot be allocated here either, so
        // exercise the typed-error path at the Shard level instead: the
        // builder must refuse (not panic) once offsets no longer fit.
        let mut shard = Shard {
            bytes: vec![0u8; 16],
            ..Shard::default()
        };
        // Pretend the arena is already at the edge by checking the error
        // shape for an impossible end offset.
        let key = StoreKey::vertex(VertexId::new(1));
        // Directly drive `put` with a length that overflows the end check.
        let huge = u32::MAX as usize - 8;
        shard.bytes.resize(huge, 0);
        let err = shard.put(key, &[0u8; 64]).unwrap_err();
        assert_eq!(err, StoreError::ArenaOverflow { key });
        // The shard is observably unchanged: no index entry was added.
        assert!(shard.get(key).is_none());
        assert!(err.to_string().contains("num_shards"));
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let mut b = LabelStoreBuilder::new(0);
        b.put_vertex_label(VertexId::new(0), &anc(0, 0)).unwrap();
        let store = b.freeze();
        assert_eq!(store.num_shards(), 1);
        assert_eq!(store.len(), 1);
    }
}
